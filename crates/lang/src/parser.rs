//! Recursive-descent parser for the rule language.
//!
//! The paper's figures omit the OPS5 `-->` separator, so the parser accepts
//! it but does not require it: a top-level parenthesised form whose head is
//! an action keyword (`make`, `remove`, `modify`, `write`, `bind`, `halt`,
//! `set-modify`, `set-remove`, `foreach`, `if`) starts the RHS.

use crate::ast::*;
use crate::token::{tokenize, LexError, TokKind, Token};
use sorete_base::{Symbol, Value};
use std::fmt;

/// A parse error with a source line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line (0 = end of input).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a whole program (literalizes + rules).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.program()
}

/// Parse a single `(p ...)` production.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let rule = p.top_rule()?;
    p.expect_eof()?;
    Ok(rule)
}

const ACTION_KEYWORDS: &[&str] = &[
    "make",
    "remove",
    "modify",
    "write",
    "bind",
    "halt",
    "set-modify",
    "set-remove",
    "foreach",
    "if",
    "compute",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, ahead: usize) -> Option<&TokKind> {
        self.toks.get(self.pos + ahead).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<TokKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, kind: &TokKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => {
                let found = k.to_string();
                self.err(format!("expected `{}`, found `{}`", kind, found))
            }
            None => self.err(format!("expected `{}`, found end of input", kind)),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            self.err("trailing input after form")
        }
    }

    fn expect_sym(&mut self) -> Result<Symbol, ParseError> {
        match self.next() {
            Some(TokKind::Sym(s)) => Ok(Symbol::new(&s)),
            Some(k) => self.err(format!("expected a symbol, found `{}`", k)),
            None => self.err("expected a symbol, found end of input"),
        }
    }

    fn expect_var(&mut self) -> Result<Symbol, ParseError> {
        match self.next() {
            Some(TokKind::Var(v)) => Ok(Symbol::new(&v)),
            Some(k) => self.err(format!("expected a `<variable>`, found `{}`", k)),
            None => self.err("expected a `<variable>`, found end of input"),
        }
    }

    // ---------------------------------------------------------- program

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program {
            literalizes: Vec::new(),
            rules: Vec::new(),
        };
        while self.peek().is_some() {
            self.expect(&TokKind::LParen)?;
            match self.peek() {
                Some(TokKind::Sym(s)) if s == "literalize" => {
                    self.pos += 1;
                    let class = self.expect_sym()?;
                    let mut attrs = Vec::new();
                    while !matches!(self.peek(), Some(TokKind::RParen)) {
                        attrs.push(self.expect_sym()?);
                    }
                    self.expect(&TokKind::RParen)?;
                    prog.literalizes.push(Literalize { class, attrs });
                }
                Some(TokKind::Sym(s)) if s == "p" => {
                    self.pos += 1;
                    prog.rules.push(self.rule_body()?);
                }
                _ => return self.err("expected `literalize` or `p` at top level"),
            }
        }
        Ok(prog)
    }

    fn top_rule(&mut self) -> Result<Rule, ParseError> {
        self.expect(&TokKind::LParen)?;
        match self.next() {
            Some(TokKind::Sym(s)) if s == "p" => self.rule_body(),
            _ => self.err("expected `(p ...)`"),
        }
    }

    /// Body of a production after `(p`; consumes the closing `)`.
    fn rule_body(&mut self) -> Result<Rule, ParseError> {
        let name = self.expect_sym()?;
        let mut rule = Rule {
            name,
            lhs: Vec::new(),
            scalar: Vec::new(),
            tests: Vec::new(),
            rhs: Vec::new(),
        };
        let mut in_rhs = false;

        loop {
            match self.peek() {
                None => return self.err("unterminated production"),
                Some(TokKind::RParen) => {
                    self.pos += 1;
                    break;
                }
                Some(TokKind::Arrow) => {
                    self.pos += 1;
                    in_rhs = true;
                }
                Some(TokKind::ClauseKw(k)) if !in_rhs => {
                    let k = k.clone();
                    self.pos += 1;
                    match k.as_str() {
                        "scalar" => {
                            self.expect(&TokKind::LParen)?;
                            while !matches!(self.peek(), Some(TokKind::RParen)) {
                                rule.scalar.push(self.expect_var()?);
                            }
                            self.expect(&TokKind::RParen)?;
                        }
                        "test" => {
                            self.expect(&TokKind::LParen)?;
                            rule.tests.push(self.expr()?);
                            self.expect(&TokKind::RParen)?;
                        }
                        other => return self.err(format!("unknown clause `:{}`", other)),
                    }
                }
                Some(_) if in_rhs => rule.rhs.push(self.action()?),
                Some(_) => {
                    // LHS position: CE unless the head is an action keyword.
                    if self.looks_like_action() {
                        in_rhs = true;
                        rule.rhs.push(self.action()?);
                    } else {
                        rule.lhs.push(self.cond_elem()?);
                    }
                }
            }
        }

        if rule.lhs.is_empty() {
            return self.err(format!("rule `{}` has an empty LHS", rule.name));
        }
        if rule.rhs.is_empty() {
            return self.err(format!("rule `{}` has no RHS actions", rule.name));
        }
        Ok(rule)
    }

    /// Does the upcoming top-level form start an RHS action?
    fn looks_like_action(&self) -> bool {
        if !matches!(self.peek(), Some(TokKind::LParen)) {
            return false;
        }
        match self.peek_at(1) {
            Some(TokKind::Sym(s)) => ACTION_KEYWORDS.contains(&s.as_str()),
            _ => false,
        }
    }

    // ------------------------------------------------------------- LHS

    /// Parse a condition element: `(c ...)`, `[c ...]`, `-(c ...)`,
    /// `{ CE <Var> }`, or `-{ CE <Var> }`.
    fn cond_elem(&mut self) -> Result<CondElem, ParseError> {
        let negated = if matches!(self.peek(), Some(TokKind::Negation)) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.peek() {
            Some(TokKind::LBrace) => {
                self.pos += 1;
                let mut ce = self.bare_ce()?;
                ce.negated = negated;
                ce.elem_var = Some(self.expect_var()?);
                self.expect(&TokKind::RBrace)?;
                Ok(ce)
            }
            _ => {
                let mut ce = self.bare_ce()?;
                ce.negated = negated;
                Ok(ce)
            }
        }
    }

    /// A CE without negation/brace wrapping: `(class tests)` or `[class tests]`.
    fn bare_ce(&mut self) -> Result<CondElem, ParseError> {
        let (open, close, set_oriented) = match self.peek() {
            Some(TokKind::LParen) => (TokKind::LParen, TokKind::RParen, false),
            Some(TokKind::LBracket) => (TokKind::LBracket, TokKind::RBracket, true),
            _ => return self.err("expected a condition element"),
        };
        self.expect(&open)?;
        let class = self.expect_sym()?;
        let mut tests = Vec::new();
        while let Some(k) = self.peek() {
            match k {
                k if *k == close => {
                    self.pos += 1;
                    return Ok(CondElem {
                        class,
                        negated: false,
                        set_oriented,
                        elem_var: None,
                        tests,
                    });
                }
                TokKind::Attr(_) => {
                    let attr = match self.next() {
                        Some(TokKind::Attr(a)) => Symbol::new(&a),
                        _ => unreachable!(),
                    };
                    let mut terms = Vec::new();
                    // Terms until the next ^attr or the closer.
                    loop {
                        match self.peek() {
                            Some(TokKind::Attr(_)) | None => break,
                            Some(k) if *k == close => break,
                            _ => terms.push(self.test_term()?),
                        }
                    }
                    if terms.is_empty() {
                        return self.err(format!("attribute `^{}` has no test", attr));
                    }
                    tests.push(AttrTest { attr, terms });
                }
                other => {
                    let found = other.to_string();
                    return self.err(format!(
                        "expected `^attr` or closing bracket in CE, found `{}`",
                        found
                    ));
                }
            }
        }
        self.err("unterminated condition element")
    }

    /// One test term: `[pred] operand`, `<< v... >>`, or `{ term... }`
    /// (conjunction; flattened by the caller collecting multiple terms).
    fn test_term(&mut self) -> Result<TestTerm, ParseError> {
        match self.peek() {
            Some(TokKind::DblLt) => {
                self.pos += 1;
                let mut vals = Vec::new();
                while !matches!(self.peek(), Some(TokKind::DblGt)) {
                    vals.push(self.const_value()?);
                }
                self.expect(&TokKind::DblGt)?;
                Ok(TestTerm::AnyOf(vals))
            }
            Some(TokKind::Eq) => {
                self.pos += 1;
                Ok(TestTerm::Pred(Pred::Eq, self.operand()?))
            }
            Some(TokKind::Ne) => {
                self.pos += 1;
                Ok(TestTerm::Pred(Pred::Ne, self.operand()?))
            }
            Some(TokKind::Lt) => {
                self.pos += 1;
                Ok(TestTerm::Pred(Pred::Lt, self.operand()?))
            }
            Some(TokKind::Le) => {
                self.pos += 1;
                Ok(TestTerm::Pred(Pred::Le, self.operand()?))
            }
            Some(TokKind::Gt) => {
                self.pos += 1;
                Ok(TestTerm::Pred(Pred::Gt, self.operand()?))
            }
            Some(TokKind::Ge) => {
                self.pos += 1;
                Ok(TestTerm::Pred(Pred::Ge, self.operand()?))
            }
            Some(TokKind::LBrace) => {
                // `{ t1 t2 }` conjunction group: return the first term and
                // let the group contribute the rest via recursion — handled
                // by collecting into a synthetic AnyOf-free list. We parse
                // the whole group and conjoin by flattening.
                self.pos += 1;
                let mut terms = Vec::new();
                while !matches!(self.peek(), Some(TokKind::RBrace)) {
                    terms.push(self.test_term()?);
                }
                self.expect(&TokKind::RBrace)?;
                if terms.len() == 1 {
                    Ok(terms.pop().unwrap())
                } else {
                    // Represent `{a b c}` as nested conjunction is
                    // unnecessary: AttrTest.terms already conjoins, so we
                    // splice via a marker. The caller pushes terms one at a
                    // time, so we return a Conj wrapper through AnyOf abuse
                    // — instead, keep it simple: error on empty, else wrap.
                    Ok(TestTerm::Conj(terms))
                }
            }
            _ => Ok(TestTerm::Pred(Pred::Eq, self.operand()?)),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.next() {
            Some(TokKind::Var(v)) => Ok(Operand::Var(Symbol::new(&v))),
            Some(TokKind::Sym(s)) if s == "nil" => Ok(Operand::Const(Value::Nil)),
            Some(TokKind::Sym(s)) => Ok(Operand::Const(Value::sym(&s))),
            Some(TokKind::Int(i)) => Ok(Operand::Const(Value::Int(i))),
            Some(TokKind::Float(f)) => Ok(Operand::Const(Value::Float(f))),
            Some(k) => self.err(format!("expected a test operand, found `{}`", k)),
            None => self.err("expected a test operand, found end of input"),
        }
    }

    fn const_value(&mut self) -> Result<Value, ParseError> {
        match self.operand()? {
            Operand::Const(v) => Ok(v),
            Operand::Var(_) => self.err("variables are not allowed inside `<< ... >>`"),
        }
    }

    // ----------------------------------------------------------- exprs

    /// Expression with precedence: or < and < not < cmp < add < mul < atom.
    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.and_expr()?];
        while matches!(self.peek(), Some(TokKind::Sym(s)) if s == "or") {
            self.pos += 1;
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.not_expr()?];
        while matches!(self.peek(), Some(TokKind::Sym(s)) if s == "and") {
            self.pos += 1;
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Expr::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(TokKind::Sym(s)) if s == "not") {
            self.pos += 1;
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        let pred = match self.peek() {
            Some(TokKind::Eq) => Pred::Eq,
            Some(TokKind::Ne) => Pred::Ne,
            Some(TokKind::Lt) => Pred::Lt,
            Some(TokKind::Le) => Pred::Le,
            Some(TokKind::Gt) => Pred::Gt,
            Some(TokKind::Ge) => Pred::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(Expr::Cmp(pred, Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokKind::Plus) => BinOp::Add,
                Some(TokKind::Minus) => BinOp::Sub,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(TokKind::Star) => BinOp::Mul,
                Some(TokKind::Slash) => BinOp::Div,
                Some(TokKind::Sym(s)) if s == "mod" => BinOp::Mod,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.atom()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(TokKind::Int(_))
            | Some(TokKind::Float(_))
            | Some(TokKind::Sym(_))
            | Some(TokKind::Var(_)) => {
                let op = self.operand()?;
                Ok(match op {
                    Operand::Const(v) => Expr::Const(v),
                    Operand::Var(v) => Expr::Var(v),
                })
            }
            Some(TokKind::LParen) => {
                self.pos += 1;
                // `(count <v>)` / other aggregate, `(compute expr)`, or a
                // parenthesised sub-expression.
                let e = match self.peek() {
                    Some(TokKind::Sym(s)) if AggOp::from_name(s).is_some() => {
                        let op = AggOp::from_name(s).unwrap();
                        self.pos += 1;
                        let var = self.expect_var()?;
                        Expr::Agg(op, var)
                    }
                    Some(TokKind::Sym(s)) if s == "compute" => {
                        self.pos += 1;
                        self.expr()?
                    }
                    _ => self.expr()?,
                };
                self.expect(&TokKind::RParen)?;
                Ok(e)
            }
            Some(k) => {
                let found = k.to_string();
                self.err(format!("expected an expression, found `{}`", found))
            }
            None => self.err("expected an expression, found end of input"),
        }
    }

    // --------------------------------------------------------- actions

    fn action(&mut self) -> Result<Action, ParseError> {
        self.expect(&TokKind::LParen)?;
        let head = self.expect_sym()?;
        let action = match head.as_str() {
            "make" => {
                let class = self.expect_sym()?;
                let slots = self.slot_list()?;
                Action::Make { class, slots }
            }
            "remove" => Action::Remove(self.rhs_target()?),
            "modify" => {
                let target = self.rhs_target()?;
                let slots = self.slot_list()?;
                Action::Modify { target, slots }
            }
            "set-remove" => Action::SetRemove(self.expect_var()?),
            "set-modify" => {
                let var = self.expect_var()?;
                let slots = self.slot_list()?;
                Action::SetModify { var, slots }
            }
            "write" => {
                let mut parts = Vec::new();
                while !matches!(self.peek(), Some(TokKind::RParen)) {
                    parts.push(self.write_part()?);
                }
                Action::Write(parts)
            }
            "bind" => {
                let var = self.expect_var()?;
                let expr = self.rhs_value()?;
                Action::Bind(var, expr)
            }
            "halt" => Action::Halt,
            "foreach" => {
                let var = self.expect_var()?;
                let order = match self.peek() {
                    Some(TokKind::Sym(s)) if s == "ascending" => {
                        self.pos += 1;
                        IterOrder::Ascending
                    }
                    Some(TokKind::Sym(s)) if s == "descending" => {
                        self.pos += 1;
                        IterOrder::Descending
                    }
                    _ => IterOrder::Default,
                };
                let mut body = Vec::new();
                while !matches!(self.peek(), Some(TokKind::RParen)) {
                    body.push(self.action()?);
                }
                Action::ForEach { var, order, body }
            }
            "if" => {
                let cond = self.rhs_value()?;
                let mut then = Vec::new();
                let mut els = Vec::new();
                let mut in_else = false;
                loop {
                    match self.peek() {
                        Some(TokKind::RParen) | None => break,
                        Some(TokKind::Sym(s)) if s == "else" && !in_else => {
                            self.pos += 1;
                            in_else = true;
                        }
                        _ => {
                            let a = self.action()?;
                            if in_else {
                                els.push(a);
                            } else {
                                then.push(a);
                            }
                        }
                    }
                }
                Action::If { cond, then, els }
            }
            other => return self.err(format!("unknown action `{}`", other)),
        };
        self.expect(&TokKind::RParen)?;
        Ok(action)
    }

    fn rhs_target(&mut self) -> Result<RhsTarget, ParseError> {
        match self.next() {
            Some(TokKind::Var(v)) => Ok(RhsTarget::Var(Symbol::new(&v))),
            Some(TokKind::Int(i)) if i >= 1 => Ok(RhsTarget::Idx(i as usize)),
            Some(k) => self.err(format!("expected `<elem-var>` or CE index, found `{}`", k)),
            None => self.err("expected `<elem-var>` or CE index"),
        }
    }

    /// `^attr value ...` list for make/modify/set-modify.
    fn slot_list(&mut self) -> Result<Vec<(Symbol, Expr)>, ParseError> {
        let mut slots = Vec::new();
        while let Some(TokKind::Attr(_)) = self.peek() {
            let attr = match self.next() {
                Some(TokKind::Attr(a)) => Symbol::new(&a),
                _ => unreachable!(),
            };
            slots.push((attr, self.rhs_value()?));
        }
        Ok(slots)
    }

    /// An RHS value position: one atom or a parenthesised expression.
    fn rhs_value(&mut self) -> Result<Expr, ParseError> {
        self.atom()
    }

    /// One argument of `write`: like an RHS value, but bare symbols are
    /// treated as literal text.
    fn write_part(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(TokKind::Sym(s)) if s != "nil" => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Const(Value::sym(&s)))
            }
            _ => self.atom(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_compete() {
        let rule = parse_rule(
            "(p compete
               (player ^name <n1> ^team A)
               (player ^name <n2> ^team B)
               (write Player A: <n1>, Player B: <n2>))",
        )
        .unwrap();
        assert_eq!(rule.name.as_str(), "compete");
        assert_eq!(rule.lhs.len(), 2);
        assert!(!rule.lhs[0].set_oriented);
        assert_eq!(rule.rhs.len(), 1);
        let AttrTest { attr, terms } = &rule.lhs[0].tests[0];
        assert_eq!(attr.as_str(), "name");
        assert_eq!(
            terms,
            &vec![TestTerm::Pred(Pred::Eq, Operand::Var(Symbol::new("n1")))]
        );
    }

    #[test]
    fn parses_set_oriented_ces() {
        let rule = parse_rule(
            "(p compete1
               [player ^name <n> ^team A]
               [player ^name <n> ^team B]
               (write done))",
        )
        .unwrap();
        assert!(rule.lhs[0].set_oriented);
        assert!(rule.lhs[1].set_oriented);
    }

    #[test]
    fn parses_elem_vars_scalar_and_test() {
        let rule = parse_rule(
            "(p SwitchTeams
               { [player ^team A] <ATeam> }
               { [player ^team B] <BTeam> }
               :test ((count <ATeam>) == (count <BTeam>))
               (set-modify <ATeam> ^team B)
               (set-modify <BTeam> ^team A))",
        )
        .unwrap();
        assert_eq!(rule.lhs[0].elem_var, Some(Symbol::new("ATeam")));
        assert_eq!(rule.tests.len(), 1);
        match &rule.tests[0] {
            Expr::Cmp(Pred::Eq, l, r) => {
                assert_eq!(**l, Expr::Agg(AggOp::Count, Symbol::new("ATeam")));
                assert_eq!(**r, Expr::Agg(AggOp::Count, Symbol::new("BTeam")));
            }
            other => panic!("unexpected test expr {:?}", other),
        }
        assert!(matches!(rule.rhs[0], Action::SetModify { .. }));
    }

    #[test]
    fn parses_remove_dups() {
        let rule = parse_rule(
            "(p RemoveDups
               { [player ^name <n> ^team <t>] <P> }
               :scalar (<n> <t>)
               :test ((count <P>) > 1)
               (bind <First> true)
               (foreach <P> descending
                 (if (<First> == true)
                     (bind <First> false)
                  else
                     (remove <P>))))",
        )
        .unwrap();
        assert_eq!(rule.scalar, vec![Symbol::new("n"), Symbol::new("t")]);
        let Action::ForEach { var, order, body } = &rule.rhs[1] else {
            panic!("expected foreach");
        };
        assert_eq!(var.as_str(), "P");
        assert_eq!(*order, IterOrder::Descending);
        let Action::If { then, els, .. } = &body[0] else {
            panic!("expected if")
        };
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
        assert!(matches!(els[0], Action::Remove(RhsTarget::Var(_))));
    }

    #[test]
    fn parses_negated_ce_and_arrow() {
        let rule = parse_rule(
            "(p guard
               (goal ^status active)
               -(player ^team A)
               -->
               (make player ^team A ^name default))",
        )
        .unwrap();
        assert!(rule.lhs[1].negated);
        assert!(matches!(rule.rhs[0], Action::Make { .. }));
    }

    #[test]
    fn parses_predicates_and_disjunction() {
        let rule = parse_rule(
            "(p sel
               (emp ^salary > 10000 ^dept << sales eng >> ^age { > 18 <= 65 })
               (write ok))",
        )
        .unwrap();
        let tests = &rule.lhs[0].tests;
        assert_eq!(
            tests[0].terms,
            vec![TestTerm::Pred(Pred::Gt, Operand::Const(Value::Int(10000)))]
        );
        assert_eq!(
            tests[1].terms,
            vec![TestTerm::AnyOf(vec![
                Value::sym("sales"),
                Value::sym("eng")
            ])]
        );
        assert_eq!(
            tests[2].terms,
            vec![TestTerm::Conj(vec![
                TestTerm::Pred(Pred::Gt, Operand::Const(Value::Int(18))),
                TestTerm::Pred(Pred::Le, Operand::Const(Value::Int(65)))
            ])]
        );
    }

    #[test]
    fn parses_program_with_literalize() {
        let prog = parse_program(
            "(literalize player name team)
             (p r1 (player ^team A) (write found))",
        )
        .unwrap();
        assert_eq!(prog.literalizes.len(), 1);
        assert_eq!(prog.literalizes[0].attrs.len(), 2);
        assert_eq!(prog.rules.len(), 1);
    }

    #[test]
    fn arithmetic_precedence() {
        let rule = parse_rule("(p r (c ^x <x>) (bind <y> (1 + <x> * 2)))").unwrap();
        let Action::Bind(_, expr) = &rule.rhs[0] else {
            panic!()
        };
        // 1 + (<x> * 2)
        match expr {
            Expr::Bin(BinOp::Add, l, r) => {
                assert_eq!(**l, Expr::Const(Value::Int(1)));
                assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn empty_lhs_is_error() {
        assert!(parse_rule("(p r (write hi))").is_err());
        assert!(parse_rule("(p r)").is_err());
    }

    #[test]
    fn nil_parses_as_nil_value() {
        let rule = parse_rule("(p r (c ^a nil) (write done))").unwrap();
        assert_eq!(
            rule.lhs[0].tests[0].terms,
            vec![TestTerm::Pred(Pred::Eq, Operand::Const(Value::Nil))]
        );
    }

    #[test]
    fn modify_by_index() {
        let rule = parse_rule("(p r (c ^a 1) (modify 1 ^a 2) (remove 1))").unwrap();
        assert!(matches!(
            &rule.rhs[0],
            Action::Modify {
                target: RhsTarget::Idx(1),
                ..
            }
        ));
        assert!(matches!(&rule.rhs[1], Action::Remove(RhsTarget::Idx(1))));
    }

    #[test]
    fn conj_group_and_anyof_edge_cases() {
        // Variables are rejected inside << >>.
        let err = parse_rule("(p r (c ^a << <v> 1 >>) (halt))").unwrap_err();
        assert!(err.message.contains("<< ... >>"), "{}", err);
        // A conjunction group with one term collapses to that term.
        let rule = parse_rule("(p r (c ^a { <v> }) (halt))").unwrap();
        assert_eq!(
            rule.lhs[0].tests[0].terms,
            vec![TestTerm::Pred(Pred::Eq, Operand::Var(Symbol::new("v")))]
        );
        // Nested conjunction groups flatten at analysis time but parse
        // as nested structure.
        let rule = parse_rule("(p r (c ^a { > 1 { < 9 <> 5 } }) (halt))").unwrap();
        assert_eq!(rule.lhs[0].tests[0].terms.len(), 1);
    }

    #[test]
    fn foreach_orders_parse() {
        for (kw, expected) in [
            ("", IterOrder::Default),
            (" ascending", IterOrder::Ascending),
            (" descending", IterOrder::Descending),
        ] {
            let src = format!("(p r [c ^a <v>] (foreach <v>{} (write <v>)))", kw);
            let rule = parse_rule(&src).unwrap();
            let Action::ForEach { order, .. } = &rule.rhs[0] else {
                panic!()
            };
            assert_eq!(*order, expected, "{:?}", kw);
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse_rule("(p r\n(c ^a 1)\n-->\n(frobnicate))").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("frobnicate"), "{}", err);
    }

    #[test]
    fn empty_rhs_is_error() {
        let err = parse_rule("(p r (c ^a 1))").unwrap_err();
        assert!(err.message.contains("RHS"), "{}", err);
    }
}
