#![warn(missing_docs)]
//! The rule language of the paper: an OPS5 subset extended with every
//! set-oriented construct from Gordin & Pasik (SIGMOD 1991).
//!
//! Pipeline: source text → [`parser::parse_program`] → [`ast::Program`] →
//! [`analyze::analyze_program`] → [`analyze::AnalyzedRule`]s, which any
//! [`matcher::Matcher`] implementation can compile.
//!
//! ```
//! use sorete_lang::{parse_rule, analyze_rule};
//!
//! let rule = parse_rule(
//!     "(p SwitchTeams
//!        { [player ^team A] <ATeam> }
//!        { [player ^team B] <BTeam> }
//!        :test ((count <ATeam>) == (count <BTeam>))
//!        (set-modify <ATeam> ^team B)
//!        (set-modify <BTeam> ^team A))").unwrap();
//! let analyzed = analyze_rule(&rule).unwrap();
//! assert!(analyzed.is_set_oriented);
//! assert_eq!(analyzed.aggregates.len(), 2);
//! ```

pub mod analyze;
pub mod ast;
pub mod eval;
pub mod json;
pub mod matcher;
pub mod parser;
pub mod printer;
pub mod token;

pub use analyze::{analyze_program, analyze_rule, AnalyzeError, AnalyzedRule};
pub use ast::{Action, CondElem, Expr, IterOrder, Literalize, Program, Rule};
pub use eval::{eval, eval_truthy, Env, EvalError, FnEnv};
pub use matcher::Matcher;
pub use parser::{parse_program, parse_rule, ParseError};
pub use printer::{print_program, print_rule};
