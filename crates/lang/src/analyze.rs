//! Semantic analysis: turns a parsed [`Rule`] into an [`AnalyzedRule`] that
//! match engines can compile directly.
//!
//! This is where the paper's §4.1 variable classification happens:
//!
//! - a pattern variable is **set-oriented** iff it occurs only in
//!   set-oriented positive CEs and is not listed in `:scalar`;
//! - a PV occurring in both a set-oriented and a regular CE is scalar
//!   ("bound to the value occurring in the WME matching the regular CE");
//! - the S-node static data `(C, P, APVs, ACEs, T)` is derived here:
//!   `C` = the non-set-oriented positive CEs ([`AnalyzedRule::scalar_ces`]),
//!   `P` = the set-oriented PVs forced scalar ([`AnalyzedRule::scalar_pvs`]),
//!   `APVs`/`ACEs` = the aggregate specs ([`AnalyzedRule::aggregates`]),
//!   `T` = the `:test` expressions ([`AnalyzedRule::tests`]).

use crate::ast::*;
use sorete_base::{FxHashMap, FxHashSet, Symbol, Value};
use std::fmt;

/// An error found while analysing a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeError {
    /// Offending rule.
    pub rule: Symbol,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule `{}`: {}", self.rule, self.message)
    }
}

impl std::error::Error for AnalyzeError {}

/// A constant (alpha) test on one attribute.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ConstTest {
    /// Tested attribute.
    pub attr: Symbol,
    /// The test.
    pub kind: ConstTestKind,
}

/// Kinds of constant tests.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConstTestKind {
    /// `attr pred value`.
    Pred(Pred, Value),
    /// `attr << v1 v2 ... >>`.
    AnyOf(Vec<Value>),
}

impl ConstTest {
    /// Evaluate against a WME attribute value.
    pub fn matches(&self, actual: &Value) -> bool {
        match &self.kind {
            ConstTestKind::Pred(p, v) => p.apply(actual, v),
            ConstTestKind::AnyOf(vals) => vals.iter().any(|v| v == actual),
        }
    }
}

/// A variable consistency test between this CE and an earlier positive CE
/// (a join test in database terms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarJoin {
    /// Attribute of *this* CE.
    pub attr: Symbol,
    /// Predicate, oriented as `this.attr pred other.attr`.
    pub pred: Pred,
    /// Positive index of the earlier CE the variable was bound in.
    pub other_pos_ce: usize,
    /// Attribute of the earlier CE holding the binding.
    pub other_attr: Symbol,
}

/// A variable consistency test between two attributes of the *same* CE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IntraTest {
    /// Attribute being tested.
    pub attr: Symbol,
    /// Predicate, oriented as `attr pred other_attr`.
    pub pred: Pred,
    /// The attribute bound earlier in this CE.
    pub other_attr: Symbol,
}

/// A condition element after analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzedCe {
    /// WME class.
    pub class: Symbol,
    /// Absence test.
    pub negated: bool,
    /// `[...]` CE.
    pub set_oriented: bool,
    /// Index among positive CEs (column in instantiation rows); `None` for
    /// negated CEs.
    pub pos_idx: Option<usize>,
    /// Alpha tests.
    pub const_tests: Vec<ConstTest>,
    /// Join tests against earlier positive CEs.
    pub var_joins: Vec<VarJoin>,
    /// Same-CE variable tests.
    pub intra_tests: Vec<IntraTest>,
    /// First-occurrence bindings this CE introduces: `(attr, var)`.
    pub binds: Vec<(Symbol, Symbol)>,
}

/// Where a pattern variable gets its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarSource {
    /// Positive CE index of the binding occurrence.
    pub pos_ce: usize,
    /// Attribute within that CE.
    pub attr: Symbol,
    /// True if the variable is set-oriented (its "value" is a domain).
    pub set_oriented: bool,
}

/// An aggregate operation required by the rule (`APVs` ∪ `ACEs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggSpec {
    /// The operator.
    pub op: AggOp,
    /// What it aggregates over.
    pub target: AggTarget,
}

/// Target of an aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggTarget {
    /// A set-oriented pattern variable: aggregate over its domain, read
    /// from `(pos_ce, attr)` across the SOI's rows.
    Pv {
        /// The variable.
        var: Symbol,
        /// Positive CE supplying the values.
        pos_ce: usize,
        /// Attribute supplying the values.
        attr: Symbol,
    },
    /// An element variable of a set-oriented CE: aggregate over the WMEs
    /// matched by that CE.
    Ce {
        /// The element variable.
        var: Symbol,
        /// The CE's positive index.
        pos_ce: usize,
    },
}

impl AggTarget {
    /// The variable this aggregate refers to in source text.
    pub fn var(&self) -> Symbol {
        match self {
            AggTarget::Pv { var, .. } | AggTarget::Ce { var, .. } => *var,
        }
    }
}

/// A `:scalar` pattern variable that would otherwise be set-oriented
/// (the paper's `P`): part of the SOI key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScalarPv {
    /// The variable.
    pub var: Symbol,
    /// Positive CE its value is read from.
    pub pos_ce: usize,
    /// Attribute its value is read from.
    pub attr: Symbol,
}

/// A fully analysed rule, ready for compilation into any matcher.
#[derive(Clone, Debug)]
pub struct AnalyzedRule {
    /// Rule name.
    pub name: Symbol,
    /// All CEs, in source order.
    pub ces: Vec<AnalyzedCe>,
    /// Number of positive CEs (the width of instantiation rows).
    pub num_pos: usize,
    /// True if any positive CE is set-oriented.
    pub is_set_oriented: bool,
    /// `C`: positive indices of the non-set-oriented positive CEs.
    pub scalar_ces: Vec<usize>,
    /// `P`: `:scalar` PVs occurring only in set CEs.
    pub scalar_pvs: Vec<ScalarPv>,
    /// `APVs` ∪ `ACEs`: aggregate operations, in first-reference order.
    pub aggregates: Vec<AggSpec>,
    /// `T`: the `:test` expressions (conjoined).
    pub tests: Vec<Expr>,
    /// OPS5 specificity (total number of LHS tests).
    pub specificity: u32,
    /// RHS actions.
    pub rhs: Vec<Action>,
    /// Element variables: var → positive CE index.
    pub elem_vars: FxHashMap<Symbol, usize>,
    /// Canonical binding site of every pattern variable.
    pub var_sources: FxHashMap<Symbol, VarSource>,
    /// The original AST (for printing and error messages).
    pub source: Rule,
}

impl AnalyzedRule {
    /// Index of an aggregate `(op, var)` within [`Self::aggregates`], which
    /// is also its index in `ConflictItem::aggregates`.
    pub fn agg_index(&self, op: AggOp, var: Symbol) -> Option<usize> {
        self.aggregates
            .iter()
            .position(|a| a.op == op && a.target.var() == var)
    }

    /// True if `var` is a set-oriented pattern variable.
    pub fn is_set_var(&self, var: Symbol) -> bool {
        self.var_sources.get(&var).is_some_and(|s| s.set_oriented)
    }

    /// The positive CE index whose set-oriented element variable is `var`.
    pub fn set_elem_ce(&self, var: Symbol) -> Option<usize> {
        let &pos = self.elem_vars.get(&var)?;
        let ce = self.ces.iter().find(|c| c.pos_idx == Some(pos))?;
        ce.set_oriented.then_some(pos)
    }
}

/// Analyse one rule.
pub fn analyze_rule(rule: &Rule) -> Result<AnalyzedRule, AnalyzeError> {
    Analyzer::new(rule).run()
}

/// Analyse every rule of a program.
pub fn analyze_program(prog: &Program) -> Result<Vec<AnalyzedRule>, AnalyzeError> {
    let mut seen = FxHashSet::default();
    for r in &prog.rules {
        if !seen.insert(r.name) {
            return Err(AnalyzeError {
                rule: r.name,
                message: "duplicate rule name".into(),
            });
        }
    }
    prog.rules.iter().map(analyze_rule).collect()
}

struct Analyzer<'a> {
    rule: &'a Rule,
}

impl<'a> Analyzer<'a> {
    fn new(rule: &'a Rule) -> Self {
        Analyzer { rule }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, AnalyzeError> {
        Err(AnalyzeError {
            rule: self.rule.name,
            message: message.into(),
        })
    }

    fn run(self) -> Result<AnalyzedRule, AnalyzeError> {
        let rule = self.rule;

        // -------- pass 1: variable occurrence census (positive CEs only).
        // occurs_regular / occurs_set: does the var occur in a regular /
        // set-oriented positive CE?
        let mut occurs_regular: FxHashSet<Symbol> = FxHashSet::default();
        let mut occurs_set: FxHashSet<Symbol> = FxHashSet::default();
        for ce in &rule.lhs {
            if ce.negated {
                if ce.set_oriented {
                    return self.err("a negated CE cannot be set-oriented");
                }
                if ce.elem_var.is_some() {
                    return self.err("a negated CE cannot bind an element variable");
                }
                continue;
            }
            for t in &ce.tests {
                for_each_var(&t.terms, &mut |v| {
                    if ce.set_oriented {
                        occurs_set.insert(v);
                    } else {
                        occurs_regular.insert(v);
                    }
                });
            }
        }
        let scalar_listed: FxHashSet<Symbol> = rule.scalar.iter().copied().collect();
        for v in &rule.scalar {
            if !occurs_set.contains(v) && !occurs_regular.contains(v) {
                return self.err(format!(
                    "`:scalar` variable <{}> does not occur in the LHS",
                    v
                ));
            }
        }
        let is_set_var = |v: Symbol| {
            occurs_set.contains(&v) && !occurs_regular.contains(&v) && !scalar_listed.contains(&v)
        };

        // -------- pass 2: per-CE analysis, binding sites, join extraction.
        let mut ces: Vec<AnalyzedCe> = Vec::with_capacity(rule.lhs.len());
        let mut var_sources: FxHashMap<Symbol, VarSource> = FxHashMap::default();
        let mut elem_vars: FxHashMap<Symbol, usize> = FxHashMap::default();
        let mut num_pos = 0usize;
        let mut specificity = 0u32;

        for ce in &rule.lhs {
            let pos_idx = if ce.negated {
                None
            } else {
                let i = num_pos;
                num_pos += 1;
                Some(i)
            };
            specificity += 1; // the class test
            let mut ace = AnalyzedCe {
                class: ce.class,
                negated: ce.negated,
                set_oriented: ce.set_oriented,
                pos_idx,
                const_tests: Vec::new(),
                var_joins: Vec::new(),
                intra_tests: Vec::new(),
                binds: Vec::new(),
            };
            // Variables bound earlier *within this CE* (attr they bound to).
            let mut local_binds: FxHashMap<Symbol, Symbol> = FxHashMap::default();

            for t in &ce.tests {
                let mut terms: Vec<&TestTerm> = Vec::new();
                flatten_terms(&t.terms, &mut terms);
                for term in terms {
                    specificity += 1;
                    match term {
                        TestTerm::AnyOf(vals) => ace.const_tests.push(ConstTest {
                            attr: t.attr,
                            kind: ConstTestKind::AnyOf(vals.clone()),
                        }),
                        TestTerm::Pred(p, Operand::Const(v)) => ace.const_tests.push(ConstTest {
                            attr: t.attr,
                            kind: ConstTestKind::Pred(*p, *v),
                        }),
                        TestTerm::Pred(p, Operand::Var(v)) => {
                            if let Some(&bound_attr) = local_binds.get(v) {
                                ace.intra_tests.push(IntraTest {
                                    attr: t.attr,
                                    pred: *p,
                                    other_attr: bound_attr,
                                });
                            } else if let Some(src) = var_sources.get(v) {
                                ace.var_joins.push(VarJoin {
                                    attr: t.attr,
                                    pred: *p,
                                    other_pos_ce: src.pos_ce,
                                    other_attr: src.attr,
                                });
                            } else if *p == Pred::Eq {
                                if ce.negated {
                                    // Binding local to the negated CE.
                                    local_binds.insert(*v, t.attr);
                                } else {
                                    local_binds.insert(*v, t.attr);
                                    ace.binds.push((t.attr, *v));
                                    var_sources.insert(
                                        *v,
                                        VarSource {
                                            pos_ce: pos_idx.unwrap(),
                                            attr: t.attr,
                                            set_oriented: is_set_var(*v),
                                        },
                                    );
                                }
                            } else {
                                return self.err(format!(
                                    "variable <{}> is used with `{:?}` before being bound",
                                    v, p
                                ));
                            }
                        }
                        TestTerm::Conj(_) => unreachable!("flattened"),
                    }
                }
            }

            if let Some(ev) = ce.elem_var {
                if var_sources.contains_key(&ev) || elem_vars.contains_key(&ev) {
                    return self.err(format!("element variable <{}> is already bound", ev));
                }
                elem_vars.insert(ev, pos_idx.unwrap());
            }
            ces.push(ace);
        }

        let is_set_oriented = ces.iter().any(|c| !c.negated && c.set_oriented);
        if !is_set_oriented && !rule.tests.is_empty() {
            return self.err("`:test` requires at least one set-oriented CE");
        }
        if !is_set_oriented && !rule.scalar.is_empty() {
            return self.err("`:scalar` requires at least one set-oriented CE");
        }

        // -------- S-node static data.
        let scalar_ces: Vec<usize> = ces
            .iter()
            .filter(|c| !c.negated && !c.set_oriented)
            .map(|c| c.pos_idx.unwrap())
            .collect();

        let mut scalar_pvs = Vec::new();
        for v in &rule.scalar {
            // Only vars that would otherwise be set-oriented join the key;
            // a `:scalar` var also bound by a regular CE is already scalar.
            if occurs_regular.contains(v) {
                continue;
            }
            let src = match var_sources.get(v) {
                Some(s) => s,
                None => return self.err(format!("`:scalar` variable <{}> is never bound", v)),
            };
            scalar_pvs.push(ScalarPv {
                var: *v,
                pos_ce: src.pos_ce,
                attr: src.attr,
            });
        }

        // -------- aggregates referenced anywhere in :test or the RHS.
        let mut aggregates: Vec<AggSpec> = Vec::new();
        {
            let mut add = |op: AggOp, var: Symbol| -> Result<(), AnalyzeError> {
                let target = if let Some(&pos) = elem_vars.get(&var) {
                    let ce = ces.iter().find(|c| c.pos_idx == Some(pos)).unwrap();
                    if !ce.set_oriented {
                        return Err(AnalyzeError {
                            rule: rule.name,
                            message: format!(
                                "aggregate ({} <{}>) over a non-set-oriented element variable",
                                op.name(),
                                var
                            ),
                        });
                    }
                    if op != AggOp::Count {
                        return Err(AnalyzeError {
                            rule: rule.name,
                            message: format!(
                                "only `count` applies to an element variable, not `{}`",
                                op.name()
                            ),
                        });
                    }
                    AggTarget::Ce { var, pos_ce: pos }
                } else if let Some(src) = var_sources.get(&var) {
                    if !src.set_oriented {
                        return Err(AnalyzeError {
                            rule: rule.name,
                            message: format!(
                                "aggregate ({} <{}>) over a scalar variable",
                                op.name(),
                                var
                            ),
                        });
                    }
                    AggTarget::Pv {
                        var,
                        pos_ce: src.pos_ce,
                        attr: src.attr,
                    }
                } else {
                    return Err(AnalyzeError {
                        rule: rule.name,
                        message: format!("aggregate over unbound variable <{}>", var),
                    });
                };
                let spec = AggSpec { op, target };
                if !aggregates.contains(&spec) {
                    aggregates.push(spec);
                }
                Ok(())
            };
            for t in &rule.tests {
                collect_aggs(t, &mut |op, var| add(op, var))?;
            }
            for a in &rule.rhs {
                collect_aggs_action(a, &mut |op, var| add(op, var))?;
            }
        }
        specificity += rule.tests.len() as u32;

        // -------- :test variable validation: only scalars and aggregates.
        for t in &rule.tests {
            let mut bad: Option<Symbol> = None;
            vars_in_expr(t, &mut |v| {
                let known_scalar = var_sources.get(&v).is_some_and(|s| !s.set_oriented)
                    || scalar_pvs.iter().any(|sp| sp.var == v);
                if !known_scalar && bad.is_none() {
                    bad = Some(v);
                }
            });
            if let Some(v) = bad {
                return self.err(format!(
                    "`:test` may reference scalar variables and aggregates only; <{}> is not scalar",
                    v
                ));
            }
        }

        // -------- RHS validation.
        let analyzed = AnalyzedRule {
            name: rule.name,
            ces,
            num_pos,
            is_set_oriented,
            scalar_ces,
            scalar_pvs,
            aggregates,
            tests: rule.tests.clone(),
            specificity,
            rhs: rule.rhs.clone(),
            elem_vars,
            var_sources,
            source: rule.clone(),
        };
        self.validate_rhs(&analyzed)?;
        Ok(analyzed)
    }

    fn validate_rhs(&self, ar: &AnalyzedRule) -> Result<(), AnalyzeError> {
        let mut bound: FxHashSet<Symbol> = FxHashSet::default();
        self.validate_actions(ar, &ar.rhs, &mut bound, &mut FxHashSet::default())
    }

    fn validate_actions(
        &self,
        ar: &AnalyzedRule,
        actions: &[Action],
        rhs_binds: &mut FxHashSet<Symbol>,
        iterated: &mut FxHashSet<Symbol>,
    ) -> Result<(), AnalyzeError> {
        for a in actions {
            match a {
                Action::Make { slots, .. } => {
                    for (_, e) in slots {
                        self.validate_expr(ar, e, rhs_binds)?;
                    }
                }
                Action::Remove(t) | Action::Modify { target: t, .. } => {
                    if let RhsTarget::Var(v) = t {
                        if !ar.elem_vars.contains_key(v) {
                            return self.err(format!(
                                "`remove`/`modify` target <{}> is not an element variable",
                                v
                            ));
                        }
                    }
                    if let RhsTarget::Idx(i) = t {
                        if *i == 0 || *i > ar.num_pos {
                            return self.err(format!("CE index {} out of range", i));
                        }
                    }
                    if let Action::Modify { slots, .. } = a {
                        for (_, e) in slots {
                            self.validate_expr(ar, e, rhs_binds)?;
                        }
                    }
                }
                Action::SetRemove(v) | Action::SetModify { var: v, .. } => {
                    if ar.set_elem_ce(*v).is_none() {
                        return self.err(format!(
                            "`set-remove`/`set-modify` target <{}> is not a set-oriented element variable",
                            v
                        ));
                    }
                    if let Action::SetModify { slots, .. } = a {
                        for (_, e) in slots {
                            self.validate_expr(ar, e, rhs_binds)?;
                        }
                    }
                }
                Action::Write(parts) => {
                    for e in parts {
                        self.validate_expr(ar, e, rhs_binds)?;
                    }
                }
                Action::Bind(v, e) => {
                    self.validate_expr(ar, e, rhs_binds)?;
                    rhs_binds.insert(*v);
                }
                Action::Halt => {}
                Action::ForEach { var, body, .. } => {
                    let is_set_pv = ar.is_set_var(*var) && !iterated.contains(var);
                    let is_set_ce = ar.set_elem_ce(*var).is_some() && !iterated.contains(var);
                    if !is_set_pv && !is_set_ce {
                        return self.err(format!(
                            "`foreach` variable <{}> is not an (un-iterated) set-oriented variable",
                            var
                        ));
                    }
                    iterated.insert(*var);
                    self.validate_actions(ar, body, rhs_binds, iterated)?;
                    iterated.remove(var);
                }
                Action::If { cond, then, els } => {
                    self.validate_expr(ar, cond, rhs_binds)?;
                    // Bindings escape branches (the paper's RemoveDups sets
                    // <First> inside a branch and reads it next iteration).
                    self.validate_actions(ar, then, rhs_binds, iterated)?;
                    self.validate_actions(ar, els, rhs_binds, iterated)?;
                }
            }
        }
        Ok(())
    }

    fn validate_expr(
        &self,
        ar: &AnalyzedRule,
        e: &Expr,
        rhs_binds: &FxHashSet<Symbol>,
    ) -> Result<(), AnalyzeError> {
        let mut bad: Option<Symbol> = None;
        vars_in_expr(e, &mut |v| {
            let known = ar.var_sources.contains_key(&v)
                || ar.elem_vars.contains_key(&v)
                || rhs_binds.contains(&v);
            if !known && bad.is_none() {
                bad = Some(v);
            }
        });
        match bad {
            Some(v) => self.err(format!("unbound variable <{}> in RHS expression", v)),
            None => Ok(()),
        }
    }
}

fn flatten_terms<'t>(terms: &'t [TestTerm], out: &mut Vec<&'t TestTerm>) {
    for t in terms {
        match t {
            TestTerm::Conj(inner) => flatten_terms(inner, out),
            other => out.push(other),
        }
    }
}

/// Visit variables in *binding* position (equality tests). Only equality
/// occurrences determine whether a PV is scalar or set-oriented: a
/// comparison like `^z > <v>` tests against the variable but does not bind
/// it, so it does not affect the census.
fn for_each_var(terms: &[TestTerm], f: &mut impl FnMut(Symbol)) {
    for t in terms {
        match t {
            TestTerm::Pred(Pred::Eq, Operand::Var(v)) => f(*v),
            TestTerm::Conj(inner) => for_each_var(inner, f),
            _ => {}
        }
    }
}

/// Visit every `Var` reference in an expression (not aggregate targets).
pub fn vars_in_expr(e: &Expr, f: &mut impl FnMut(Symbol)) {
    match e {
        Expr::Const(_) | Expr::Agg(..) => {}
        Expr::Var(v) => f(*v),
        Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) => {
            vars_in_expr(l, f);
            vars_in_expr(r, f);
        }
        Expr::And(parts) | Expr::Or(parts) => {
            for p in parts {
                vars_in_expr(p, f);
            }
        }
        Expr::Not(inner) => vars_in_expr(inner, f),
    }
}

fn collect_aggs(
    e: &Expr,
    f: &mut impl FnMut(AggOp, Symbol) -> Result<(), AnalyzeError>,
) -> Result<(), AnalyzeError> {
    match e {
        Expr::Agg(op, var) => f(*op, *var),
        Expr::Const(_) | Expr::Var(_) => Ok(()),
        Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) => {
            collect_aggs(l, f)?;
            collect_aggs(r, f)
        }
        Expr::And(parts) | Expr::Or(parts) => {
            for p in parts {
                collect_aggs(p, f)?;
            }
            Ok(())
        }
        Expr::Not(inner) => collect_aggs(inner, f),
    }
}

fn collect_aggs_action(
    a: &Action,
    f: &mut impl FnMut(AggOp, Symbol) -> Result<(), AnalyzeError>,
) -> Result<(), AnalyzeError> {
    match a {
        Action::Make { slots, .. }
        | Action::Modify { slots, .. }
        | Action::SetModify { slots, .. } => {
            for (_, e) in slots {
                collect_aggs(e, f)?;
            }
            Ok(())
        }
        Action::Write(parts) => {
            for e in parts {
                collect_aggs(e, f)?;
            }
            Ok(())
        }
        Action::Bind(_, e) => collect_aggs(e, f),
        Action::Remove(_) | Action::SetRemove(_) | Action::Halt => Ok(()),
        Action::ForEach { body, .. } => {
            for a in body {
                collect_aggs_action(a, f)?;
            }
            Ok(())
        }
        Action::If { cond, then, els } => {
            collect_aggs(cond, f)?;
            for a in then.iter().chain(els) {
                collect_aggs_action(a, f)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn analyze(src: &str) -> AnalyzedRule {
        analyze_rule(&parse_rule(src).unwrap()).unwrap()
    }

    fn analyze_err(src: &str) -> AnalyzeError {
        analyze_rule(&parse_rule(src).unwrap()).unwrap_err()
    }

    #[test]
    fn classifies_figure1_compete_as_regular() {
        let ar = analyze(
            "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B) (write x))",
        );
        assert!(!ar.is_set_oriented);
        assert_eq!(ar.num_pos, 2);
        assert_eq!(ar.scalar_ces, vec![0, 1]);
        assert!(!ar.var_sources[&Symbol::new("n1")].set_oriented);
    }

    #[test]
    fn join_extraction() {
        let ar = analyze("(p r (a ^x <v>) (b ^y <v> ^z > <v>) (write x))");
        let ce1 = &ar.ces[1];
        assert_eq!(ce1.var_joins.len(), 2);
        assert_eq!(
            ce1.var_joins[0],
            VarJoin {
                attr: Symbol::new("y"),
                pred: Pred::Eq,
                other_pos_ce: 0,
                other_attr: Symbol::new("x"),
            }
        );
        assert_eq!(ce1.var_joins[1].pred, Pred::Gt);
    }

    #[test]
    fn intra_ce_test() {
        let ar = analyze("(p r (a ^x <v> ^y <> <v>) (write x))");
        let ce = &ar.ces[0];
        assert_eq!(ce.binds, vec![(Symbol::new("x"), Symbol::new("v"))]);
        assert_eq!(
            ce.intra_tests,
            vec![IntraTest {
                attr: Symbol::new("y"),
                pred: Pred::Ne,
                other_attr: Symbol::new("x"),
            }]
        );
    }

    #[test]
    fn set_variable_classification() {
        // <n> occurs in both set CEs only → set-oriented (Figure 2, compete1).
        let ar = analyze("(p r [player ^name <n> ^team A] [player ^name <n> ^team B] (write x))");
        assert!(ar.is_set_oriented);
        assert!(ar.is_set_var(Symbol::new("n")));
        assert!(ar.scalar_ces.is_empty());

        // <n> also in a regular CE → scalar (Figure 2, compete2).
        let ar2 = analyze("(p r [player ^name <n> ^team A] (player ^name <n> ^team B) (write x))");
        assert!(ar2.is_set_oriented);
        assert!(!ar2.is_set_var(Symbol::new("n")));
        assert_eq!(ar2.scalar_ces, vec![1]);
    }

    #[test]
    fn scalar_clause_forces_partitioning() {
        let ar = analyze(
            "(p RemoveDups { [player ^name <n> ^team <t>] <P> }
               :scalar (<n> <t>) :test ((count <P>) > 1)
               (set-remove <P>))",
        );
        assert_eq!(ar.scalar_pvs.len(), 2);
        assert_eq!(ar.scalar_pvs[0].var, Symbol::new("n"));
        assert!(!ar.is_set_var(Symbol::new("n")));
        assert_eq!(ar.aggregates.len(), 1);
        assert_eq!(ar.aggregates[0].op, AggOp::Count);
        assert!(matches!(
            ar.aggregates[0].target,
            AggTarget::Ce { pos_ce: 0, .. }
        ));
    }

    #[test]
    fn aggregate_over_pv() {
        let ar = analyze(
            "(p r (dept ^id <d>) [emp ^dept <d> ^salary <s>]
               :test ((avg <s>) > 50000) (write x))",
        );
        assert_eq!(ar.aggregates.len(), 1);
        assert!(matches!(
            ar.aggregates[0].target,
            AggTarget::Pv { pos_ce: 1, .. }
        ));
        // <d> is scalar (bound in a regular CE); <s> is set-oriented.
        assert!(!ar.is_set_var(Symbol::new("d")));
        assert!(ar.is_set_var(Symbol::new("s")));
    }

    #[test]
    fn rejects_bad_constructs() {
        // unbound var with non-eq predicate
        let e = analyze_err("(p r (a ^x > <v>) (write x))");
        assert!(e.message.contains("before being bound"), "{}", e);
        // :test on a non-set rule
        let e = analyze_err("(p r (a ^x <v>) :test (<v> > 1) (write x))");
        assert!(e.message.contains("set-oriented"), "{}", e);
        // negated set CE
        let e = analyze_err("(p r (a ^x 1) -[b ^x 1] (write x))");
        assert!(e.message.contains("negated"), "{}", e);
        // aggregate over scalar var
        let e = analyze_err("(p r (a ^x <v>) [b ^y <w>] :test ((count <v>) > 1) (halt))");
        assert!(e.message.contains("scalar"), "{}", e);
        // sum over an element variable
        let e = analyze_err("(p r { [a ^x <v>] <E> } :test ((sum <E>) > 1) (halt))");
        assert!(e.message.contains("count"), "{}", e);
        // set-modify on a scalar elem var
        let e = analyze_err("(p r { (a ^x 1) <E> } (set-modify <E> ^x 2))");
        assert!(e.message.contains("set-oriented"), "{}", e);
        // foreach over scalar var
        let e = analyze_err("(p r (a ^x <v>) [b ^y <w>] (foreach <v> (write <v>)))");
        assert!(e.message.contains("foreach"), "{}", e);
        // unbound RHS var
        let e = analyze_err("(p r (a ^x <v>) (write <nope>))");
        assert!(e.message.contains("unbound"), "{}", e);
    }

    #[test]
    fn negated_ce_local_bindings_dont_leak() {
        // <v> bound only inside the negated CE → later use is an error.
        let e = analyze_err("(p r (a ^x 1) -(b ^y <v>) (write <v>))");
        assert!(e.message.contains("unbound"), "{}", e);
    }

    #[test]
    fn negated_ce_joins_against_earlier_bindings() {
        let ar = analyze("(p r (a ^x <v>) -(b ^y <v>) (write <v>))");
        let neg = &ar.ces[1];
        assert!(neg.negated);
        assert_eq!(neg.pos_idx, None);
        assert_eq!(neg.var_joins.len(), 1);
        assert_eq!(ar.num_pos, 1);
    }

    #[test]
    fn specificity_counts_tests() {
        let ar = analyze("(p r (a ^x 1 ^y <v>) (b ^z <v>) (write x))");
        // 2 class tests + ^x 1 + ^y <v> + ^z <v> = 5
        assert_eq!(ar.specificity, 5);
    }

    #[test]
    fn foreach_nested_reiteration_rejected() {
        let e = analyze_err("(p r [a ^x <v>] (foreach <v> (foreach <v> (write <v>))))");
        assert!(e.message.contains("foreach"), "{}", e);
    }

    #[test]
    fn duplicate_rule_names_rejected() {
        let prog =
            crate::parser::parse_program("(p r (a ^x 1) (halt)) (p r (a ^x 2) (halt))").unwrap();
        assert!(analyze_program(&prog).is_err());
    }
}
