//! JSON ingestion for the server protocol: a minimal value type, a
//! recursive-descent parser, a serializer, and the fact ↔ JSON codec that
//! maps wire objects onto working-memory elements.
//!
//! The workspace has no serde; requests and responses are small and
//! machine-written, so a hand-rolled reader in the style of the rest of
//! the tree (cf. the bench gate's baseline reader) is the right size.
//! Integers are kept exact (`i64`) rather than collapsed to `f64`,
//! because WME time tags and slot values round-trip through this codec.
//!
//! Codec conventions (documented in the README's server quickstart):
//!
//! - a fact is `{"class": "player", "slots": {"name": "Jack", "n": 3}}`;
//! - JSON strings become interned symbols, integers [`Value::Int`],
//!   non-integral numbers [`Value::Float`], `null` becomes [`Value::Nil`];
//! - rendering a WME adds its `"tag"` so clients can retract by tag.

use sorete_base::{Symbol, Value, Wme};
use std::fmt::Write as _;

/// A parsed JSON value. Integer-syntax numbers stay exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written without `.`/`e` that fits an `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number as `i64` (integral floats convert).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(n) => Some(n),
            Json::Num(f) if f.fract() == 0.0 && f.abs() < 9e18 => Some(f as i64),
            _ => None,
        }
    }

    /// Number as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Num(f) => Some(f),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Boolean contents.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Serialize, compact (no added whitespace). Output re-parses to an
    /// equal value, so responses can be diffed byte-for-byte.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{}", n);
            }
            Json::Num(f) if f.is_finite() => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep the float-ness visible so it round-trips.
                    let _ = write!(out, "{:.1}", f);
                } else {
                    let _ = write!(out, "{}", f);
                }
            }
            // JSON has no NaN/Inf; degrade to null rather than emit
            // an unparseable document.
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append a JSON string literal (quoted, escaped) to `out`.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > 64 {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar at a time.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {}", start))
    }
}

// ---------------------------------------------------------------------
// Fact ↔ JSON codec.

/// A decoded fact: class plus slots, ready for
/// `ProductionSystem::assert_wme`.
pub type JsonFact = (Symbol, Vec<(Symbol, Value)>);

/// Decode one slot value. Strings intern to symbols (`"nil"` and JSON
/// `null` both mean [`Value::Nil`]); integer syntax stays integral.
pub fn value_from_json(v: &Json) -> Result<Value, String> {
    match v {
        Json::Null => Ok(Value::Nil),
        Json::Str(s) if s == "nil" => Ok(Value::Nil),
        Json::Str(s) => Ok(Value::sym(s)),
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::Num(f) => Ok(Value::Float(*f)),
        Json::Bool(b) => Ok(Value::sym(if *b { "true" } else { "false" })),
        other => Err(format!("bad slot value: {:?}", other)),
    }
}

/// Encode one slot value. The inverse of [`value_from_json`] up to the
/// symbol/string identification.
pub fn value_to_json(v: &Value) -> Json {
    match *v {
        Value::Nil => Json::Null,
        Value::Int(n) => Json::Int(n),
        Value::Float(f) => Json::Num(f),
        Value::Sym(s) => Json::Str(s.as_str().to_string()),
        Value::Tag(t) => Json::Int(t.raw() as i64),
    }
}

/// Decode `{"class": ..., "slots": {...}}` into a fact.
pub fn fact_from_json(v: &Json) -> Result<JsonFact, String> {
    let class = v
        .get("class")
        .and_then(Json::as_str)
        .ok_or("fact needs a string \"class\"")?;
    let mut slots = Vec::new();
    if let Some(obj) = v.get("slots") {
        let fields = obj.as_obj().ok_or("\"slots\" must be an object")?;
        for (attr, val) in fields {
            slots.push((Symbol::new(attr), value_from_json(val)?));
        }
    }
    Ok((Symbol::new(class), slots))
}

/// Encode a WME as a wire object, tag included so clients can retract it.
pub fn wme_to_json(w: &Wme) -> Json {
    let slots = w
        .slots()
        .iter()
        .map(|(a, v)| (a.as_str().to_string(), value_to_json(v)))
        .collect();
    Json::Obj(vec![
        ("tag".into(), Json::Int(w.tag.raw() as i64)),
        ("class".into(), Json::Str(w.class.as_str().to_string())),
        ("slots".into(), Json::Obj(slots)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(
            parse("[1, \"a\", {\"k\": null}]").unwrap(),
            Json::Arr(vec![
                Json::Int(1),
                Json::Str("a".into()),
                Json::Obj(vec![("k".into(), Json::Null)]),
            ])
        );
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn render_round_trips() {
        let cases = [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":-7,\"b\":[\"x\",2.5],\"c\":{\"d\":null}}",
            "\"quote \\\" slash \\\\ nl \\n\"",
        ];
        for src in cases {
            let v = parse(src).unwrap();
            let re = parse(&v.render()).unwrap();
            assert_eq!(v, re, "{}", src);
        }
        // Large integers survive exactly (f64 would round these).
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.render(), "9007199254740993");
    }

    #[test]
    fn escape_decoding() {
        let v = parse("\"tab\\tquote\\\"u\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("tab\tquote\"uA"));
    }

    #[test]
    fn fact_codec_round_trip() {
        let v = parse(
            "{\"class\":\"player\",\"slots\":{\"name\":\"Jack\",\"n\":3,\"r\":0.5,\"x\":null}}",
        )
        .unwrap();
        let (class, slots) = fact_from_json(&v).unwrap();
        assert_eq!(class.as_str(), "player");
        assert_eq!(slots[0], (Symbol::new("name"), Value::sym("Jack")));
        assert_eq!(slots[1], (Symbol::new("n"), Value::Int(3)));
        assert_eq!(slots[2], (Symbol::new("r"), Value::Float(0.5)));
        assert_eq!(slots[3], (Symbol::new("x"), Value::Nil));
        // "nil" spelled as a string also decodes to Nil (fact-file parity).
        let v = parse("{\"class\":\"a\",\"slots\":{\"s\":\"nil\"}}").unwrap();
        assert_eq!(fact_from_json(&v).unwrap().1[0].1, Value::Nil);
    }

    #[test]
    fn fact_decode_rejects_malformed() {
        assert!(fact_from_json(&parse("{\"slots\":{}}").unwrap()).is_err());
        assert!(fact_from_json(&parse("{\"class\":3}").unwrap()).is_err());
        assert!(fact_from_json(&parse("{\"class\":\"a\",\"slots\":[1]}").unwrap()).is_err());
        assert!(
            fact_from_json(&parse("{\"class\":\"a\",\"slots\":{\"k\":[1]}}").unwrap()).is_err()
        );
    }

    #[test]
    fn value_codec_inverse() {
        for v in [
            Value::Nil,
            Value::Int(-3),
            Value::Float(1.25),
            Value::sym("hello"),
        ] {
            let back = value_from_json(&value_to_json(&v)).unwrap();
            assert_eq!(v, back);
        }
    }
}
