#![warn(missing_docs)]
//! A deliberately naive matcher: recomputes the whole conflict set from
//! scratch after every working-memory change and emits the difference.
//!
//! Its value is *independence*: it shares no matching code with Rete or
//! TREAT (plain nested-loop joins; direct grouping and aggregation instead
//! of the S-node algorithm), so property tests that compare matchers
//! against it are comparing two genuinely different implementations of the
//! paper's semantics. It is also the paper's strawman cost model: matching
//! effort proportional to working-memory size on every cycle.
//!
//! ```
//! use sorete_naive::NaiveMatcher;
//! use sorete_lang::{analyze_rule, parse_rule, Matcher};
//! use sorete_base::{Symbol, TimeTag, Value, Wme};
//! use std::sync::Arc;
//!
//! let mut naive = NaiveMatcher::new();
//! naive.add_rule(Arc::new(analyze_rule(&parse_rule(
//!     "(p r (a ^x <v>) (halt))").unwrap()).unwrap()));
//! naive.insert_wme(&Wme::new(TimeTag::new(1), Symbol::new("a"),
//!                            vec![(Symbol::new("x"), Value::Int(5))]));
//! assert_eq!(naive.items().count(), 1);
//! ```

use sorete_base::{
    ConflictItem, CsDelta, FxHashMap, InstKey, KeyPart, MatchStats, MemoryReport, RetimeInfo,
    RuleId, Symbol, TimeTag, TraceEvent, Tracer, Value, Wme,
};
use sorete_lang::analyze::{AggTarget, AnalyzedCe, AnalyzedRule};
use sorete_lang::ast::AggOp;
use sorete_lang::eval::{eval_truthy, Env};
use sorete_lang::matcher::Matcher;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The oracle matcher.
#[derive(Default)]
pub struct NaiveMatcher {
    rules: Vec<Arc<AnalyzedRule>>,
    excised: sorete_base::FxHashSet<usize>,
    wmes: FxHashMap<TimeTag, Wme>,
    /// Current conflict set, keyed by instantiation identity.
    current: FxHashMap<InstKey, ConflictItem>,
    deltas: Vec<CsDelta>,
    stats: MatchStats,
    tracer: Tracer,
}

impl NaiveMatcher {
    /// An empty matcher.
    pub fn new() -> NaiveMatcher {
        NaiveMatcher::default()
    }

    /// The current conflict set (the oracle's ground truth), unordered.
    pub fn items(&self) -> impl Iterator<Item = &ConflictItem> {
        self.current.values()
    }

    /// Recompute everything and diff against the previous conflict set.
    fn refresh(&mut self) {
        // The whole recompute is this matcher's one "beta node": the
        // physical trace shows a full-network activation per WM change.
        self.tracer.emit_physical(|| TraceEvent::BetaActivation {
            node: 0,
            kind: "refresh",
        });
        let mut fresh: FxHashMap<InstKey, ConflictItem> = FxHashMap::default();
        for (idx, rule) in self.rules.iter().enumerate() {
            if self.excised.contains(&idx) {
                continue;
            }
            let rid = RuleId::new(idx);
            let rows = self.enumerate_rows(rule);
            if rule.is_set_oriented {
                for item in self.group_sois(rule, rid, rows) {
                    fresh.insert(item.key.clone(), item);
                }
            } else {
                for tags in rows {
                    let mut recency = tags.clone();
                    recency.sort_unstable_by(|a, b| b.cmp(a));
                    let key = InstKey::Tuple {
                        rule: rid,
                        tags: tags.clone().into(),
                    };
                    fresh.insert(
                        key.clone(),
                        ConflictItem {
                            key,
                            rows: vec![tags.into()],
                            aggregates: Vec::new(),
                            version: 0,
                            recency: recency.into(),
                            specificity: rule.specificity,
                        },
                    );
                }
            }
        }
        // Diff: removals, then insertions/updates.
        let old = std::mem::take(&mut self.current);
        for key in old.keys() {
            if !fresh.contains_key(key) {
                self.deltas.push(CsDelta::Remove(key.clone()));
            }
        }
        for (key, item) in &fresh {
            match old.get(key) {
                None => self.deltas.push(CsDelta::Insert(item.clone())),
                Some(prev) => {
                    if prev.rows != item.rows || prev.aggregates != item.aggregates {
                        self.deltas.push(CsDelta::Retime(RetimeInfo {
                            key: item.key.clone(),
                            version: item.version,
                            recency: item.recency.clone(),
                        }));
                    }
                }
            }
        }
        self.current = fresh;
    }

    /// All complete positive-CE rows of a rule, by nested-loop join.
    fn enumerate_rows(&self, rule: &AnalyzedRule) -> Vec<Vec<TimeTag>> {
        // Partial rows hold the matched tag per *positive* CE processed so far.
        let mut partials: Vec<Vec<TimeTag>> = vec![Vec::new()];
        for ce in &rule.ces {
            if partials.is_empty() {
                break;
            }
            if ce.negated {
                partials.retain(|row| !self.exists_match(ce, row));
            } else {
                let mut next = Vec::new();
                for row in &partials {
                    for (tag, wme) in &self.wmes {
                        if self.ce_matches(ce, wme, row) {
                            let mut extended = row.clone();
                            extended.push(*tag);
                            next.push(extended);
                        }
                    }
                }
                partials = next;
            }
        }
        partials
    }

    /// Does any WME satisfy the (negated) CE against the partial row?
    fn exists_match(&self, ce: &AnalyzedCe, row: &[TimeTag]) -> bool {
        self.wmes.values().any(|w| self.ce_matches(ce, w, row))
    }

    fn ce_matches(&self, ce: &AnalyzedCe, wme: &Wme, row: &[TimeTag]) -> bool {
        if wme.class != ce.class {
            return false;
        }
        if !ce.const_tests.iter().all(|t| t.matches(&wme.get(t.attr))) {
            return false;
        }
        if !ce
            .intra_tests
            .iter()
            .all(|t| t.pred.apply(&wme.get(t.attr), &wme.get(t.other_attr)))
        {
            return false;
        }
        ce.var_joins.iter().all(|vj| {
            let other = &self.wmes[&row[vj.other_pos_ce]];
            vj.pred.apply(&wme.get(vj.attr), &other.get(vj.other_attr))
        })
    }

    /// Group complete rows into SOIs — an *independent* reimplementation of
    /// the S-node semantics (direct grouping, batch aggregation).
    fn group_sois(
        &self,
        rule: &Arc<AnalyzedRule>,
        rid: RuleId,
        rows: Vec<Vec<TimeTag>>,
    ) -> Vec<ConflictItem> {
        let mut groups: FxHashMap<Box<[KeyPart]>, Vec<Vec<TimeTag>>> = FxHashMap::default();
        for row in rows {
            let mut key: Vec<KeyPart> = rule
                .scalar_ces
                .iter()
                .map(|&pos| KeyPart::Tag(row[pos]))
                .collect();
            for pv in &rule.scalar_pvs {
                key.push(KeyPart::Val(self.wmes[&row[pv.pos_ce]].get(pv.attr)));
            }
            groups.entry(key.into()).or_default().push(row);
        }

        let mut out = Vec::new();
        for (parts, mut rows) in groups {
            // Conflict-set order: most recent row first (tags sorted
            // descending, compared lexicographically).
            rows.sort_by_cached_key(|r| {
                let mut rec = r.clone();
                rec.sort_unstable_by(|a, b| b.cmp(a));
                std::cmp::Reverse(rec)
            });

            // Batch aggregation over distinct WMEs of each target CE.
            let aggregates: Vec<Value> = rule
                .aggregates
                .iter()
                .map(|spec| {
                    let mut seen: FxHashMap<TimeTag, Value> = FxHashMap::default();
                    let (pos_ce, attr) = match spec.target {
                        AggTarget::Pv { pos_ce, attr, .. } => (pos_ce, Some(attr)),
                        AggTarget::Ce { pos_ce, .. } => (pos_ce, None),
                    };
                    for row in &rows {
                        let tag = row[pos_ce];
                        let v = match attr {
                            Some(a) => self.wmes[&tag].get(a),
                            None => Value::Nil,
                        };
                        seen.insert(tag, v);
                    }
                    batch_aggregate(spec.op, &spec.target, seen.values())
                })
                .collect();

            // Evaluate T.
            let env = NaiveEnv {
                matcher: self,
                rule,
                parts: &parts,
                head: &rows[0],
                aggregates: &aggregates,
            };
            let pass = rule
                .tests
                .iter()
                .all(|t| eval_truthy(t, &env).unwrap_or(false));
            if !pass {
                continue;
            }

            let mut recency = rows[0].clone();
            recency.sort_unstable_by(|a, b| b.cmp(a));
            // Content hash stands in for the incremental version counter:
            // any change to rows or aggregates re-arms refraction.
            let version = content_hash(&rows, &aggregates);
            out.push(ConflictItem {
                key: InstKey::Soi {
                    rule: rid,
                    parts: parts.clone(),
                },
                rows: rows.into_iter().map(|r| r.into()).collect(),
                aggregates,
                version,
                recency: recency.into(),
                specificity: rule.specificity,
            });
        }
        out
    }
}

fn content_hash(rows: &[Vec<TimeTag>], aggs: &[Value]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = sorete_base::FxHasher::default();
    for r in rows {
        for t in r {
            t.hash(&mut h);
        }
        0xfeu8.hash(&mut h);
    }
    for a in aggs {
        a.hash(&mut h);
    }
    h.finish()
}

/// Batch (non-incremental) aggregate over the distinct WMEs' values.
fn batch_aggregate<'v>(
    op: AggOp,
    target: &AggTarget,
    values: impl Iterator<Item = &'v Value>,
) -> Value {
    let vals: Vec<&Value> = values.collect();
    match op {
        AggOp::Count => match target {
            AggTarget::Ce { .. } => Value::Int(vals.len() as i64),
            AggTarget::Pv { .. } => {
                let mut distinct: BTreeMap<&Value, ()> = BTreeMap::new();
                for v in &vals {
                    distinct.insert(v, ());
                }
                Value::Int(distinct.len() as i64)
            }
        },
        AggOp::Sum | AggOp::Avg => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                return Value::Nil;
            }
            if op == AggOp::Avg {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(
                    vals.iter()
                        .filter_map(|v| match v {
                            Value::Int(i) => Some(*i),
                            _ => None,
                        })
                        .sum(),
                )
            } else {
                Value::Float(nums.iter().sum())
            }
        }
        AggOp::Min => vals.iter().min().map(|v| **v).unwrap_or(Value::Nil),
        AggOp::Max => vals.iter().max().map(|v| **v).unwrap_or(Value::Nil),
    }
}

struct NaiveEnv<'a> {
    matcher: &'a NaiveMatcher,
    rule: &'a AnalyzedRule,
    parts: &'a [KeyPart],
    head: &'a [TimeTag],
    aggregates: &'a [Value],
}

impl Env for NaiveEnv<'_> {
    fn var(&self, v: Symbol) -> Option<Value> {
        if let Some(i) = self.rule.scalar_pvs.iter().position(|p| p.var == v) {
            if let KeyPart::Val(val) = &self.parts[self.rule.scalar_ces.len() + i] {
                return Some(*val);
            }
        }
        let src = self.rule.var_sources.get(&v)?;
        if src.set_oriented {
            return None;
        }
        Some(self.matcher.wmes[&self.head[src.pos_ce]].get(src.attr))
    }

    fn agg(&self, op: AggOp, var: Symbol) -> Option<Value> {
        let idx = self.rule.agg_index(op, var)?;
        Some(self.aggregates[idx])
    }
}

impl Matcher for NaiveMatcher {
    fn add_rule(&mut self, rule: Arc<AnalyzedRule>) -> RuleId {
        let id = RuleId::new(self.rules.len());
        self.rules.push(rule);
        self.refresh();
        id
    }

    fn insert_wme(&mut self, wme: &Wme) {
        self.stats.alpha_activations += 1;
        let tag = wme.tag;
        self.tracer.emit_physical(|| TraceEvent::AlphaActivation {
            node: 0,
            tag,
            insert: true,
        });
        self.wmes.insert(tag, wme.clone());
        self.refresh();
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let tag = wme.tag;
        self.tracer.emit_physical(|| TraceEvent::AlphaActivation {
            node: 0,
            tag,
            insert: false,
        });
        self.wmes.remove(&tag);
        self.refresh();
    }

    fn remove_rule(&mut self, rule: RuleId) {
        self.excised.insert(rule.index());
        self.refresh();
    }

    fn drain_deltas(&mut self) -> Vec<CsDelta> {
        std::mem::take(&mut self.deltas)
    }

    fn materialize(&self, key: &InstKey) -> Option<ConflictItem> {
        self.current.get(key).cloned()
    }

    fn stats(&self) -> MatchStats {
        self.stats
    }

    fn algorithm_name(&self) -> &'static str {
        "naive"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn memory_report(&self) -> MemoryReport {
        use std::mem::size_of;
        let mut report = MemoryReport::default();

        // The oracle keeps no incremental state beyond working memory and
        // the recomputed conflict set.
        let wt_bytes: u64 = self
            .wmes
            .values()
            .map(|w| {
                (size_of::<TimeTag>() + size_of::<Wme>() + std::mem::size_of_val(w.slots())) as u64
            })
            .sum();
        report.push("wme_table", wt_bytes, self.wmes.len() as u64);

        let mut cs_bytes = 0u64;
        for item in self.current.values() {
            cs_bytes += size_of::<ConflictItem>() as u64;
            for row in &item.rows {
                cs_bytes += (size_of::<Box<[TimeTag]>>() + row.len() * size_of::<TimeTag>()) as u64;
            }
            cs_bytes += (item.aggregates.len() * size_of::<Value>()
                + item.recency.len() * size_of::<TimeTag>()) as u64;
        }
        report.push("conflict_set", cs_bytes, self.current.len() as u64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_lang::{analyze_rule, parse_rule};

    fn wme(tag: u64, class: &str, slots: &[(&str, Value)]) -> Wme {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        )
    }

    fn setup(rules: &[&str]) -> NaiveMatcher {
        let mut m = NaiveMatcher::new();
        for r in rules {
            m.add_rule(Arc::new(analyze_rule(&parse_rule(r).unwrap()).unwrap()));
        }
        m
    }

    #[test]
    fn figure1_six_instantiations() {
        let mut m =
            setup(&["(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B) (halt))"]);
        for (i, (n, t)) in [
            ("Jack", "A"),
            ("Janice", "A"),
            ("Sue", "B"),
            ("Jack", "B"),
            ("Sue", "B"),
        ]
        .iter()
        .enumerate()
        {
            m.insert_wme(&wme(
                i as u64 + 1,
                "player",
                &[("name", Value::sym(n)), ("team", Value::sym(t))],
            ));
        }
        let _ = m.drain_deltas();
        assert_eq!(m.current.len(), 6);
    }

    #[test]
    fn soi_grouping_and_count() {
        let mut m = setup(&[
            "(p dups { [player ^name <n>] <P> } :scalar (<n>) :test ((count <P>) > 1) (set-remove <P>))",
        ]);
        m.insert_wme(&wme(1, "player", &[("name", Value::sym("Sue"))]));
        m.insert_wme(&wme(2, "player", &[("name", Value::sym("Sue"))]));
        m.insert_wme(&wme(3, "player", &[("name", Value::sym("Jack"))]));
        let _ = m.drain_deltas();
        assert_eq!(m.current.len(), 1);
        let item = m.current.values().next().unwrap();
        assert_eq!(item.rows.len(), 2);
        assert_eq!(item.aggregates, vec![Value::Int(2)]);
        // Head row is the more recent Sue.
        assert_eq!(item.rows[0].as_ref(), &[TimeTag::new(2)]);
    }

    #[test]
    fn negation() {
        let mut m = setup(&["(p r (a ^x <v>) -(b ^x <v>) (halt))"]);
        m.insert_wme(&wme(1, "a", &[("x", Value::Int(7))]));
        assert_eq!(m.current.len(), 1);
        m.insert_wme(&wme(2, "b", &[("x", Value::Int(7))]));
        assert_eq!(m.current.len(), 0);
        m.remove_wme(&wme(2, "b", &[("x", Value::Int(7))]));
        assert_eq!(m.current.len(), 1);
    }

    #[test]
    fn deltas_reflect_changes() {
        let mut m = setup(&["(p r (a ^x 1) (halt))"]);
        let w = wme(1, "a", &[("x", Value::Int(1))]);
        m.insert_wme(&w);
        let d = m.drain_deltas();
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], CsDelta::Insert(_)));
        m.remove_wme(&w);
        let d = m.drain_deltas();
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], CsDelta::Remove(_)));
    }

    #[test]
    fn retime_on_soi_change() {
        let mut m = setup(&["(p r [a ^x <x>] (halt))"]);
        m.insert_wme(&wme(1, "a", &[("x", Value::Int(1))]));
        let _ = m.drain_deltas();
        m.insert_wme(&wme(2, "a", &[("x", Value::Int(2))]));
        let d = m.drain_deltas();
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], CsDelta::Retime(_)), "{:?}", d);
    }

    #[test]
    fn min_max_avg_sum_aggregates() {
        let mut m = setup(&["(p pay (dept ^id <d>) [emp ^dept <d> ^sal <s>]
               :test ((sum <s>) > 0 and (min <s>) >= 0 and (max <s>) < 100000 and (avg <s>) > 10)
               (halt))"]);
        m.insert_wme(&wme(1, "dept", &[("id", Value::Int(1))]));
        m.insert_wme(&wme(
            2,
            "emp",
            &[("dept", Value::Int(1)), ("sal", Value::Int(100))],
        ));
        m.insert_wme(&wme(
            3,
            "emp",
            &[("dept", Value::Int(1)), ("sal", Value::Int(300))],
        ));
        assert_eq!(m.current.len(), 1);
        let item = m.current.values().next().unwrap();
        // Aggregate order = first-reference order: sum, min, max, avg.
        assert_eq!(item.aggregates[0], Value::Int(400));
        assert_eq!(item.aggregates[1], Value::Int(100));
        assert_eq!(item.aggregates[2], Value::Int(300));
        assert_eq!(item.aggregates[3], Value::Float(200.0));
    }
}
