//! Supervision-overhead bench: what the supervised runtime costs per
//! recognise–act cycle when nothing goes wrong.
//!
//! The workload is the same WAL'd counting loop as `wal_overhead` at
//! group-commit 8. Three configurations:
//!
//! - `baseline`    — WAL only, no supervision (the PR-5 shape);
//! - `supervised`  — panic fence + retry policy + breakers armed, zero
//!   faults, so the numbers isolate the bookkeeping cost;
//! - `supervised_budgets` — additionally checks soft/hard memory budgets
//!   (a `memory_report()` walk per firing), the worst honest case.
//!
//! A calibration pass writes `BENCH_supervisor.json` (median-of-5 wall
//! micros per configuration plus the overhead percentage against the
//! baseline) for CI to archive; the target is supervised overhead under
//! 5% of the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_base::Value;
use sorete_core::{
    DegradationPolicy, MatcherKind, ProductionSystem, RecoveryPolicy, StopReason, SupervisorConfig,
};
use sorete_reldb::WalOptions;

const PROGRAM: &str = "(literalize c n)
(literalize lim max)
(p count (c ^n <n>) (lim ^max > <n>) (modify 1 ^n (<n> + 1)))";

const FIRINGS: i64 = 200;
const GROUP_COMMIT: u32 = 8;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Baseline,
    Supervised,
    SupervisedBudgets,
}

fn run(mode: Mode, wal: &std::path::Path) -> ProductionSystem {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROGRAM).unwrap();
    let _ = std::fs::remove_file(wal);
    ps.attach_wal(
        wal,
        WalOptions {
            group_commit: GROUP_COMMIT,
        },
    )
    .unwrap();
    if mode != Mode::Baseline {
        ps.set_recovery_policy(RecoveryPolicy::Rollback);
        let mut config = SupervisorConfig::default();
        if mode == Mode::SupervisedBudgets {
            config.degradation = DegradationPolicy {
                soft_bytes: Some(u64::MAX),
                hard_bytes: Some(u64::MAX),
                ..DegradationPolicy::default()
            };
        }
        ps.enable_supervision(config);
    }
    ps.make_str("c", &[("n", Value::Int(0))]).unwrap();
    ps.make_str("lim", &[("max", Value::Int(FIRINGS))]).unwrap();
    let outcome = ps.run(None);
    assert!(matches!(outcome.reason, StopReason::Quiescence));
    assert_eq!(outcome.fired, FIRINGS as u64);
    ps
}

fn wal_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sorete-supervisor-bench-{}-{}.wal",
        tag,
        std::process::id()
    ))
}

fn bench(c: &mut Criterion) {
    write_calibration_json();
    let mut group = c.benchmark_group("supervisor_overhead");
    let path = wal_file("base");
    group.bench_with_input(BenchmarkId::new("baseline", FIRINGS), &(), |b, _| {
        b.iter(|| run(Mode::Baseline, &path))
    });
    let path = wal_file("sup");
    group.bench_with_input(BenchmarkId::new("supervised", FIRINGS), &(), |b, _| {
        b.iter(|| run(Mode::Supervised, &path))
    });
    let path = wal_file("budget");
    group.bench_with_input(
        BenchmarkId::new("supervised_budgets", FIRINGS),
        &(),
        |b, _| b.iter(|| run(Mode::SupervisedBudgets, &path)),
    );
    group.finish();
    for tag in ["base", "sup", "budget"] {
        let _ = std::fs::remove_file(wal_file(tag));
    }
}

/// Median-of-5 wall-clock micros per configuration, plus overhead as a
/// permille of the baseline, written to `BENCH_supervisor.json`.
fn write_calibration_json() {
    let micros = |mode: Mode, tag: &str| -> u64 {
        let path = wal_file(tag);
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            let _ = run(mode, &path);
            samples.push(t0.elapsed().as_micros() as u64);
        }
        let _ = std::fs::remove_file(&path);
        samples.sort_unstable();
        samples[2]
    };
    let base = micros(Mode::Baseline, "calib").max(1);
    let sup = micros(Mode::Supervised, "calib");
    let budget = micros(Mode::SupervisedBudgets, "calib");
    let overhead_pm = |x: u64| (x.saturating_sub(base)) * 1000 / base;
    let json = format!(
        "[\n  {{\"config\": \"baseline\", \"firings\": {f}, \"group_commit\": {g}, \
         \"micros\": {base}, \"overhead_permille\": 0}},\n  \
         {{\"config\": \"supervised\", \"firings\": {f}, \"group_commit\": {g}, \
         \"micros\": {sup}, \"overhead_permille\": {op}}},\n  \
         {{\"config\": \"supervised_budgets\", \"firings\": {f}, \"group_commit\": {g}, \
         \"micros\": {budget}, \"overhead_permille\": {ob}}}\n]\n",
        f = FIRINGS,
        g = GROUP_COMMIT,
        op = overhead_pm(sup),
        ob = overhead_pm(budget),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_supervisor.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("(wrote BENCH_supervisor.json)"),
        Err(e) => println!("(could not write BENCH_supervisor.json: {})", e),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
