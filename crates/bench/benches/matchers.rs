//! C6 bench: Rete (with S-nodes) vs TREAT (with S-nodes) vs the naive
//! recompute matcher on a mixed workload — joins, negation-free control,
//! and one set-oriented aggregate rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::run_c6;
use sorete_core::MatcherKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c6_matchers");
    for n in [50usize, 200] {
        for (name, kind) in [
            ("rete", MatcherKind::Rete),
            ("treat", MatcherKind::Treat),
            ("naive", MatcherKind::Naive),
        ] {
            // The naive matcher is quadratic-ish; skip its largest size to
            // keep the suite quick.
            if name == "naive" && n > 100 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| run_c6(kind, n))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
