//! Rollback-overhead bench: the cost of transactional firings.
//!
//! `RecoveryPolicy::Rollback` (the default) records an inverse op per WM
//! mutation and journals refraction changes per firing;
//! `RecoveryPolicy::AbortRun` records nothing. The workload is a dup-heavy
//! RemoveDups run (many `remove` actions per firing) so the undo log is
//! actually exercised — on the happy path it is discarded at commit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_base::Value;
use sorete_core::{MatcherKind, ProductionSystem, RecoveryPolicy, StopReason};

const PROGRAM: &str = "(literalize player name team)
(p RemoveDups
  { [player ^name <n> ^team <t>] <P> }
  :scalar (<n> <t>)
  :test ((count <P>) > 1)
  -->
  (bind <First> true)
  (foreach <P> descending
    (if (<First> == true) (bind <First> false) else (remove <P>))))";

fn run(policy: RecoveryPolicy, dups: usize) {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.set_recovery_policy(policy);
    ps.load_program(PROGRAM).unwrap();
    for i in 0..8 {
        for _ in 0..dups {
            ps.make_str(
                "player",
                &[
                    ("name", Value::sym(&format!("p{}", i))),
                    ("team", Value::sym("A")),
                ],
            )
            .unwrap();
        }
    }
    let outcome = ps.run(None);
    assert!(matches!(outcome.reason, StopReason::Quiescence));
    assert_eq!(ps.wm().len(), 8);
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_overhead");
    for dups in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("abort_run", dups), &dups, |b, &d| {
            b.iter(|| run(RecoveryPolicy::AbortRun, d))
        });
        group.bench_with_input(BenchmarkId::new("rollback", dups), &dups, |b, &d| {
            b.iter(|| run(RecoveryPolicy::Rollback, d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
