//! Trace-overhead bench: the cost of the TraceSink event stream.
//!
//! With no sinks attached the `Tracer::emit` fast path returns before an
//! event is even constructed, so the `off` case must sit within noise of
//! an untraced run — that is the zero-cost-when-disabled claim DESIGN.md
//! §5.3 makes. `null` attaches an explicit `NullSink` (events are built
//! then dropped), `collect` buffers them in memory, and `jsonl` streams
//! them through a `BufWriter` to disk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sorete_base::{CollectSink, JsonlSink, NullSink, SharedSink, TraceEvent, Tracer, Value};
use sorete_core::{MatcherKind, ProductionSystem, StopReason};
use std::sync::{Arc, Mutex};

const PROGRAM: &str = "(literalize player name team)
(p RemoveDups
  { [player ^name <n> ^team <t>] <P> }
  :scalar (<n> <t>)
  :test ((count <P>) > 1)
  -->
  (bind <First> true)
  (foreach <P> descending
    (if (<First> == true) (bind <First> false) else (remove <P>))))";

fn run(sink: Option<SharedSink>) {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROGRAM).unwrap();
    if let Some(s) = sink {
        ps.add_trace_sink(s);
    }
    for i in 0..8 {
        for _ in 0..16 {
            ps.make_str(
                "player",
                &[
                    ("name", Value::sym(&format!("p{}", i))),
                    ("team", Value::sym("A")),
                ],
            )
            .unwrap();
        }
    }
    let outcome = ps.run(None);
    assert!(matches!(outcome.reason, StopReason::Quiescence));
    assert_eq!(ps.wm().len(), 8);
    ps.flush_trace();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    // The disabled fast path in isolation: 10k emit calls against a
    // sink-less tracer must cost no more than 10k untaken branches.
    group.bench_function("emit_disabled_10k", |b| {
        let tracer = Tracer::default();
        b.iter(|| {
            for i in 0..10_000u64 {
                tracer.emit(|| TraceEvent::CycleBegin {
                    cycle: black_box(i),
                });
            }
        })
    });
    group.bench_function("off", |b| b.iter(|| run(None)));
    group.bench_function("null", |b| {
        b.iter(|| run(Some(Arc::new(Mutex::new(NullSink)) as SharedSink)))
    });
    group.bench_function("collect", |b| {
        b.iter(|| run(Some(Arc::new(Mutex::new(CollectSink::new())) as SharedSink)))
    });
    let path = std::env::temp_dir().join("sorete-trace-overhead.jsonl");
    group.bench_function("jsonl", |b| {
        b.iter(|| {
            let sink = JsonlSink::create(&path).expect("temp file");
            run(Some(Arc::new(Mutex::new(sink)) as SharedSink));
        })
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
