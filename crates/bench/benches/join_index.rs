//! J1 bench: equality-join selectivity — hash-indexed Rete vs the same
//! network with indexing disabled (linear memory scans). The workload joins
//! `n` orders against `n` stocks on `^id` with a `^qty >=` residual, plus a
//! negated-CE rule, then retracts a third of the stock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::run_join_index;
use sorete_core::MatcherKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("j1_join_index");
    for n in [100usize, 400] {
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| run_join_index(MatcherKind::Rete, n))
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, &n| {
            b.iter(|| run_join_index(MatcherKind::ReteScan, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
