//! Span-overhead bench: what the hierarchical span layer costs.
//!
//! The workload is the WAL counting loop (200 firings, group-commit 8),
//! the same shape the `wal_overhead` and `supervisor_overhead` benches
//! use, so the numbers compose. Three configurations:
//!
//! - `disabled` — spans never enabled: every instrumentation site is one
//!   untaken `Option` branch, the baseline;
//! - `enabled`  — spans recording in memory (`--span-stats`);
//! - `perfetto` — recording plus the Chrome trace-event render and a
//!   write to disk (`--trace-perfetto`).
//!
//! A calibration pass writes `BENCH_span_overhead.json` (median-of-5 wall
//! micros per configuration plus the overhead permille against the
//! disabled baseline) for the bench gate and CI to check. A fourth row
//! measures the disabled fast path directly — per-call nanos for a
//! `begin()`/`end()` pair on a null handle, expressed as a permille of
//! one recognise–act cycle — and the gate holds it under 50‰ (the <5%
//! disabled-cost claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::gate::{
    run_span_overhead, span_disabled_fastpath_nanos, span_disabled_permille_of_cycle, SpanConfig,
    WAL_WORKLOAD_FIRINGS,
};

fn bench(c: &mut Criterion) {
    write_calibration_json();
    let mut group = c.benchmark_group("span_overhead");
    for (label, config) in [
        ("disabled", SpanConfig::Disabled),
        ("enabled", SpanConfig::Enabled),
        ("perfetto", SpanConfig::Perfetto),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, WAL_WORKLOAD_FIRINGS),
            &config,
            |b, &config| b.iter(|| run_span_overhead(config)),
        );
    }
    group.finish();
}

/// Median-of-5 wall micros per configuration plus the fast-path row,
/// written to `BENCH_span_overhead.json`.
fn write_calibration_json() {
    let micros = |config: SpanConfig| -> u64 {
        let mut samples: Vec<u64> = (0..5).map(|_| run_span_overhead(config) as u64).collect();
        samples.sort_unstable();
        samples[2]
    };
    let disabled = micros(SpanConfig::Disabled).max(1);
    let enabled = micros(SpanConfig::Enabled);
    let perfetto = micros(SpanConfig::Perfetto);
    let overhead_pm = |x: u64| (x.saturating_sub(disabled)) * 1000 / disabled;
    let per_call = span_disabled_fastpath_nanos();
    let permille = span_disabled_permille_of_cycle(disabled as f64);
    let json = format!(
        "[\n  {{\"config\": \"disabled\", \"firings\": {f}, \"micros\": {disabled}, \
         \"overhead_permille\": 0}},\n  \
         {{\"config\": \"enabled\", \"firings\": {f}, \"micros\": {enabled}, \
         \"overhead_permille\": {oe}}},\n  \
         {{\"config\": \"perfetto\", \"firings\": {f}, \"micros\": {perfetto}, \
         \"overhead_permille\": {op}}},\n  \
         {{\"config\": \"disabled_fastpath\", \"per_call_nanos\": {pc:.2}, \
         \"permille_of_cycle\": {pm:.2}}}\n]\n",
        f = WAL_WORKLOAD_FIRINGS,
        oe = overhead_pm(enabled),
        op = overhead_pm(perfetto),
        pc = per_call,
        pm = permille,
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_span_overhead.json"
    );
    match std::fs::write(out, &json) {
        Ok(()) => println!("(wrote BENCH_span_overhead.json)"),
        Err(e) => println!("(could not write BENCH_span_overhead.json: {})", e),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
