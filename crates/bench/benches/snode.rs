//! S-node micro-bench: per-token cost of the Figure-3 algorithm as the
//! γ-memory grows — insertions at the head (recency order) plus aggregate
//! maintenance and test re-evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_base::{CsDelta, FxHashMap, RuleId, Symbol, TimeTag, Value, Wme};
use sorete_lang::{analyze_rule, parse_rule};
use sorete_soi::SNode;
use std::sync::Arc;

fn build_wm(n: usize) -> (FxHashMap<TimeTag, Wme>, Vec<TimeTag>) {
    let mut wm = FxHashMap::default();
    let mut tags = Vec::new();
    for i in 0..n {
        let tag = TimeTag::new(i as u64 + 1);
        wm.insert(
            tag,
            Wme::new(
                tag,
                Symbol::new("item"),
                vec![(Symbol::new("v"), Value::Int((i % 17) as i64))],
            ),
        );
        tags.push(tag);
    }
    (wm, tags)
}

fn bench(c: &mut Criterion) {
    let rule = Arc::new(
        analyze_rule(
            &parse_rule(
                "(p watch {{ [item ^v <v>] <P> }} :test ((count <P>) > 0 and (sum <v>) >= 0) (halt))"
                    .replace("{{", "{")
                    .replace("}}", "}")
                    .as_str(),
            )
            .unwrap(),
        )
        .unwrap(),
    );
    let mut group = c.benchmark_group("snode_scaling");
    for n in [16usize, 256, 1024] {
        let (wm, tags) = build_wm(n);
        group.bench_with_input(BenchmarkId::new("insert_n_rows", n), &n, |b, _| {
            b.iter(|| {
                let mut sn = SNode::new(RuleId::new(0), rule.clone());
                let lookup = |t: TimeTag, a: Symbol| wm[&t].get(a);
                let mut out: Vec<CsDelta> = Vec::new();
                for &t in &tags {
                    sn.insert_row(&[t], &lookup, &mut out);
                    out.clear();
                }
                sn.candidate_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
