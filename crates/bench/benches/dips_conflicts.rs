//! C5 bench: DIPS parallel firing. Tuple-oriented execution pays for its
//! conflicts (aborted transactions + re-cycles); set-oriented execution
//! drains the collection in one conflict-free transaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::run_c5;
use sorete_dips::DipsMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_dips_conflicts");
    group.sample_size(10); // whole-engine cycles are heavyweight
    for n in [4usize, 12] {
        group.bench_with_input(BenchmarkId::new("tuple", n), &n, |b, &n| {
            b.iter(|| run_c5(DipsMode::Tuple, n))
        });
        group.bench_with_input(BenchmarkId::new("set", n), &n, |b, &n| {
            b.iter(|| run_c5(DipsMode::Set, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
