//! C1 bench: a regular OPS5 workload with and without a (never-matching)
//! set-oriented rule loaded. The paper claims the extension "does not
//! degrade the performance when executing regular OPS5 programs" — so the
//! two series should be indistinguishable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::{run_c1, C1_REGULAR, C1_WITH_SET};
use sorete_core::MatcherKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_regular_overhead");
    for n in [100usize, 400] {
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, &n| {
            b.iter(|| run_c1(C1_REGULAR, MatcherKind::Rete, n))
        });
        group.bench_with_input(BenchmarkId::new("with_set_rule", n), &n, |b, &n| {
            b.iter(|| run_c1(C1_WITH_SET, MatcherKind::Rete, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
