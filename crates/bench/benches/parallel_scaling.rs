//! Parallel-match scaling bench: what `--jobs N` buys on the high-fanout
//! P1 workload (8 cloned inequality-join rules, one per partition, so
//! every WME change fans out into 8 independent join cascades).
//!
//! Two families of numbers:
//!
//! - **wall micros** per jobs level — honest wall-clock, which can only
//!   improve when the host actually has spare cores;
//! - **critical-path speedup** `total_busy / max_busy` from the pool's
//!   per-lane busy accounting — how much faster the match phase would
//!   complete with one core per lane, independent of the host. On a
//!   single-core container (CI) the wall numbers stay flat while the
//!   critical-path column shows the partitioning headroom; see
//!   EXPERIMENTS.md for the methodology note.
//!
//! The calibration pass writes `BENCH_parallel.json` (median-of-5 wall
//! micros, per-lane busy nanos, speedups, and the host's core count) so
//! CI archives the numbers alongside the other `BENCH_*.json` artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::run_parallel_match;

const RULES: usize = 8;
const N: usize = 120;
const JOBS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    write_calibration_json();
    let mut group = c.benchmark_group("parallel_scaling");
    for jobs in JOBS {
        group.bench_with_input(BenchmarkId::new("match", jobs), &jobs, |b, &jobs| {
            b.iter(|| run_parallel_match(jobs, RULES, N))
        });
    }
    group.finish();
}

fn write_calibration_json() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut wall_jobs1 = 0u64;
    for jobs in JOBS {
        let mut samples = Vec::new();
        let mut busy: Vec<u64> = Vec::new();
        for _ in 0..5 {
            let (rep, b) = run_parallel_match(jobs, RULES, N);
            samples.push(rep.micros as u64);
            busy = b;
        }
        samples.sort_unstable();
        let wall = samples[2];
        if jobs == 1 {
            wall_jobs1 = wall;
        }
        let total_busy: u64 = busy.iter().sum();
        let max_busy = busy.iter().copied().max().unwrap_or(0);
        let critical_path_speedup = if max_busy > 0 {
            total_busy as f64 / max_busy as f64
        } else {
            1.0
        };
        let wall_speedup = if wall > 0 {
            wall_jobs1 as f64 / wall as f64
        } else {
            1.0
        };
        let busy_list: Vec<String> = busy.iter().map(|b| b.to_string()).collect();
        rows.push(format!(
            "  {{\"jobs\": {jobs}, \"micros\": {wall}, \"wall_speedup\": {wall_speedup:.2}, \
             \"busy_nanos\": [{busy}], \"critical_path_speedup\": {critical_path_speedup:.2}}}",
            busy = busy_list.join(", ")
        ));
    }
    let json = format!(
        "{{\n\"workload\": \"P1 high-fanout ({RULES} rules, n={N})\", \"cores\": {cores},\n\
         \"note\": \"wall numbers bound by host cores; critical_path_speedup = \
         total_busy/max_busy is host-independent\",\n\"runs\": [\n{}\n]}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("(wrote BENCH_parallel.json)"),
        Err(e) => println!("(could not write BENCH_parallel.json: {})", e),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
