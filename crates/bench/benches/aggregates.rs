//! C3 bench: maintaining second-order information (cardinality) under WM
//! churn — counter-maintenance rules versus the incremental S-node
//! aggregates of §4.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::{run_c3, C3_AGGREGATE, C3_COUNTER};
use sorete_core::MatcherKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_aggregates");
    for n in [20usize, 100] {
        group.bench_with_input(BenchmarkId::new("counter_rules", n), &n, |b, &n| {
            b.iter(|| run_c3(C3_COUNTER, MatcherKind::Rete, n))
        });
        group.bench_with_input(BenchmarkId::new("incremental_aggregate", n), &n, |b, &n| {
            b.iter(|| run_c3(C3_AGGREGATE, MatcherKind::Rete, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
