//! C2 bench: processing a collection of `n` WMEs with the tuple-oriented
//! marking idiom (n+1 firings) versus one set-oriented rule (1 firing).
//! The paper predicts the set-oriented form wins and the gap widens with n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::{run_c2, C2_MARKING, C2_SET};
use sorete_core::MatcherKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_set_vs_tuple");
    for n in [10usize, 100, 500] {
        group.bench_with_input(BenchmarkId::new("marking", n), &n, |b, &n| {
            b.iter(|| run_c2(C2_MARKING, MatcherKind::Rete, n))
        });
        group.bench_with_input(BenchmarkId::new("set_oriented", n), &n, |b, &n| {
            b.iter(|| run_c2(C2_SET, MatcherKind::Rete, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
