//! WAL-overhead bench: what durability costs per recognise–act cycle.
//!
//! The workload is a tight counting loop — every firing is one `modify`
//! (retract + assert in the log) plus a cycle marker, so each cycle writes
//! three WAL records. Three configurations:
//!
//! - `no_wal`        — the in-memory baseline;
//! - `wal`           — group_commit = 1, one fsync per commit point;
//! - `wal_group_8`   — group_commit = 8, fsyncs amortised across cycles.
//!
//! Besides the Criterion measurements, a single calibration pass writes
//! `BENCH_wal.json` (median-of-5 wall micros per configuration, plus the
//! record/fsync counts from `WalStats`) so CI can archive the numbers
//! alongside the other `BENCH_*.json` artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_base::Value;
use sorete_core::{MatcherKind, ProductionSystem, StopReason};
use sorete_reldb::WalOptions;

const PROGRAM: &str = "(literalize c n)
(literalize lim max)
(p count (c ^n <n>) (lim ^max > <n>) (modify 1 ^n (<n> + 1)))";

const FIRINGS: i64 = 200;

/// One full run; `wal == None` is the in-memory baseline. Returns the
/// engine so the calibration pass can scrape `WalStats`.
fn run(group_commit: u32, wal: Option<&std::path::Path>) -> ProductionSystem {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROGRAM).unwrap();
    if let Some(path) = wal {
        let _ = std::fs::remove_file(path);
        ps.attach_wal(path, WalOptions { group_commit }).unwrap();
    }
    ps.make_str("c", &[("n", Value::Int(0))]).unwrap();
    ps.make_str("lim", &[("max", Value::Int(FIRINGS))]).unwrap();
    let outcome = ps.run(None);
    assert!(matches!(outcome.reason, StopReason::Quiescence));
    assert_eq!(outcome.fired, FIRINGS as u64);
    ps
}

fn wal_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sorete-wal-bench-{}-{}.wal",
        tag,
        std::process::id()
    ))
}

fn bench(c: &mut Criterion) {
    write_calibration_json();
    let mut group = c.benchmark_group("wal_overhead");
    group.bench_with_input(BenchmarkId::new("no_wal", FIRINGS), &(), |b, _| {
        b.iter(|| run(0, None))
    });
    let path = wal_file("gc1");
    group.bench_with_input(BenchmarkId::new("wal", FIRINGS), &(), |b, _| {
        b.iter(|| run(1, Some(&path)))
    });
    let path = wal_file("gc8");
    group.bench_with_input(BenchmarkId::new("wal_group_8", FIRINGS), &(), |b, _| {
        b.iter(|| run(8, Some(&path)))
    });
    group.finish();
    for tag in ["gc1", "gc8"] {
        let _ = std::fs::remove_file(wal_file(tag));
    }
}

/// Median-of-5 wall-clock micros per configuration, written to
/// `BENCH_wal.json` in the same style as the `report` binary's artifacts.
fn write_calibration_json() {
    let micros = |group_commit: u32, path: Option<&std::path::Path>| -> (u64, u64, u64, u64) {
        let mut samples = Vec::new();
        let mut records = 0u64;
        let mut fsyncs = 0u64;
        let mut writes = 0u64;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            let ps = run(group_commit, path);
            samples.push(t0.elapsed().as_micros() as u64);
            if let Some(stats) = ps.wal_stats() {
                records = stats.records;
                fsyncs = stats.fsyncs;
                writes = stats.writes;
            }
        }
        samples.sort_unstable();
        (samples[2], records, fsyncs, writes)
    };
    let path = wal_file("calib");
    let (base, _, _, _) = micros(0, None);
    let (gc1, rec1, fs1, wr1) = micros(1, Some(&path));
    let (gc8, rec8, fs8, wr8) = micros(8, Some(&path));
    let _ = std::fs::remove_file(&path);
    let json = format!(
        "[\n  {{\"config\": \"no_wal\", \"firings\": {f}, \"micros\": {base}, \
         \"records\": 0, \"writes\": 0, \"fsyncs\": 0}},\n  {{\"config\": \"wal\", \
         \"firings\": {f}, \"micros\": {gc1}, \"records\": {rec1}, \
         \"writes\": {wr1}, \"fsyncs\": {fs1}}},\n  {{\"config\": \"wal_group_8\", \
         \"firings\": {f}, \"micros\": {gc8}, \"records\": {rec8}, \
         \"writes\": {wr8}, \"fsyncs\": {fs8}}}\n]\n",
        f = FIRINGS
    );
    // Benches run with the package dir as cwd; anchor the artifact at the
    // workspace root next to the `report` binary's BENCH_*.json files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("(wrote BENCH_wal.json)"),
        Err(e) => println!("(could not write BENCH_wal.json: {})", e),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
