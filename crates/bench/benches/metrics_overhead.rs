//! Metrics-overhead bench: the cost of the registry and per-cycle
//! snapshots.
//!
//! With metrics disabled the engine holds `metrics: None`, so every hook
//! is a null check — the `off` case must sit within noise of the
//! disabled-trace path (the same discipline DESIGN.md §5.3 demands of
//! `Tracer::emit`, extended to the registry by §5.4). `on` samples and
//! snapshots every cycle in memory; `jsonl` additionally streams each
//! snapshot through a `BufWriter` to disk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sorete_base::{Metrics, SnapshotWriter, Value};
use sorete_core::{MatcherKind, ProductionSystem, StopReason};

const PROGRAM: &str = "(literalize player name team)
(p RemoveDups
  { [player ^name <n> ^team <t>] <P> }
  :scalar (<n> <t>)
  :test ((count <P>) > 1)
  -->
  (bind <First> true)
  (foreach <P> descending
    (if (<First> == true) (bind <First> false) else (remove <P>))))";

enum Mode {
    Off,
    On,
    Jsonl(std::path::PathBuf),
}

fn run(mode: &Mode) {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROGRAM).unwrap();
    match mode {
        Mode::Off => {}
        Mode::On => ps.enable_metrics(),
        Mode::Jsonl(path) => {
            ps.set_metrics_stream(SnapshotWriter::create(path).expect("temp file"));
        }
    }
    for i in 0..8 {
        for _ in 0..16 {
            ps.make_str(
                "player",
                &[
                    ("name", Value::sym(&format!("p{}", i))),
                    ("team", Value::sym("A")),
                ],
            )
            .unwrap();
        }
    }
    let outcome = ps.run(None);
    assert!(matches!(outcome.reason, StopReason::Quiescence));
    assert_eq!(ps.wm().len(), 8);
    ps.flush_trace();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    // The disabled fast path in isolation: 10k `Metrics::with` calls on a
    // null handle must cost no more than 10k untaken branches — the same
    // bar `emit_disabled_10k` sets for the tracer.
    group.bench_function("with_disabled_10k", |b| {
        let metrics = Metrics::null();
        b.iter(|| {
            for i in 0..10_000u64 {
                let r = metrics.with(|reg| {
                    reg.snapshot(black_box(i));
                    i
                });
                assert!(r.is_none());
            }
        })
    });
    group.bench_function("off", |b| b.iter(|| run(&Mode::Off)));
    group.bench_function("on", |b| b.iter(|| run(&Mode::On)));
    let path = std::env::temp_dir().join("sorete-metrics-overhead.jsonl");
    group.bench_function("jsonl", |b| {
        let mode = Mode::Jsonl(path.clone());
        b.iter(|| run(&mode))
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
