//! Flight-recorder overhead bench: what the always-on black box costs.
//!
//! The workload is the WAL counting loop (200 firings, group-commit 8),
//! the same shape the `wal_overhead` and `span_overhead` benches use, so
//! the numbers compose. Two configurations:
//!
//! - `off`       — `--flight-recorder off`: every record site is one
//!   untaken branch, the baseline;
//! - `recording` — the default: logical events, closed spans, and
//!   per-cycle records stream into the fixed-capacity rings.
//!
//! A calibration pass writes `BENCH_flight_recorder.json` (median-of-5
//! wall micros per configuration plus the overhead permille against the
//! off baseline) for the bench gate and CI to check. A third row measures
//! the off fast path directly — per-call nanos for offering a cycle
//! record to a disabled ring, expressed as a permille of one
//! recognise–act cycle — and the gate holds it under 50‰.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorete_bench::gate::{
    flight_off_fastpath_nanos, flight_off_permille_of_cycle, run_flight_overhead, FlightConfig,
    WAL_WORKLOAD_FIRINGS,
};

fn bench(c: &mut Criterion) {
    write_calibration_json();
    let mut group = c.benchmark_group("flight_overhead");
    for (label, config) in [
        ("off", FlightConfig::Off),
        ("recording", FlightConfig::Recording),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, WAL_WORKLOAD_FIRINGS),
            &config,
            |b, &config| b.iter(|| run_flight_overhead(config)),
        );
    }
    group.finish();
}

/// Median-of-5 wall micros per configuration plus the fast-path row,
/// written to `BENCH_flight_recorder.json`.
fn write_calibration_json() {
    let micros = |config: FlightConfig| -> u64 {
        let mut samples: Vec<u64> = (0..5).map(|_| run_flight_overhead(config) as u64).collect();
        samples.sort_unstable();
        samples[2]
    };
    let off = micros(FlightConfig::Off).max(1);
    let recording = micros(FlightConfig::Recording);
    let overhead_pm = (recording.saturating_sub(off)) * 1000 / off;
    let per_call = flight_off_fastpath_nanos();
    let permille = flight_off_permille_of_cycle(off as f64);
    let json = format!(
        "[\n  {{\"config\": \"off\", \"firings\": {f}, \"micros\": {off}, \
         \"overhead_permille\": 0}},\n  \
         {{\"config\": \"recording\", \"firings\": {f}, \"micros\": {recording}, \
         \"overhead_permille\": {pm}}},\n  \
         {{\"config\": \"off_fastpath\", \"per_call_nanos\": {pc:.2}, \
         \"permille_of_cycle\": {pmc:.2}}}\n]\n",
        f = WAL_WORKLOAD_FIRINGS,
        pm = overhead_pm,
        pc = per_call,
        pmc = permille,
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_flight_recorder.json"
    );
    match std::fs::write(out, &json) {
        Ok(()) => println!("(wrote BENCH_flight_recorder.json)"),
        Err(e) => println!("(could not write BENCH_flight_recorder.json: {})", e),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
