//! `sorete-bench` — benchmark utility front-end.
//!
//! ```sh
//! sorete-bench gate [--tolerance PCT] [--baseline-dir DIR]
//! ```
//!
//! `gate` re-runs the suites described by the committed `BENCH_*.json`
//! baselines and fails on regression; see `sorete_bench::gate` for the
//! comparison rules. Exit codes: 0 pass, 2 usage, 4 missing baseline,
//! 5 regression.

use sorete_bench::gate::{render_report, run_gate, EXIT_USAGE};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: sorete-bench gate [--tolerance PCT] [--baseline-dir DIR]");
    eprintln!("  --tolerance PCT     allowed regression on resource metrics (default 10)");
    eprintln!("  --baseline-dir DIR  where the BENCH_*.json baselines live");
    eprintln!("                      (default: the workspace root)");
    std::process::exit(EXIT_USAGE);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("gate") => {}
        _ => usage(),
    }
    let mut tolerance: u32 = 10;
    let mut dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) => tolerance = pct,
                None => usage(),
            },
            "--baseline-dir" => match args.next() {
                Some(d) => dir = PathBuf::from(d),
                None => usage(),
            },
            _ => usage(),
        }
    }
    let outcome = run_gate(&dir, tolerance);
    print!("{}", render_report(&outcome, tolerance));
    std::process::exit(outcome.exit_code());
}
