//! `report` — regenerates every experiment table for `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p sorete-bench --bin report
//! ```

use sorete_bench::*;
use sorete_core::MatcherKind;
use sorete_dips::DipsMode;

fn hr(title: &str) {
    println!("\n## {}\n", title);
}

fn main() {
    println!("# sorete experiment report");
    println!("(shapes, not absolute numbers — see EXPERIMENTS.md)");

    // ---------------------------------------------------------- figures
    hr("F1/F2 — Figure 1 & 2: instantiation counts");
    {
        use sorete_base::Value;
        use sorete_core::ProductionSystem;
        let variants = [
            (
                "tuple-oriented compete",
                "(p c (player ^name <n1> ^team A) (player ^name <n2> ^team B) (halt))",
            ),
            (
                "all-set compete1",
                "(p c [player ^name <n1> ^team A] [player ^name <n2> ^team B] (halt))",
            ),
            (
                "mixed compete2",
                "(p c [player ^name <n1> ^team A] (player ^name <n2> ^team B) (halt))",
            ),
        ];
        println!(
            "{:<28} {:>14} {:>14}",
            "LHS form", "instantiations", "rows-in-first"
        );
        for (label, rule) in variants {
            let mut ps = ProductionSystem::new(MatcherKind::Rete);
            ps.load_program(&format!("(literalize player name team){}", rule))
                .unwrap();
            for (n, t) in [
                ("Jack", "A"),
                ("Janice", "A"),
                ("Sue", "B"),
                ("Jack", "B"),
                ("Sue", "B"),
            ] {
                ps.make_str(
                    "player",
                    &[("name", Value::sym(n)), ("team", Value::sym(t))],
                )
                .unwrap();
            }
            let items = ps.conflict_items();
            println!(
                "{:<28} {:>14} {:>14}",
                label,
                items.len(),
                items.first().map(|i| i.rows.len()).unwrap_or(0)
            );
        }
    }

    hr("F6 — Figure 6: set-oriented DIPS groups");
    {
        let fig = sorete_dips::figure6().expect("figure 6");
        println!("query: {}", fig.query);
        print!("{}", fig.soi_relation.render());
    }

    // ----------------------------------------------------------- claims
    hr("C1 — regular programs unaffected by the extension (Rete)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "n", "firings", "tokens", "join-tests", "snode-acts", "µs"
    );
    for n in [100usize, 400, 1600] {
        for (label, prog) in [("plain", C1_REGULAR), ("w/ set rule", C1_WITH_SET)] {
            let r = run_c1(prog, MatcherKind::Rete, n);
            println!(
                "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}  {}",
                r.n, r.firings, r.tokens, r.join_tests, r.snode_activations, r.micros, label
            );
        }
    }

    hr("C2 — collection processing: marking scheme vs one set-oriented firing (Rete)");
    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>10}",
        "n", "firings", "actions", "actions/firing", "µs"
    );
    for n in [10usize, 100, 1000] {
        for (label, prog) in [("marking", C2_MARKING), ("set-oriented", C2_SET)] {
            let r = run_c2(prog, MatcherKind::Rete, n);
            println!(
                "{:>8} {:>12} {:>10} {:>14.1} {:>10}  {}",
                r.n, r.firings, r.actions, r.actions_per_firing, r.micros, label
            );
        }
    }

    hr("C3 — second-order info: counter rules vs direct aggregate match (Rete)");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>10}",
        "n", "firings", "agg-updates", "tokens", "µs"
    );
    for n in [10usize, 100, 400] {
        for (label, prog) in [("counter rules", C3_COUNTER), ("aggregate", C3_AGGREGATE)] {
            let r = run_c3(prog, MatcherKind::Rete, n);
            println!(
                "{:>8} {:>12} {:>14} {:>12} {:>10}  {}",
                r.n, r.firings, r.aggregate_updates, r.tokens, r.micros, label
            );
        }
    }

    hr("C4 — actions per firing (parallelism proxy)");
    println!("{:>8} {:>16} {:>16}", "n", "set-oriented", "marking");
    for n in [4usize, 16, 64, 256] {
        let set = run_c2(C2_SET, MatcherKind::Rete, n);
        let tup = run_c2(C2_MARKING, MatcherKind::Rete, n);
        println!(
            "{:>8} {:>16.1} {:>16.2}",
            n, set.actions_per_firing, tup.actions_per_firing
        );
    }

    hr("C5 — DIPS parallel firing: conflicts/aborts");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "n", "attempted", "committed", "aborted", "tagconflict", "cycles", "µs"
    );
    for n in [4usize, 8, 16, 32] {
        for mode in [DipsMode::Tuple, DipsMode::Set] {
            let r = run_c5(mode, n);
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>12} {:>8} {:>10}  {:?}",
                r.n, r.attempted, r.committed, r.aborted, r.tag_conflicts, r.cycles, r.micros, mode
            );
        }
    }

    hr("Network sharing — 'all of the advantages of Rete such as shared tests remain'");
    {
        use sorete_lang::{analyze_rule, parse_rule, Matcher};
        use sorete_rete::ReteMatcher;
        use std::sync::Arc;
        // N rules sharing a 2-CE prefix, differing only in the final CE.
        println!("{:>8} {:>12} {:>12}", "rules", "alpha-mems", "beta-nodes");
        for n in [1usize, 4, 16] {
            let mut m = ReteMatcher::new();
            for i in 0..n {
                let src = format!("(p r{i} (ctx ^on t) (item ^k <k>) (tag ^k <k> ^n {i}) (halt))");
                m.add_rule(Arc::new(analyze_rule(&parse_rule(&src).unwrap()).unwrap()));
            }
            println!("{:>8} {:>12} {:>12}", n, m.alpha_count(), m.node_count());
        }
        println!("(beta nodes grow by ~3/rule — the join+memory+production of the unshared tail;\n the 2-CE prefix and its alpha memories are built once)");
    }

    hr("C6 — match algorithms on a mixed workload");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "n", "matcher", "firings", "tokens", "join-tests", "µs"
    );
    for n in [50usize, 200] {
        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
            let r = run_c6(kind, n);
            let name = matcher_label(kind);
            println!(
                "{:>8} {:>8} {:>10} {:>12} {:>12} {:>10}",
                r.n, name, r.firings, r.tokens, r.join_tests, r.micros
            );
        }
    }

    hr("J1 — hash-join indexing: indexed Rete vs scan Rete");
    {
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>14} {:>10}",
            "n", "matcher", "join-tests", "idx-probes", "skipped-tests", "µs"
        );
        let mut json = String::from("[\n");
        let mut first = true;
        for n in [100usize, 300, 1000] {
            for kind in [MatcherKind::Rete, MatcherKind::ReteScan] {
                let r = run_join_index(kind, n);
                let name = matcher_label(kind);
                println!(
                    "{:>8} {:>10} {:>12} {:>12} {:>14} {:>10}",
                    r.n, name, r.join_tests, r.index_probes, r.index_skipped_tests, r.micros
                );
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                json.push_str(&format!(
                    "  {{\"n\": {}, \"matcher\": \"{}\", \"join_tests\": {}, \
                     \"index_probes\": {}, \"index_skipped_tests\": {}, \"micros\": {}}}",
                    r.n, name, r.join_tests, r.index_probes, r.index_skipped_tests, r.micros
                ));
            }
        }
        json.push_str("\n]\n");
        match std::fs::write("BENCH_join_index.json", &json) {
            Ok(()) => println!("(wrote BENCH_join_index.json)"),
            Err(e) => println!("(could not write BENCH_join_index.json: {})", e),
        }
    }

    hr("P1 — per-node heat profile (C6 workload, Rete)");
    {
        use sorete_base::Value;
        use sorete_core::ProductionSystem;
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(C6_PROGRAM).expect("C6 program");
        ps.set_profiling(true);
        for i in 0..200i64 {
            ps.make_str(
                "task",
                &[
                    ("id", Value::Int(i)),
                    ("dur", Value::Int(1 + (i * 7) % 13)),
                    ("state", Value::sym("queued")),
                    ("owner", Value::Nil),
                ],
            )
            .unwrap();
            if i % 3 == 0 {
                ps.make_str(
                    "worker",
                    &[
                        ("id", Value::Int(i)),
                        ("cap", Value::Int(5 + (i * 3) % 9)),
                        ("load", Value::Int(0)),
                    ],
                )
                .unwrap();
            }
        }
        ps.run(Some(100_000));
        let prof = ps.profile().expect("profiling on");
        println!(
            "{:>6} {:>12} {:>8} {:>10} {:>10}  label",
            "node", "kind", "acts", "held", "self-µs"
        );
        let mut json = String::from("[\n");
        for (i, node) in prof.sorted().iter().enumerate() {
            println!(
                "{:>6} {:>12} {:>8} {:>10} {:>10}  {}",
                node.id,
                node.kind,
                node.activations,
                node.held,
                node.nanos / 1_000,
                node.label.replace('\n', " ")
            );
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"kind\": \"{}\", \"activations\": {}, \
                 \"held\": {}, \"self_nanos\": {}, \"rules\": [{}]}}",
                node.id,
                node.kind,
                node.activations,
                node.held,
                node.nanos,
                node.rules
                    .iter()
                    .map(|r| format!("\"{}\"", r))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        json.push_str("\n]\n");
        println!("(total self time: {}µs)", prof.total_nanos() / 1_000);
        match std::fs::write("BENCH_profile.json", &json) {
            Ok(()) => println!("(wrote BENCH_profile.json)"),
            Err(e) => println!("(could not write BENCH_profile.json: {})", e),
        }
    }

    hr("M1 — memory over load (J1 workload, live-set bytes)");
    {
        let mut json = String::from("{\n  \"curve\": [\n");
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "phase", "wm", "total-B", "alpha-B", "beta-B", "index-B"
        );
        let points = run_memory_curve(MatcherKind::Rete, 600, 8);
        for (i, p) in points.iter().enumerate() {
            println!(
                "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12}",
                p.phase, p.wm, p.total_bytes, p.alpha_bytes, p.beta_bytes, p.index_bytes
            );
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "    {{\"phase\": \"{}\", \"wm\": {}, \"total_bytes\": {}, \
                 \"alpha_bytes\": {}, \"beta_bytes\": {}, \"index_bytes\": {}}}",
                p.phase, p.wm, p.total_bytes, p.alpha_bytes, p.beta_bytes, p.index_bytes
            ));
        }
        json.push_str("\n  ],\n  \"final_counters\": {");

        // Final registry scrape of the same workload under full telemetry,
        // proving the counters survive an end-to-end run.
        use sorete_core::ProductionSystem;
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(J1_PROGRAM).expect("J1 program");
        ps.enable_metrics();
        {
            use sorete_base::Value;
            let mut stock_tags = Vec::new();
            for i in 0..600i64 {
                stock_tags.push(
                    ps.make_str(
                        "stock",
                        &[("id", Value::Int(i)), ("qty", Value::Int((i * 5) % 10))],
                    )
                    .unwrap(),
                );
                ps.make_str(
                    "order",
                    &[("id", Value::Int(i)), ("qty", Value::Int((i * 3) % 10))],
                )
                .unwrap();
            }
            for tag in stock_tags.into_iter().step_by(3) {
                ps.retract_wme(tag).unwrap();
            }
        }
        ps.run(Some(100_000));
        ps.record_metrics_snapshot();
        let m = ps.metrics();
        let counters = [
            "sorete_cycles_total",
            "sorete_firings_total",
            "sorete_wm_asserts_total",
            "sorete_wm_retracts_total",
            "sorete_match_join_tests_total",
            "sorete_match_index_probes_total",
        ];
        println!();
        for (i, family) in counters.iter().enumerate() {
            let v = m.with(|r| r.value(family, "")).flatten().unwrap_or(0);
            println!("{:<40} {:>12}", family, v);
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{}\": {}", family, v));
        }
        json.push_str("}\n}\n");
        match std::fs::write("BENCH_metrics.json", &json) {
            Ok(()) => println!("(wrote BENCH_metrics.json)"),
            Err(e) => println!("(could not write BENCH_metrics.json: {})", e),
        }
    }

    hr("Whole program — Monkey & Bananas (programs/monkey.ops, MEA)");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "matcher", "firings", "actions", "join-tests", "µs"
    );
    for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
        let r = run_monkey(kind);
        let name = matcher_label(kind);
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>10}",
            name, r.firings, r.actions, r.join_tests, r.micros
        );
    }

    println!("\ndone.");
}
