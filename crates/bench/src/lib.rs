#![warn(missing_docs)]
//! Shared experiment definitions: workload generators and runners used by
//! both the Criterion benches and the `report` binary that regenerates the
//! tables in `EXPERIMENTS.md`.
//!
//! Experiment ids (F1–F6 figures, C1–C6 claims) are defined in DESIGN.md.

use sorete_base::Value;
use sorete_core::{MatcherKind, ProductionSystem};
use sorete_dips::{parallel_cycle, CycleReport, DipsEngine, DipsMode};

pub mod gate;

/// One measured run of a production-system workload.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// WM size parameter of the workload.
    pub n: usize,
    /// Rule firings.
    pub firings: u64,
    /// Primitive RHS actions.
    pub actions: u64,
    /// Actions per firing (the C4 parallelism proxy).
    pub actions_per_firing: f64,
    /// Tokens created in the match network.
    pub tokens: u64,
    /// Join tests performed.
    pub join_tests: u64,
    /// S-node activations.
    pub snode_activations: u64,
    /// Incremental aggregate updates.
    pub aggregate_updates: u64,
    /// Hash-index probes (indexed Rete only; 0 under scan matchers).
    pub index_probes: u64,
    /// Join tests skipped thanks to index probes.
    pub index_skipped_tests: u64,
    /// Wall-clock microseconds for the measured phase.
    pub micros: u128,
}

fn report_from(ps: &ProductionSystem, n: usize, micros: u128) -> RunReport {
    let s = ps.stats();
    let m = ps.match_stats();
    RunReport {
        n,
        firings: s.firings,
        actions: s.actions,
        actions_per_firing: s.actions_per_firing(),
        tokens: m.tokens_created,
        join_tests: m.join_tests,
        snode_activations: m.snode_activations,
        aggregate_updates: m.aggregate_updates,
        index_probes: m.index_probes,
        index_skipped_tests: m.index_skipped_tests,
        micros,
    }
}

/// Short display name for a matcher kind in report tables.
pub fn matcher_label(kind: MatcherKind) -> &'static str {
    match kind {
        MatcherKind::Rete => "rete",
        MatcherKind::ReteScan => "rete-scan",
        MatcherKind::Treat => "treat",
        MatcherKind::Naive => "naive",
    }
}

// =================================================================== C1

/// A purely tuple-oriented workload: `n` jobs advanced through a 3-state
/// pipeline. Used to show regular rules cost the same with or without
/// set-oriented rules loaded.
pub const C1_REGULAR: &str = "(literalize job id state)
    (p start (job ^id <i> ^state ready) (modify 1 ^state running))
    (p finish (job ^id <i> ^state running) (modify 1 ^state done))";

/// The same program plus an (idle) set-oriented rule on an unused class.
pub const C1_WITH_SET: &str = "(literalize job id state)(literalize audit k)
    (p start (job ^id <i> ^state ready) (modify 1 ^state running))
    (p finish (job ^id <i> ^state running) (modify 1 ^state done))
    (p sweep { [audit ^k <k>] <A> } :test ((count <A>) > 3) (set-remove <A>))";

/// Build + run the C1 pipeline; returns the measured report.
pub fn run_c1(program: &str, kind: MatcherKind, n: usize) -> RunReport {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(program).expect("C1 program");
    let start = std::time::Instant::now();
    for i in 0..n as i64 {
        ps.make_str(
            "job",
            &[("id", Value::Int(i)), ("state", Value::sym("ready"))],
        )
        .unwrap();
    }
    ps.run(None);
    report_from(&ps, n, start.elapsed().as_micros())
}

// =================================================================== C2

/// Tuple-oriented OPS5 idiom: iterate with per-element firings plus a
/// control rule (the "unwieldy control mechanisms" of §1).
pub const C2_MARKING: &str = "(literalize item s)(literalize phase p)
    (p process-one (phase ^p sweep) (item ^s pending) (modify 2 ^s done))
    (p finish (phase ^p sweep) -(item ^s pending) (remove 1))";

/// The paper's alternative: one set-oriented rule, one firing.
pub const C2_SET: &str = "(literalize item s)(literalize phase p)
    (p process-all (phase ^p sweep) { [item ^s pending] <P> }
      (set-modify <P> ^s done) (remove 1))";

/// Build + run the C2 sweep over `n` pending items.
pub fn run_c2(program: &str, kind: MatcherKind, n: usize) -> RunReport {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(program).expect("C2 program");
    for _ in 0..n {
        ps.make_str("item", &[("s", Value::sym("pending"))])
            .unwrap();
    }
    let start = std::time::Instant::now();
    ps.make_str("phase", &[("p", Value::sym("sweep"))]).unwrap();
    ps.run(Some(100_000));
    let rep = report_from(&ps, n, start.elapsed().as_micros());
    debug_assert!(ps.wm().iter().all(|w| w.class.as_str() != "item"
        || w.get(sorete_base::Symbol::new("s")) == Value::sym("done")));
    rep
}

// =================================================================== C3

/// Counter maintenance by iteration (tuple-oriented).
pub const C3_COUNTER: &str = "(literalize box s)(literalize counter n)(literalize alarm t)
    (p count-one (counter ^n <n>) (box ^s new)
      (modify 1 ^n (<n> + 1)) (modify 2 ^s counted))
    (p raise (counter ^n <k> ^n >= 1000000) (make alarm ^t overfull))";

/// Direct second-order match (set-oriented).
pub const C3_AGGREGATE: &str = "(literalize box s)(literalize alarm t)
    (p raise { [box ^s new] <B> } :test ((count <B>) >= 1000000)
      (make alarm ^t overfull))";

/// Insert `n` boxes, then remove half — measuring the cost of *keeping the
/// cardinality current* under churn.
pub fn run_c3(program: &str, kind: MatcherKind, n: usize) -> RunReport {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(program).expect("C3 program");
    if program.contains("literalize counter") {
        ps.make_str("counter", &[("n", Value::Int(0))]).unwrap();
    }
    let start = std::time::Instant::now();
    let mut tags = Vec::new();
    for _ in 0..n {
        tags.push(ps.make_str("box", &[("s", Value::sym("new"))]).unwrap());
        ps.run(None); // counter program needs firings per box
    }
    for t in tags.into_iter().step_by(2) {
        // Counter program can't notice removals (its count drifts) — the
        // aggregate version stays exact for free.
        let _ = ps.retract_wme(t);
        ps.run(None);
    }
    report_from(&ps, n, start.elapsed().as_micros())
}

// =================================================================== C6

/// A mixed workload for matcher comparison: variable joins (a worker may
/// only take a task within its capacity), negation-free control, and one
/// set-oriented aggregate rule, over `n` tasks.
pub const C6_PROGRAM: &str = "(literalize task id dur state owner)
    (literalize worker id cap load)
    (p assign (task ^id <t> ^state queued ^owner nil ^dur <d>)
              (worker ^id <w> ^load 0 ^cap >= <d>)
      (modify 1 ^state assigned ^owner <w>) (modify 2 ^load 1))
    (p watch-queue { [task ^state queued ^dur <d>] <Q> } :test ((count <Q>) > 0 and (sum <d>) > 10)
      (write backlog (count <Q>)))";

/// Run the C6 workload on the chosen matcher.
pub fn run_c6(kind: MatcherKind, n: usize) -> RunReport {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(C6_PROGRAM).expect("C6 program");
    let start = std::time::Instant::now();
    for i in 0..n as i64 {
        ps.make_str(
            "task",
            &[
                ("id", Value::Int(i)),
                ("dur", Value::Int(1 + (i * 7) % 13)),
                ("state", Value::sym("queued")),
                ("owner", Value::Nil),
            ],
        )
        .unwrap();
        if i % 3 == 0 {
            ps.make_str(
                "worker",
                &[
                    ("id", Value::Int(i)),
                    ("cap", Value::Int(5 + (i * 3) % 9)),
                    ("load", Value::Int(0)),
                ],
            )
            .unwrap();
        }
    }
    ps.run(Some(100_000));
    report_from(&ps, n, start.elapsed().as_micros())
}

// =================================================================== J1

/// Join-selectivity workload for the hash-index experiment: `n` orders and
/// `n` stocks equality-join on `^id` (each order matches exactly one stock)
/// with a `^qty >=` residual predicate, plus a negated-CE rule over the same
/// alpha memories. A scan Rete tests every order against every stock
/// (O(n²) join tests); the hash index probes one bucket per activation.
/// Rules end in `(halt)` so the measured phase is pure match work.
pub const J1_PROGRAM: &str = "(literalize order id qty)(literalize stock id qty)
    (p fill (order ^id <i> ^qty <q>) (stock ^id <i> ^qty >= <q>) (halt))
    (p missing (order ^id <i> ^qty <q>) -(stock ^id <i>) (halt))";

/// Run the J1 workload: insert `n` stocks then `n` orders, then retract a
/// third of the stock (exercising delete + negative-join maintenance).
pub fn run_join_index(kind: MatcherKind, n: usize) -> RunReport {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(J1_PROGRAM).expect("J1 program");
    let start = std::time::Instant::now();
    let mut stock_tags = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let tag = ps
            .make_str(
                "stock",
                &[("id", Value::Int(i)), ("qty", Value::Int((i * 5) % 10))],
            )
            .unwrap();
        stock_tags.push(tag);
    }
    for i in 0..n as i64 {
        ps.make_str(
            "order",
            &[("id", Value::Int(i)), ("qty", Value::Int((i * 3) % 10))],
        )
        .unwrap();
    }
    for tag in stock_tags.into_iter().step_by(3) {
        ps.retract_wme(tag).unwrap();
    }
    report_from(&ps, n, start.elapsed().as_micros())
}

// =================================================================== M1

/// One point on the J1 memory-over-load curve.
#[derive(Clone, Copy, Debug)]
pub struct MemoryPoint {
    /// Phase of the workload: `"load"` while inserting, `"retract"` after
    /// each retract chunk.
    pub phase: &'static str,
    /// Working-memory size at the sample.
    pub wm: usize,
    /// Total matcher bytes (all regions).
    pub total_bytes: u64,
    /// Alpha-memory bytes.
    pub alpha_bytes: u64,
    /// Beta-memory bytes (token lists, not the slab).
    pub beta_bytes: u64,
    /// Hash-index bytes (alpha + beta indexes).
    pub index_bytes: u64,
}

/// The J1 memory-over-load curve: sample the matcher's live-set byte
/// accounting while inserting `n` stocks + `n` orders in `samples` chunks,
/// then while retracting every third stock. The retract tail must bend the
/// curve *down* — the accounting counts live entries only.
pub fn run_memory_curve(kind: MatcherKind, n: usize, samples: usize) -> Vec<MemoryPoint> {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(J1_PROGRAM).expect("J1 program");
    let mut points = Vec::new();
    let sample = |ps: &ProductionSystem, phase: &'static str| {
        let report = ps.memory_report();
        let region = |name: &str| report.region(name).map_or(0, |r| r.bytes);
        MemoryPoint {
            phase,
            wm: ps.wm().len(),
            total_bytes: report.total_bytes(),
            alpha_bytes: region("alpha"),
            beta_bytes: region("beta"),
            index_bytes: region("alpha_index") + region("beta_index"),
        }
    };
    let chunk = (n / samples.max(1)).max(1);
    let mut stock_tags = Vec::with_capacity(n);
    for i in 0..n as i64 {
        stock_tags.push(
            ps.make_str(
                "stock",
                &[("id", Value::Int(i)), ("qty", Value::Int((i * 5) % 10))],
            )
            .unwrap(),
        );
        ps.make_str(
            "order",
            &[("id", Value::Int(i)), ("qty", Value::Int((i * 3) % 10))],
        )
        .unwrap();
        if (i as usize + 1).is_multiple_of(chunk) {
            points.push(sample(&ps, "load"));
        }
    }
    let retracts: Vec<_> = stock_tags.into_iter().step_by(3).collect();
    let rchunk = (retracts.len() / samples.max(1)).max(1);
    for (i, tag) in retracts.into_iter().enumerate() {
        ps.retract_wme(tag).unwrap();
        if (i + 1).is_multiple_of(rchunk) {
            points.push(sample(&ps, "retract"));
        }
    }
    points
}

// =================================================================== C5

/// Outcome of the DIPS experiment at one size.
#[derive(Clone, Copy, Debug)]
pub struct DipsReport {
    /// Collection size.
    pub n: usize,
    /// Transactions attempted.
    pub attempted: usize,
    /// Commits.
    pub committed: usize,
    /// Aborts (conflicts).
    pub aborted: usize,
    /// Aborts decided by the explicit read/write tag-set rule.
    pub tag_conflicts: usize,
    /// Cycles needed to drain the collection.
    pub cycles: usize,
    /// Wall-clock microseconds.
    pub micros: u128,
}

/// Drain `n` pending items through DIPS parallel cycles in the given mode.
pub fn run_c5(mode: DipsMode, n: usize) -> DipsReport {
    let prog = match mode {
        DipsMode::Tuple => "(p drain (flag ^on t) (item ^s pending) (modify 1 ^on t) (remove 2))",
        DipsMode::Set => {
            "(p drain (flag ^on t) { [item ^s pending] <P> } (modify 1 ^on t) (set-remove <P>))"
        }
    };
    let mut e = DipsEngine::new(mode, prog).expect("C5 program");
    e.insert("flag", &[("on", Value::sym("t"))]).unwrap();
    for _ in 0..n {
        e.insert("item", &[("s", Value::sym("pending"))]).unwrap();
    }
    let start = std::time::Instant::now();
    let mut total = CycleReport::default();
    let mut cycles = 0;
    loop {
        let r = parallel_cycle(&mut e).expect("cycle");
        if r.attempted == 0 {
            break;
        }
        cycles += 1;
        total.attempted += r.attempted;
        total.committed += r.committed;
        total.aborted += r.aborted;
        total.tag_conflicts += r.tag_conflicts;
        if cycles > n + 2 {
            break;
        }
    }
    DipsReport {
        n,
        attempted: total.attempted,
        committed: total.committed,
        aborted: total.aborted,
        tag_conflicts: total.tag_conflicts,
        cycles,
        micros: start.elapsed().as_micros(),
    }
}

// =================================================================== P1

/// High-fanout parallel-match workload: `rules` clones of an
/// inequality-join rule (`^qty >=` admits no hash index, so every
/// activation scans the opposite memory). The clones are identical in
/// shape but distinct productions, so the parallel backend's round-robin
/// routing spreads them across its partitions and each WME change fans
/// out into `rules` independent join cascades — the workload the
/// `parallel_scaling` bench uses to measure `--jobs` speedup.
pub fn p1_program(rules: usize) -> String {
    let mut s = String::from("(literalize order id qty)(literalize stock id qty)\n");
    for r in 0..rules {
        s.push_str(&format!(
            "(p fill{r} (order ^id <i> ^qty <q>) (stock ^qty >= <q>) (halt))\n"
        ));
    }
    s
}

/// Run the P1 workload at a given worker count: insert `n` stocks then
/// `n` orders (pure match — the `halt` RHS never runs). Returns the
/// usual report plus the pool's per-lane busy nanoseconds for the
/// measured phase (lane 0 = the engine thread; empty when the backend
/// is monolithic).
pub fn run_parallel_match(jobs: usize, rules: usize, n: usize) -> (RunReport, Vec<u64>) {
    let mut ps = ProductionSystem::with_jobs(MatcherKind::Rete, jobs);
    ps.load_program(&p1_program(rules)).expect("P1 program");
    ps.pool_reset_busy();
    let start = std::time::Instant::now();
    for i in 0..n as i64 {
        ps.make_str(
            "stock",
            &[("id", Value::Int(i)), ("qty", Value::Int((i * 5) % 100))],
        )
        .unwrap();
    }
    for i in 0..n as i64 {
        ps.make_str(
            "order",
            &[("id", Value::Int(i)), ("qty", Value::Int((i * 7) % 100))],
        )
        .unwrap();
    }
    let rep = report_from(&ps, n, start.elapsed().as_micros());
    let busy = ps.pool_busy_nanos().unwrap_or_default();
    (rep, busy)
}

// ================================================================ whole-program

/// The Monkey & Bananas planning program (`programs/monkey.ops`), run end
/// to end under MEA — a complete multi-rule program with joins, negation,
/// and a set-oriented cleanup rule.
pub fn run_monkey(kind: MatcherKind) -> RunReport {
    let program = include_str!("../../../programs/monkey.ops");
    let mut ps = ProductionSystem::new(kind);
    ps.set_strategy(sorete_core::Strategy::Mea);
    ps.load_program(program).expect("monkey program");
    let start = std::time::Instant::now();
    ps.make_str(
        "monkey",
        &[
            ("at", Value::sym("5-7")),
            ("on", Value::sym("floor")),
            ("holds", Value::Nil),
        ],
    )
    .unwrap();
    ps.make_str(
        "thing",
        &[
            ("name", Value::sym("bananas")),
            ("at", Value::sym("7-7")),
            ("on", Value::sym("ceiling")),
        ],
    )
    .unwrap();
    ps.make_str(
        "thing",
        &[
            ("name", Value::sym("ladder")),
            ("at", Value::sym("2-2")),
            ("on", Value::sym("floor")),
        ],
    )
    .unwrap();
    ps.make_str(
        "goal",
        &[
            ("status", Value::sym("active")),
            ("type", Value::sym("holds")),
            ("obj", Value::sym("bananas")),
        ],
    )
    .unwrap();
    let outcome = ps.run(Some(100));
    debug_assert_eq!(outcome.fired, 7);
    report_from(&ps, 1, start.elapsed().as_micros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_reports_match() {
        let plain = run_c1(C1_REGULAR, MatcherKind::Rete, 20);
        let with_set = run_c1(C1_WITH_SET, MatcherKind::Rete, 20);
        assert_eq!(plain.firings, with_set.firings);
        assert_eq!(plain.tokens, with_set.tokens);
        assert_eq!(with_set.snode_activations, 0);
    }

    #[test]
    fn c2_shapes() {
        let marking = run_c2(C2_MARKING, MatcherKind::Rete, 25);
        let set = run_c2(C2_SET, MatcherKind::Rete, 25);
        assert_eq!(marking.firings, 26);
        assert_eq!(set.firings, 1);
        assert!(set.actions_per_firing > marking.actions_per_firing * 5.0);
    }

    #[test]
    fn c5_shapes() {
        let tuple = run_c5(DipsMode::Tuple, 6);
        let set = run_c5(DipsMode::Set, 6);
        assert!(tuple.aborted > 0);
        assert_eq!(set.aborted, 0);
        assert_eq!(set.cycles, 1);
        assert!(tuple.cycles > 1, "conflicts force re-cycling");
    }

    #[test]
    fn monkey_runs_on_all_matchers() {
        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
            let r = run_monkey(kind);
            assert_eq!(r.firings, 7, "{:?}", kind);
        }
    }

    #[test]
    fn j1_index_cuts_join_tests() {
        let idx = run_join_index(MatcherKind::Rete, 200);
        let scan = run_join_index(MatcherKind::ReteScan, 200);
        assert!(idx.index_probes > 0);
        assert_eq!(scan.index_probes, 0);
        assert!(
            idx.join_tests * 10 <= scan.join_tests,
            "indexed {} vs scan {} join tests",
            idx.join_tests,
            scan.join_tests
        );
    }

    #[test]
    fn memory_curve_rises_then_falls() {
        let points = run_memory_curve(MatcherKind::Rete, 120, 6);
        let peak = points
            .iter()
            .filter(|p| p.phase == "load")
            .map(|p| p.total_bytes)
            .max()
            .unwrap();
        let first = points.first().unwrap().total_bytes;
        let last = points.last().unwrap();
        assert!(peak > first, "bytes grow under load");
        assert_eq!(last.phase, "retract");
        assert!(
            last.total_bytes < peak,
            "retract tail shrinks the live set: {} -> {}",
            peak,
            last.total_bytes
        );
        assert!(points.iter().all(|p| p.alpha_bytes > 0));
    }

    #[test]
    fn p1_work_is_jobs_invariant() {
        // The match work (tokens, join tests) must not depend on the
        // worker count — only the wall clock may.
        let (r1, _) = run_parallel_match(1, 8, 40);
        let (r4, busy4) = run_parallel_match(4, 8, 40);
        assert!(r1.tokens > 0);
        assert_eq!(r1.tokens, r4.tokens);
        assert_eq!(r1.join_tests, r4.join_tests);
        assert_eq!(busy4.len(), 4, "one busy counter per lane");
        assert!(busy4.iter().sum::<u64>() > 0);
    }

    #[test]
    fn c6_all_matchers_terminate() {
        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
            let r = run_c6(kind, 30);
            assert!(r.firings > 0, "{:?}", kind);
        }
    }
}
