//! `sorete-bench gate` — regression gate over the committed `BENCH_*.json`
//! baselines.
//!
//! The gate reads the baseline artifacts at the workspace root (or any
//! `--baseline-dir`), re-runs the suites they describe, and compares:
//!
//! - **deterministic counters** (join tests, index probes, WAL record /
//!   write / fsync counts, curve shape) must match the baseline *exactly* —
//!   any drift means the algorithm changed and the baseline must be
//!   re-recorded deliberately;
//! - **deterministic resources** (live-set bytes) are gated one-sided
//!   within `--tolerance PCT`: getting smaller always passes, growing past
//!   the tolerance fails;
//! - **timing is gated only as host-independent ratios** — the J1 indexing
//!   speedup (scan/rete micros, floor), the WAL group-commit amortisation
//!   multiple (gc1/gc8 micros, floor), the P1 critical-path speedup
//!   (floor), and the span overhead permilles (absolute budget ceilings).
//!   Absolute wall micros live in the baselines for reference but are
//!   never gated: they swing 30–50% with host load and don't transfer
//!   between machines, while a ratio's numerator and denominator are
//!   measured back-to-back in the same process and the noise cancels;
//! - the **span disabled fast path** is held under an absolute ceiling
//!   (50‰ of a recognise–act cycle) regardless of tolerance;
//! - the **server load harness** is gated on its error/timeout counters
//!   (exact, zero) and on the multi/single-session throughput multiple
//!   (floor) — absolute asserts/sec never transfer between hosts, the
//!   concurrency multiple does.
//!
//! Suites without stable re-runnable metrics are not gated: `profile`
//! (per-node self-nanos are host timing) and `supervisor` (pure wall
//! micros, archived but not a claim).
//!
//! Exit codes are typed so CI can tell failure modes apart: 0 pass,
//! 2 usage error, 4 missing baseline file, 5 regression.

use crate::{run_join_index, run_memory_curve, run_parallel_match};
use sorete_core::MatcherKind;
use std::path::Path;

/// Everything passed.
pub const EXIT_OK: i32 = 0;
/// Bad command line.
pub const EXIT_USAGE: i32 = 2;
/// A baseline file the gate expects is absent or unparseable.
pub const EXIT_MISSING: i32 = 4;
/// At least one metric regressed past tolerance.
pub const EXIT_REGRESSION: i32 = 5;

pub mod json {
    //! Minimal recursive-descent JSON reader for the baseline artifacts —
    //! the workspace has no serde, and the `BENCH_*.json` files are small
    //! and machine-written. Also reused by the CLI tests to schema-check
    //! the Perfetto trace export.

    /// A parsed JSON value. Numbers collapse to `f64` (every number the
    /// gate reads fits without precision loss).
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        /// Number as f64.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }
        /// Number as u64 (rounds toward zero).
        pub fn as_u64(&self) -> Option<u64> {
            self.as_f64().map(|n| n as u64)
        }
        /// String contents.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Array elements.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parse a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self, depth: usize) -> Result<Json, String> {
            if depth > 64 {
                return Err("nesting too deep".into());
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(depth),
                Some(b'[') => self.array(depth),
                Some(b'"') => self.string().map(Json::Str),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }

        fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{}' at byte {}", text, start))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self
                            .bytes
                            .get(self.pos)
                            .ok_or("unterminated escape".to_string())?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                self.pos += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => {
                                return Err(format!("bad escape '\\{}'", *other as char));
                            }
                        }
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 sequences pass through unharmed:
                        // find the char boundary and copy it whole.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let ch = rest.chars().next().unwrap();
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self, depth: usize) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self, depth: usize) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let val = self.value(depth + 1)?;
                fields.push((key, val));
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

use json::Json;

/// How a metric is compared against its baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CheckKind {
    /// Deterministic counter: must equal the baseline exactly.
    Exact,
    /// Resource metric (time, bytes): fails when
    /// `current > baseline * (1 + tolerance)`.
    Ceiling,
    /// Claim metric (speedup): fails when
    /// `current < baseline * (1 - tolerance)`.
    Floor,
    /// Absolute bound: fails when `current > baseline`, tolerance ignored.
    AbsoluteCeiling,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct Check {
    /// Suite the metric belongs to (`join_index`, `wal`, ...).
    pub suite: &'static str,
    /// Metric label, e.g. `n=300/rete/join_tests`.
    pub metric: String,
    /// Baseline value from the committed JSON.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Comparison mode.
    pub kind: CheckKind,
    /// Did it pass?
    pub pass: bool,
}

/// Result of a full gate run.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Every metric compared, in suite order.
    pub checks: Vec<Check>,
    /// Baseline files that were absent or unparseable.
    pub missing: Vec<String>,
}

impl GateOutcome {
    /// The typed process exit code: regression dominates missing baselines.
    pub fn exit_code(&self) -> i32 {
        if self.checks.iter().any(|c| !c.pass) {
            EXIT_REGRESSION
        } else if !self.missing.is_empty() {
            EXIT_MISSING
        } else {
            EXIT_OK
        }
    }

    fn push(
        &mut self,
        suite: &'static str,
        metric: String,
        kind: CheckKind,
        tol: f64,
        baseline: f64,
        current: f64,
    ) {
        let pass = match kind {
            CheckKind::Exact => (current - baseline).abs() < f64::EPSILON,
            CheckKind::Ceiling => current <= baseline * (1.0 + tol),
            CheckKind::Floor => current >= baseline * (1.0 - tol),
            CheckKind::AbsoluteCeiling => current <= baseline,
        };
        self.checks.push(Check {
            suite,
            metric,
            baseline,
            current,
            kind,
            pass,
        });
    }
}

// Timing re-runs take the best of three, not the median: a regression
// gate asks "can the build still hit the baseline", and the minimum is
// the noise-robust answer (fsync latency alone can swing a single run by
// double digits). Claim metrics symmetrically take the max.
fn best3(mut f: impl FnMut() -> f64) -> f64 {
    let mut v = [f(), f(), f()];
    v.sort_by(f64::total_cmp);
    v[0]
}

// Max-of-5 rather than 3: the critical-path speedup divides by the
// busiest lane's nanos, and one badly-scheduled lane at high job counts
// drags a single sample well below what the build can do.
fn max5(mut f: impl FnMut() -> f64) -> f64 {
    (0..5).map(|_| f()).fold(f64::MIN, f64::max)
}

fn matcher_from_label(label: &str) -> Option<MatcherKind> {
    match label {
        "rete" => Some(MatcherKind::Rete),
        "rete-scan" => Some(MatcherKind::ReteScan),
        "treat" => Some(MatcherKind::Treat),
        "naive" => Some(MatcherKind::Naive),
        _ => None,
    }
}

/// Run the whole gate against `baseline_dir` with a percentage tolerance
/// for the resource/claim metrics. Deterministic counters ignore the
/// tolerance. Each suite re-runs the workload its baseline describes, so
/// the gate's cost scales with the committed baseline, not a hardcoded
/// sweep.
pub fn run_gate(baseline_dir: &Path, tolerance_pct: u32) -> GateOutcome {
    let tol = tolerance_pct as f64 / 100.0;
    let mut out = GateOutcome::default();
    let load = |name: &str, missing: &mut Vec<String>| -> Option<Json> {
        let path = baseline_dir.join(name);
        match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text) {
                Ok(v) => Some(v),
                Err(e) => {
                    missing.push(format!("{} (unparseable: {})", name, e));
                    None
                }
            },
            Err(_) => {
                missing.push(name.to_string());
                None
            }
        }
    };

    if let Some(base) = load("BENCH_join_index.json", &mut out.missing) {
        gate_join_index(&base, tol, &mut out);
    }
    if let Some(base) = load("BENCH_metrics.json", &mut out.missing) {
        gate_memory(&base, tol, &mut out);
    }
    if let Some(base) = load("BENCH_wal.json", &mut out.missing) {
        gate_wal(&base, tol, &mut out);
    }
    if let Some(base) = load("BENCH_parallel.json", &mut out.missing) {
        gate_parallel(&base, tol, &mut out);
    }
    if let Some(base) = load("BENCH_span_overhead.json", &mut out.missing) {
        gate_span(&base, tol, &mut out);
    }
    if let Some(base) = load("BENCH_flight_recorder.json", &mut out.missing) {
        gate_flight(&base, tol, &mut out);
    }
    if let Some(base) = load("BENCH_server.json", &mut out.missing) {
        gate_server(&base, tol, &mut out);
    }
    out
}

/// Server suite: re-runs the `sorete-server bench` load harness with the
/// workload shape the baseline describes. The error and timeout counters
/// are exact (zero under the fault-free harness — a nonzero count means a
/// request path broke), and the multi/single-session throughput multiple
/// is gated as a floor — the host-independent form of the claim that
/// concurrent sessions scale instead of serialising behind a global lock.
/// Absolute asserts/sec and p95 micros live in the baseline for reference
/// but are never gated.
fn gate_server(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "server";
    let Some(rows) = base.as_arr() else {
        out.missing
            .push("BENCH_server.json (expected an array)".into());
        return;
    };
    let row_of = |config: &str| {
        rows.iter()
            .find(|r| r.get("config").and_then(Json::as_str) == Some(config))
    };
    let (Some(b_single), Some(b_multi)) = (row_of("single_session"), row_of("multi_session"))
    else {
        out.missing
            .push("BENCH_server.json (needs single_session and multi_session rows)".into());
        return;
    };
    // The workload shape rides in the baseline, so the gate's cost tracks
    // what was committed, not a hardcoded sweep.
    let load = sorete_server::LoadConfig {
        sessions: b_multi.get("sessions").and_then(Json::as_u64).unwrap_or(8) as usize,
        batches: b_multi.get("batches").and_then(Json::as_u64).unwrap_or(40) as usize,
        facts_per_batch: b_multi
            .get("facts_per_batch")
            .and_then(Json::as_u64)
            .unwrap_or(25) as usize,
        data_dir: None,
    };
    let fresh = sorete_server::run_server_load(&load);
    let fresh_of = |config: &str| fresh.iter().find(|r| r.config == config);
    for (row, config) in [(b_single, "single_session"), (b_multi, "multi_session")] {
        let Some(f) = fresh_of(config) else { continue };
        for (metric, baseline, current) in [
            ("errors", row.get("errors"), f.errors),
            ("timeouts", row.get("timeouts"), f.timeouts),
        ] {
            if let Some(b) = baseline.and_then(Json::as_f64) {
                out.push(
                    SUITE,
                    format!("{}/{}", config, metric),
                    CheckKind::Exact,
                    tol,
                    b,
                    current as f64,
                );
            }
        }
    }
    let (Some(bs), Some(bm)) = (
        b_single.get("asserts_per_sec").and_then(Json::as_f64),
        b_multi.get("asserts_per_sec").and_then(Json::as_f64),
    ) else {
        return;
    };
    if bs <= 0.0 {
        return;
    }
    let (Some(fs), Some(fm)) = (fresh_of("single_session"), fresh_of("multi_session")) else {
        return;
    };
    let current = fm.asserts_per_sec as f64 / (fs.asserts_per_sec as f64).max(1.0);
    // The recorded ratio tracks the recording host's core count; gating it
    // raw would fail on any smaller machine. Cap the floor at the claim
    // itself — concurrent sessions must at least double throughput — and
    // let the committed baseline carry the full measured value.
    out.push(
        SUITE,
        "multi_over_single_throughput".into(),
        CheckKind::Floor,
        tol,
        (bm / bs).min(SERVER_SCALING_FLOOR_CAP),
        current,
    );
}

/// Cap on the gated multi/single-session throughput floor: the claim is
/// "N sessions scale concurrently", not "this build matches an 8-core
/// recording host", so the floor never exceeds 2× regardless of what the
/// baseline machine measured.
pub const SERVER_SCALING_FLOOR_CAP: f64 = 2.0;

/// J1: exact join/probe counters per (n, matcher) row; where the baseline
/// holds both `rete` and `rete-scan` at the same `n`, the indexing
/// speedup (scan micros / rete micros) is gated as a floor — the
/// host-independent form of the J1 timing claim.
fn gate_join_index(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "join_index";
    let Some(rows) = base.as_arr() else {
        out.missing
            .push("BENCH_join_index.json (expected an array)".into());
        return;
    };
    // (n, baseline rete micros, baseline scan micros) pairs for the
    // speedup gate below.
    let mut pairs: Vec<(u64, Option<f64>, Option<f64>)> = Vec::new();
    for row in rows {
        let (Some(n), Some(label)) = (
            row.get("n").and_then(Json::as_u64),
            row.get("matcher").and_then(Json::as_str),
        ) else {
            out.missing
                .push("BENCH_join_index.json (row missing n/matcher)".into());
            continue;
        };
        let Some(kind) = matcher_from_label(label) else {
            out.missing.push(format!(
                "BENCH_join_index.json (unknown matcher '{}')",
                label
            ));
            continue;
        };
        let fresh = run_join_index(kind, n as usize);
        let tag = |m: &str| format!("n={}/{}/{}", n, label, m);
        for (metric, baseline, current) in [
            ("join_tests", row.get("join_tests"), fresh.join_tests),
            ("index_probes", row.get("index_probes"), fresh.index_probes),
            (
                "index_skipped_tests",
                row.get("index_skipped_tests"),
                fresh.index_skipped_tests,
            ),
        ] {
            if let Some(b) = baseline.and_then(Json::as_f64) {
                out.push(SUITE, tag(metric), CheckKind::Exact, tol, b, current as f64);
            }
        }
        if let Some(b) = row.get("micros").and_then(Json::as_f64) {
            let slot = match pairs.iter_mut().find(|(pn, _, _)| *pn == n) {
                Some(slot) => slot,
                None => {
                    pairs.push((n, None, None));
                    pairs.last_mut().unwrap()
                }
            };
            match kind {
                MatcherKind::Rete => slot.1 = Some(b),
                MatcherKind::ReteScan => slot.2 = Some(b),
                _ => {}
            }
        }
    }
    for (n, rete, scan) in pairs {
        let (Some(b_rete), Some(b_scan)) = (rete, scan) else {
            continue;
        };
        if b_rete <= 0.0 {
            continue;
        }
        let measure =
            |kind: MatcherKind| best3(|| run_join_index(kind, n as usize).micros as f64).max(1.0);
        let current = measure(MatcherKind::ReteScan) / measure(MatcherKind::Rete);
        out.push(
            SUITE,
            format!("n={}/index_speedup", n),
            CheckKind::Floor,
            tol,
            b_scan / b_rete,
            current,
        );
    }
}

/// M1: the memory curve must keep its exact shape (same sample points)
/// with live-set bytes no more than tolerance above the baseline.
fn gate_memory(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "memory";
    let Some(rows) = base.get("curve").and_then(Json::as_arr) else {
        out.missing
            .push("BENCH_metrics.json (no curve array)".into());
        return;
    };
    // The curve is self-describing: n is half the largest loaded WM, the
    // sample count is the number of load-phase points.
    let loads = rows
        .iter()
        .filter(|r| r.get("phase").and_then(Json::as_str) == Some("load"))
        .count();
    let max_wm = rows
        .iter()
        .filter_map(|r| r.get("wm").and_then(Json::as_u64))
        .max()
        .unwrap_or(0);
    if loads == 0 || max_wm == 0 {
        out.missing.push("BENCH_metrics.json (empty curve)".into());
        return;
    }
    let points = run_memory_curve(MatcherKind::Rete, max_wm as usize / 2, loads);
    out.push(
        SUITE,
        "curve_points".into(),
        CheckKind::Exact,
        tol,
        rows.len() as f64,
        points.len() as f64,
    );
    for (row, p) in rows.iter().zip(points.iter()) {
        let wm = row.get("wm").and_then(Json::as_u64).unwrap_or(0);
        let phase = row.get("phase").and_then(Json::as_str).unwrap_or("?");
        let tag = |m: &str| format!("{}@{}/{}", phase, wm, m);
        out.push(
            SUITE,
            tag("wm"),
            CheckKind::Exact,
            tol,
            wm as f64,
            p.wm as f64,
        );
        for (metric, baseline, current) in [
            ("total_bytes", row.get("total_bytes"), p.total_bytes),
            ("alpha_bytes", row.get("alpha_bytes"), p.alpha_bytes),
            ("beta_bytes", row.get("beta_bytes"), p.beta_bytes),
            ("index_bytes", row.get("index_bytes"), p.index_bytes),
        ] {
            if let Some(b) = baseline.and_then(Json::as_f64) {
                out.push(
                    SUITE,
                    tag(metric),
                    CheckKind::Ceiling,
                    tol,
                    b,
                    current as f64,
                );
            }
        }
    }
}

/// The WAL counting workload shared by `wal_overhead` and the span bench:
/// 200 firings, each a `modify` through the durability layer.
pub const WAL_WORKLOAD: &str = "(literalize c n)
(literalize lim max)
(p count (c ^n <n>) (lim ^max > <n>) (modify 1 ^n (<n> + 1)))";

/// Firings in [`WAL_WORKLOAD`].
pub const WAL_WORKLOAD_FIRINGS: i64 = 200;

fn run_wal_workload(group_commit: u32, wal: Option<&Path>) -> sorete_core::ProductionSystem {
    use sorete_base::Value;
    let mut ps = sorete_core::ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(WAL_WORKLOAD).unwrap();
    if let Some(path) = wal {
        let _ = std::fs::remove_file(path);
        ps.attach_wal(path, sorete_reldb::WalOptions { group_commit })
            .unwrap();
    }
    ps.make_str("c", &[("n", Value::Int(0))]).unwrap();
    ps.make_str("lim", &[("max", Value::Int(WAL_WORKLOAD_FIRINGS))])
        .unwrap();
    let outcome = ps.run(None);
    assert_eq!(outcome.fired, WAL_WORKLOAD_FIRINGS as u64);
    ps
}

/// WAL suite: record/write/fsync counts exact; the group-commit
/// *amortisation multiple* (fsync-per-cycle micros / group-commit-8
/// micros) is gated as a floor — the host-independent form of the PR 7
/// batching claim. Ratios against `no_wal` are deliberately not gated:
/// fsync latency varies with host state and only appears in the
/// numerator there, so it cannot cancel.
fn gate_wal(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "wal";
    let Some(rows) = base.as_arr() else {
        out.missing
            .push("BENCH_wal.json (expected an array)".into());
        return;
    };
    let path = std::env::temp_dir().join(format!("sorete-gate-{}.wal", std::process::id()));
    let mut base_micros: Vec<(&str, Option<u32>, f64)> = Vec::new();
    for row in rows {
        let Some(config) = row.get("config").and_then(Json::as_str) else {
            out.missing
                .push("BENCH_wal.json (row missing config)".into());
            continue;
        };
        let wal = match config {
            "no_wal" => None,
            "wal" => Some(1u32),
            "wal_group_8" => Some(8u32),
            other => {
                out.missing
                    .push(format!("BENCH_wal.json (unknown config '{}')", other));
                continue;
            }
        };
        let tag = |m: &str| format!("{}/{}", config, m);
        let run_once = || match wal {
            Some(gc) => run_wal_workload(gc, Some(&path)),
            None => run_wal_workload(0, None),
        };
        let ps = run_once();
        let stats = ps.wal_stats().unwrap_or_default();
        for (metric, baseline, current) in [
            ("records", row.get("records"), stats.records),
            ("writes", row.get("writes"), stats.writes),
            ("fsyncs", row.get("fsyncs"), stats.fsyncs),
        ] {
            if let Some(b) = baseline.and_then(Json::as_f64) {
                out.push(SUITE, tag(metric), CheckKind::Exact, tol, b, current as f64);
            }
        }
        if let Some(b) = row.get("micros").and_then(Json::as_f64) {
            base_micros.push((config, wal, b));
        }
    }
    let micros_for = |config: &str| {
        base_micros
            .iter()
            .find(|(c, _, _)| *c == config)
            .map(|&(_, _, b)| b)
    };
    if let (Some(b_gc1), Some(b_gc8)) = (micros_for("wal"), micros_for("wal_group_8")) {
        if b_gc8 > 0.0 {
            let measure = |gc: u32| {
                best3(|| {
                    let t0 = std::time::Instant::now();
                    let _ = run_wal_workload(gc, Some(&path));
                    t0.elapsed().as_micros() as f64
                })
                .max(1.0)
            };
            out.push(
                SUITE,
                "group_commit_amortisation".into(),
                CheckKind::Floor,
                tol,
                b_gc1 / b_gc8,
                measure(1) / measure(8),
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// P1 suite: the host-independent critical-path speedup per jobs level
/// must not fall below baseline by more than the tolerance. Wall micros
/// are *not* gated — they depend on the host's spare cores.
fn gate_parallel(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "parallel";
    let Some(rows) = base.get("runs").and_then(Json::as_arr) else {
        out.missing
            .push("BENCH_parallel.json (no runs array)".into());
        return;
    };
    // Workload parameters ride in the baseline's workload string,
    // e.g. "P1 high-fanout (8 rules, n=120)".
    let workload = base.get("workload").and_then(Json::as_str).unwrap_or("");
    let rules = workload
        .split('(')
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(8);
    let n = workload
        .split("n=")
        .nth(1)
        .and_then(|s| s.trim_end_matches(')').parse::<usize>().ok())
        .unwrap_or(120);
    for row in rows {
        let Some(jobs) = row.get("jobs").and_then(Json::as_u64) else {
            continue;
        };
        let Some(b) = row.get("critical_path_speedup").and_then(Json::as_f64) else {
            continue;
        };
        let current = max5(|| {
            let (_, busy) = run_parallel_match(jobs as usize, rules, n);
            let total: u64 = busy.iter().sum();
            let max = busy.iter().copied().max().unwrap_or(0);
            if max > 0 {
                total as f64 / max as f64
            } else {
                1.0
            }
        });
        out.push(
            SUITE,
            format!("jobs={}/critical_path_speedup", jobs),
            CheckKind::Floor,
            tol,
            b,
            current,
        );
    }
}

/// Span suite: the enabled / perfetto overhead permilles (both the
/// committed values and fresh measurements) must stay under their fixed
/// budget ceilings, and the disabled fast path under the absolute
/// 50‰-of-a-cycle ceiling (the <5% disabled-cost claim). Absolute micros
/// are recorded in the baseline for reference but never gated.
fn gate_span(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "span";
    let Some(rows) = base.as_arr() else {
        out.missing
            .push("BENCH_span_overhead.json (expected an array)".into());
        return;
    };
    let mut disabled_micros = None;
    for row in rows {
        let Some(config) = row.get("config").and_then(Json::as_str) else {
            continue;
        };
        if config == "disabled_fastpath" {
            if let Some(b) = row.get("permille_of_cycle").and_then(Json::as_f64) {
                // Both the committed number and a fresh measurement must
                // clear the bar.
                out.push(
                    SUITE,
                    "disabled_fastpath/permille_of_cycle(baseline)".into(),
                    CheckKind::AbsoluteCeiling,
                    tol,
                    SPAN_DISABLED_PERMILLE_CEILING,
                    b,
                );
                let cycle_micros = disabled_micros
                    .unwrap_or_else(|| best3(|| run_span_overhead(SpanConfig::Disabled) as f64));
                let fresh = span_disabled_permille_of_cycle(cycle_micros);
                out.push(
                    SUITE,
                    "disabled_fastpath/permille_of_cycle(fresh)".into(),
                    CheckKind::AbsoluteCeiling,
                    tol,
                    SPAN_DISABLED_PERMILLE_CEILING,
                    fresh,
                );
            }
            continue;
        }
        let Some(mode) = span_config_from_label(config) else {
            out.missing.push(format!(
                "BENCH_span_overhead.json (unknown config '{}')",
                config
            ));
            continue;
        };
        let ceiling = match mode {
            SpanConfig::Disabled => {
                disabled_micros = Some(best3(|| run_span_overhead(SpanConfig::Disabled) as f64));
                continue;
            }
            SpanConfig::Enabled => SPAN_ENABLED_PERMILLE_CEILING,
            SpanConfig::Perfetto => SPAN_PERFETTO_PERMILLE_CEILING,
        };
        if let Some(b) = row.get("overhead_permille").and_then(Json::as_f64) {
            out.push(
                SUITE,
                format!("{}/overhead_permille(baseline)", config),
                CheckKind::AbsoluteCeiling,
                tol,
                ceiling,
                b,
            );
            let disabled = disabled_micros
                .get_or_insert_with(|| best3(|| run_span_overhead(SpanConfig::Disabled) as f64));
            let fresh_micros = best3(|| run_span_overhead(mode) as f64);
            let fresh_pm = (fresh_micros - *disabled).max(0.0) * 1000.0 / disabled.max(1.0);
            out.push(
                SUITE,
                format!("{}/overhead_permille(fresh)", config),
                CheckKind::AbsoluteCeiling,
                tol,
                ceiling,
                fresh_pm,
            );
        }
    }
}

// ============================================================ span bench

/// Telemetry configuration for the span-overhead workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpanConfig {
    /// Spans never enabled — the baseline; each instrumentation site costs
    /// one untaken `Option` branch.
    Disabled,
    /// Spans recording in memory.
    Enabled,
    /// Spans recording, then rendered to Chrome trace-event JSON and
    /// written to a temp file (the `--trace-perfetto` path).
    Perfetto,
}

fn span_config_from_label(label: &str) -> Option<SpanConfig> {
    match label {
        "disabled" => Some(SpanConfig::Disabled),
        "enabled" => Some(SpanConfig::Enabled),
        "perfetto" => Some(SpanConfig::Perfetto),
        _ => None,
    }
}

/// Ceiling for the disabled fast path: 50‰ (5%) of one recognise–act
/// cycle, the DESIGN.md §5.8 claim.
pub const SPAN_DISABLED_PERMILLE_CEILING: f64 = 50.0;

/// Budget ceiling for *enabled* span recording: 400‰ (40%) overhead on
/// the WAL counting workload. Measured ≈73‰; the headroom absorbs host
/// noise while still catching a structural regression (e.g. accidental
/// lock contention doubling the recording cost).
pub const SPAN_ENABLED_PERMILLE_CEILING: f64 = 400.0;

/// Budget ceiling for recording + Chrome trace-event render + file
/// write: 800‰ (80%). Measured ≈228‰.
pub const SPAN_PERFETTO_PERMILLE_CEILING: f64 = 800.0;

/// Instrumentation sites crossed per engine cycle: cycle + resolve + rhs +
/// wal_commit spans plus a conservative allowance for per-action match
/// spans. Used to convert per-call fast-path nanos into a share of a
/// cycle.
pub const SPAN_SITES_PER_CYCLE: f64 = 8.0;

/// One run of the WAL counting workload (group-commit 8) under the given
/// span configuration; returns wall micros.
pub fn run_span_overhead(config: SpanConfig) -> u128 {
    let wal = std::env::temp_dir().join(format!("sorete-span-bench-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let t0 = std::time::Instant::now();
    let mut ps = {
        use sorete_base::Value;
        let mut ps = sorete_core::ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(WAL_WORKLOAD).unwrap();
        if config != SpanConfig::Disabled {
            ps.enable_spans();
        }
        ps.attach_wal(&wal, sorete_reldb::WalOptions { group_commit: 8 })
            .unwrap();
        ps.make_str("c", &[("n", Value::Int(0))]).unwrap();
        ps.make_str("lim", &[("max", Value::Int(WAL_WORKLOAD_FIRINGS))])
            .unwrap();
        let outcome = ps.run(None);
        assert_eq!(outcome.fired, WAL_WORKLOAD_FIRINGS as u64);
        ps
    };
    if config == SpanConfig::Perfetto {
        let spans = ps.take_spans();
        let json = sorete_base::render_perfetto(&spans);
        let trace = std::env::temp_dir().join(format!(
            "sorete-span-bench-{}.perfetto.json",
            std::process::id()
        ));
        std::fs::write(&trace, json).unwrap();
        let _ = std::fs::remove_file(&trace);
    }
    let micros = t0.elapsed().as_micros();
    let _ = std::fs::remove_file(&wal);
    micros
}

/// Measure the disabled fast path directly: per-call nanos for a
/// `begin()`/`end()` pair on a never-enabled [`sorete_base::Spans`]
/// handle, amortised over 200k iterations.
pub fn span_disabled_fastpath_nanos() -> f64 {
    let spans = sorete_base::Spans::null();
    const ITERS: u32 = 200_000;
    let t0 = std::time::Instant::now();
    for i in 0..ITERS {
        let sp = spans.begin();
        std::hint::black_box(&sp);
        spans.end(
            std::hint::black_box(sp),
            sorete_base::span::category::MATCH,
            0,
            Vec::new,
        );
        std::hint::black_box(i);
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// The disabled fast path as a permille of one recognise–act cycle of the
/// span workload, given that workload's per-run wall micros.
pub fn span_disabled_permille_of_cycle(workload_micros: f64) -> f64 {
    let cycle_nanos = workload_micros * 1000.0 / WAL_WORKLOAD_FIRINGS as f64;
    span_disabled_fastpath_nanos() * SPAN_SITES_PER_CYCLE * 1000.0 / cycle_nanos.max(1.0)
}

// ========================================================== flight bench

/// Flight-recorder configuration for the black-box overhead workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlightConfig {
    /// Recorder off (`--flight-recorder off`) — each record site is one
    /// untaken branch; the baseline.
    Off,
    /// The always-on default: logical events, closed spans, and per-cycle
    /// records stream into the fixed-capacity rings.
    Recording,
}

fn flight_config_from_label(label: &str) -> Option<FlightConfig> {
    match label {
        "off" => Some(FlightConfig::Off),
        "recording" => Some(FlightConfig::Recording),
        _ => None,
    }
}

/// Ceiling for the off fast path: 50‰ (5%) of one recognise–act cycle —
/// same bar the span layer holds (DESIGN.md §5.9).
pub const FLIGHT_OFF_PERMILLE_CEILING: f64 = 50.0;

/// Budget ceiling for the always-on recorder: 300‰ (30%) overhead on the
/// WAL counting workload. Measured low-double-digit permille; the
/// headroom absorbs host noise while catching structural regressions
/// (e.g. the encoder starting to allocate per event).
pub const FLIGHT_RECORDING_PERMILLE_CEILING: f64 = 300.0;

/// Record sites crossed per engine cycle with the recorder on: the cycle
/// record itself plus a conservative allowance for logical trace events
/// (asserts/retracts, CS deltas, the firing).
pub const FLIGHT_SITES_PER_CYCLE: f64 = 8.0;

/// One run of the WAL counting workload (group-commit 8) with the flight
/// recorder on (the default) or forced off; returns wall micros.
pub fn run_flight_overhead(config: FlightConfig) -> u128 {
    let wal = std::env::temp_dir().join(format!("sorete-flight-bench-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let t0 = std::time::Instant::now();
    {
        use sorete_base::Value;
        let mut ps = sorete_core::ProductionSystem::new(MatcherKind::Rete);
        if config == FlightConfig::Off {
            ps.set_flight_recorder(0);
        }
        ps.load_program(WAL_WORKLOAD).unwrap();
        ps.attach_wal(&wal, sorete_reldb::WalOptions { group_commit: 8 })
            .unwrap();
        ps.make_str("c", &[("n", Value::Int(0))]).unwrap();
        ps.make_str("lim", &[("max", Value::Int(WAL_WORKLOAD_FIRINGS))])
            .unwrap();
        let outcome = ps.run(None);
        assert_eq!(outcome.fired, WAL_WORKLOAD_FIRINGS as u64);
    }
    let micros = t0.elapsed().as_micros();
    let _ = std::fs::remove_file(&wal);
    micros
}

/// Measure the off fast path directly: per-call nanos for offering a
/// cycle record to a disabled [`sorete_base::flight::Flight`] handle
/// (one branch, no encode), amortised over 200k iterations.
pub fn flight_off_fastpath_nanos() -> f64 {
    use sorete_base::flight::{CycleRecord, Flight};
    let flight = Flight::off();
    let record = CycleRecord {
        cycle: 1,
        rule: sorete_base::Symbol::new("bench"),
        ok: true,
        firings: 1,
        wm_len: 2,
        cs_len: 1,
        nanos: 1_000,
    };
    const ITERS: u32 = 200_000;
    let t0 = std::time::Instant::now();
    for i in 0..ITERS {
        flight.record_cycle(std::hint::black_box(&record));
        std::hint::black_box(i);
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// The off fast path as a permille of one recognise–act cycle of the
/// flight workload, given that workload's per-run wall micros.
pub fn flight_off_permille_of_cycle(workload_micros: f64) -> f64 {
    let cycle_nanos = workload_micros * 1000.0 / WAL_WORKLOAD_FIRINGS as f64;
    flight_off_fastpath_nanos() * FLIGHT_SITES_PER_CYCLE * 1000.0 / cycle_nanos.max(1.0)
}

/// Flight suite: the always-on recorder's overhead permille (committed
/// and fresh) must stay under the fixed budget ceiling, and the off fast
/// path under the absolute 50‰-of-a-cycle ceiling. Absolute micros are
/// recorded for reference but never gated.
fn gate_flight(base: &Json, tol: f64, out: &mut GateOutcome) {
    const SUITE: &str = "flight";
    let Some(rows) = base.as_arr() else {
        out.missing
            .push("BENCH_flight_recorder.json (expected an array)".into());
        return;
    };
    let mut off_micros = None;
    for row in rows {
        let Some(config) = row.get("config").and_then(Json::as_str) else {
            continue;
        };
        if config == "off_fastpath" {
            if let Some(b) = row.get("permille_of_cycle").and_then(Json::as_f64) {
                out.push(
                    SUITE,
                    "off_fastpath/permille_of_cycle(baseline)".into(),
                    CheckKind::AbsoluteCeiling,
                    tol,
                    FLIGHT_OFF_PERMILLE_CEILING,
                    b,
                );
                let cycle_micros = off_micros
                    .unwrap_or_else(|| best3(|| run_flight_overhead(FlightConfig::Off) as f64));
                let fresh = flight_off_permille_of_cycle(cycle_micros);
                out.push(
                    SUITE,
                    "off_fastpath/permille_of_cycle(fresh)".into(),
                    CheckKind::AbsoluteCeiling,
                    tol,
                    FLIGHT_OFF_PERMILLE_CEILING,
                    fresh,
                );
            }
            continue;
        }
        let Some(mode) = flight_config_from_label(config) else {
            out.missing.push(format!(
                "BENCH_flight_recorder.json (unknown config '{}')",
                config
            ));
            continue;
        };
        if mode == FlightConfig::Off {
            off_micros = Some(best3(|| run_flight_overhead(FlightConfig::Off) as f64));
            continue;
        }
        if let Some(b) = row.get("overhead_permille").and_then(Json::as_f64) {
            out.push(
                SUITE,
                format!("{}/overhead_permille(baseline)", config),
                CheckKind::AbsoluteCeiling,
                tol,
                FLIGHT_RECORDING_PERMILLE_CEILING,
                b,
            );
            let off = off_micros
                .get_or_insert_with(|| best3(|| run_flight_overhead(FlightConfig::Off) as f64));
            let fresh_micros = best3(|| run_flight_overhead(mode) as f64);
            let fresh_pm = (fresh_micros - *off).max(0.0) * 1000.0 / off.max(1.0);
            out.push(
                SUITE,
                format!("{}/overhead_permille(fresh)", config),
                CheckKind::AbsoluteCeiling,
                tol,
                FLIGHT_RECORDING_PERMILLE_CEILING,
                fresh_pm,
            );
        }
    }
}

/// Render the outcome as the gate's report table.
pub fn render_report(outcome: &GateOutcome, tolerance_pct: u32) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "bench gate — tolerance {}% on resource metrics, counters exact\n\n",
        tolerance_pct
    ));
    s.push_str(&format!(
        "{:<12} {:<34} {:>14} {:>14} {:>9} {:>6}\n",
        "suite", "metric", "baseline", "current", "kind", "pass"
    ));
    for c in &outcome.checks {
        let kind = match c.kind {
            CheckKind::Exact => "exact",
            CheckKind::Ceiling => "ceiling",
            CheckKind::Floor => "floor",
            CheckKind::AbsoluteCeiling => "abs-ceil",
        };
        s.push_str(&format!(
            "{:<12} {:<34} {:>14.2} {:>14.2} {:>9} {:>6}\n",
            c.suite,
            c.metric,
            c.baseline,
            c.current,
            kind,
            if c.pass { "ok" } else { "FAIL" }
        ));
    }
    for m in &outcome.missing {
        s.push_str(&format!("missing baseline: {}\n", m));
    }
    let failed = outcome.checks.iter().filter(|c| !c.pass).count();
    s.push_str(&format!(
        "\n{} checks, {} failed, {} baseline file(s) missing — exit {}\n",
        outcome.checks.len(),
        failed,
        outcome.missing.len(),
        outcome.exit_code()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_the_baseline_shapes() {
        let v = json::parse(
            r#"{"workload": "P1 (8 rules, n=120)", "runs": [{"jobs": 1, "s": 1.0}, {"jobs": 2, "s": 1.9}]}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("workload").and_then(Json::as_str),
            Some("P1 (8 rules, n=120)")
        );
        let runs = v.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(runs[1].get("s").and_then(Json::as_f64), Some(1.9));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("[] trailing").is_err());
        assert!(json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn json_decodes_escapes() {
        let v = json::parse(r#""a\n\"b\"A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\"A"));
    }

    #[test]
    fn check_kinds_compare_as_documented() {
        let mut out = GateOutcome::default();
        out.push("t", "exact".into(), CheckKind::Exact, 0.25, 10.0, 10.0);
        out.push(
            "t",
            "exact-drift".into(),
            CheckKind::Exact,
            0.25,
            10.0,
            11.0,
        );
        out.push(
            "t",
            "ceil-ok".into(),
            CheckKind::Ceiling,
            0.25,
            100.0,
            124.0,
        );
        out.push(
            "t",
            "ceil-fail".into(),
            CheckKind::Ceiling,
            0.25,
            100.0,
            126.0,
        );
        out.push("t", "floor-ok".into(), CheckKind::Floor, 0.25, 4.0, 3.1);
        out.push("t", "floor-fail".into(), CheckKind::Floor, 0.25, 4.0, 2.9);
        out.push(
            "t",
            "abs-ok".into(),
            CheckKind::AbsoluteCeiling,
            0.25,
            50.0,
            49.0,
        );
        out.push(
            "t",
            "abs-fail".into(),
            CheckKind::AbsoluteCeiling,
            0.25,
            50.0,
            51.0,
        );
        let passes: Vec<bool> = out.checks.iter().map(|c| c.pass).collect();
        assert_eq!(passes, [true, false, true, false, true, false, true, false]);
        assert_eq!(out.exit_code(), EXIT_REGRESSION);
    }

    #[test]
    fn missing_dir_reports_every_baseline() {
        let dir = std::env::temp_dir().join(format!("sorete-gate-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let outcome = run_gate(&dir, 25);
        assert_eq!(outcome.exit_code(), EXIT_MISSING);
        assert_eq!(outcome.missing.len(), 7);
        assert!(outcome.checks.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_fastpath_is_cheap() {
        // A begin/end pair on a null handle is a couple of branches; even
        // in debug builds it must stay far under a microsecond.
        assert!(span_disabled_fastpath_nanos() < 1000.0);
    }
}
