//! Integration tests for `sorete-bench gate`: the typed exit codes and
//! the injected-regression path.
//!
//! The gate is baseline-driven — it re-runs exactly the rows the JSON
//! describes — so the tests keep the doctored baselines tiny (one small
//! `join_index` row) and the re-run cost negligible.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sorete-bench")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sorete-gate-test-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A truthful one-row join_index baseline, recorded by running the suite
/// in-process so the counters match whatever this build produces.
fn honest_join_row() -> String {
    let r = sorete_bench::run_join_index(sorete_core::MatcherKind::Rete, 50);
    format!(
        "[\n  {{\"n\": 50, \"matcher\": \"rete\", \"join_tests\": {}, \
         \"index_probes\": {}, \"index_skipped_tests\": {}, \"micros\": {}}}\n]\n",
        r.join_tests,
        r.index_probes,
        r.index_skipped_tests,
        // Micros are reference-only (a lone row has no speedup partner,
        // and absolute times are never gated), so the real value is fine.
        r.micros
    )
}

#[test]
fn empty_baseline_dir_exits_missing() {
    let dir = temp_dir("missing");
    let out = Command::new(bin())
        .args(["gate", "--baseline-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_exits_2() {
    for args in [
        &[][..],
        &["gate", "--tolerance"][..],
        &["gate", "--bogus"][..],
    ] {
        let out = Command::new(bin()).args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {:?}", args);
    }
}

#[test]
fn injected_counter_regression_exits_5() {
    let dir = temp_dir("inject");
    // Doctor the baseline: claim half the join tests the build actually
    // performs. Deterministic counters are compared exactly, so the gate
    // must flag this as a regression even at a huge tolerance.
    let r = sorete_bench::run_join_index(sorete_core::MatcherKind::Rete, 50);
    std::fs::write(
        dir.join("BENCH_join_index.json"),
        format!(
            "[\n  {{\"n\": 50, \"matcher\": \"rete\", \"join_tests\": {}, \
             \"index_probes\": {}, \"index_skipped_tests\": {}, \"micros\": {}}}\n]\n",
            r.join_tests / 2,
            r.index_probes,
            r.index_skipped_tests,
            r.micros * 1000
        ),
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            "gate",
            "--tolerance",
            "10000",
            "--baseline-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(5), "stdout: {}", stdout);
    assert!(stdout.contains("join_tests"), "stdout: {}", stdout);
    assert!(stdout.contains("FAIL"), "stdout: {}", stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_timing_regression_exits_5() {
    let dir = temp_dir("timing");
    // Honest counters for both matchers, but a doctored micros pair
    // claiming a 1,000,000x indexing speedup. The fresh speedup ratio
    // (a few x at n=50) cannot reach that floor, so the check must fail.
    let rete = sorete_bench::run_join_index(sorete_core::MatcherKind::Rete, 50);
    let scan = sorete_bench::run_join_index(sorete_core::MatcherKind::ReteScan, 50);
    let row = |matcher: &str, r: &sorete_bench::RunReport, micros: u64| {
        format!(
            "{{\"n\": 50, \"matcher\": \"{}\", \"join_tests\": {}, \
             \"index_probes\": {}, \"index_skipped_tests\": {}, \"micros\": {}}}",
            matcher, r.join_tests, r.index_probes, r.index_skipped_tests, micros
        )
    };
    std::fs::write(
        dir.join("BENCH_join_index.json"),
        format!(
            "[\n  {},\n  {}\n]\n",
            row("rete", &rete, 1),
            row("rete-scan", &scan, 1_000_000)
        ),
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            "gate",
            "--tolerance",
            "25",
            "--baseline-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(5), "stdout: {}", stdout);
    assert!(stdout.contains("index_speedup"), "stdout: {}", stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn honest_baseline_passes_its_suite() {
    let dir = temp_dir("honest");
    std::fs::write(dir.join("BENCH_join_index.json"), honest_join_row()).unwrap();
    let out = Command::new(bin())
        .args([
            "gate",
            "--tolerance",
            "25",
            "--baseline-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Other baseline files are absent, so the run exits 4 (missing), not
    // 5 — proving the join_index suite itself found no regression.
    assert_eq!(out.status.code(), Some(4), "stdout: {}", stdout);
    assert!(!stdout.contains("FAIL"), "stdout: {}", stdout);
    let _ = std::fs::remove_dir_all(&dir);
}
