//! COND-table matching — the DIPS scheme (Sellis et al., as described in
//! paper §8.1) plus the paper's set-oriented retrofit (§8.2).
//!
//! Each WME class gets a `COND-<CLASS>` table. Rows are partial
//! instantiations viewed from one CE: `(RULE-ID, CEN, variable-binding
//! columns…, T1..Tk)` where `T_i` holds the WME tag matched for the rule's
//! i-th positive CE (`NULL` = unmatched). This is the paper's §8.2 form:
//! where tuple-oriented DIPS kept *mark bits*, the set-oriented version
//! stores *WME identifiers*, and where Figure 6 shows the tag list as one
//! attribute, we use the normalized one-column-per-CE layout the paper
//! itself recommends for rules with more than two CEs.
//!
//! When a WME arrives it is compared against its class's COND rows for
//! each CE; every consistent row spawns updated copies — shared variables
//! replaced by the WME's values, the CE's tag slot filled — into the COND
//! tables of **all** the rule's CEs (the RCE propagation of §8.1). A row
//! with every tag slot filled is a complete instantiation; grouping
//! complete rows by the scalar columns (a relational `GROUP BY`) yields
//! the set-oriented instantiations, exactly as Figure 6 does.
//!
//! Non-equality inter-CE tests cannot be folded into the substitution
//! scheme (only constants substitute), so they are verified when complete
//! rows are read back — a conservative filter the paper leaves implicit.

use crate::error::DipsError;
use sorete_base::{FxHashMap, FxHashSet, Symbol, TimeTag, TraceEvent, Tracer, Value, Wme};
use sorete_lang::analyze::{analyze_program, AnalyzedCe, AnalyzedRule};
use sorete_lang::ast::Pred;
use sorete_lang::parser::parse_program;
use sorete_reldb::{
    decode_wme_op, encode_wme_op, Database, Schema, Wal, WalOptions, WalRecord, WalStats, WmeOp,
};
use std::path::Path;
use std::sync::Arc;

/// Matching mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DipsMode {
    /// Original DIPS: tuple-oriented instantiations, fired independently.
    Tuple,
    /// The paper's retrofit: instantiations grouped into SOIs.
    Set,
}

/// One complete (tuple) instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DipsInst {
    /// Rule index.
    pub rule: usize,
    /// Matched WME per positive CE.
    pub tags: Vec<TimeTag>,
}

/// One set-oriented instantiation (a group of complete rows).
#[derive(Clone, Debug)]
pub struct DipsSoi {
    /// Rule index.
    pub rule: usize,
    /// Group key (scalar CE tags + scalar PV values).
    pub key: Vec<Value>,
    /// Member rows.
    pub rows: Vec<Vec<TimeTag>>,
}

#[derive(Clone, Debug)]
struct CondMeta {
    table: Symbol,
    vars: Vec<Symbol>,
}

/// What a DIPS WAL recovery replayed (mirrors the core engine's
/// `WalReplayReport`, minus the refraction bookkeeping DIPS has no
/// analogue for).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DipsReplayReport {
    /// Committed WM operations re-applied.
    pub replayed_ops: usize,
    /// Parallel-cycle boundary markers seen.
    pub replayed_cycles: usize,
    /// API-level commit markers seen.
    pub replayed_commits: usize,
    /// Records after the last commit point, discarded.
    pub discarded_records: u64,
    /// Bytes of torn/short tail truncated from the log.
    pub truncated_bytes: u64,
}

/// The attached log plus the op buffer for the cycle in flight.
struct DipsWal {
    wal: Wal,
    pending: Vec<WmeOp>,
    in_cycle: bool,
    /// Set when in-memory state was mutated but the log refused the
    /// matching record: the divergence must not widen, so every further
    /// WM mutation errors until the engine is rebuilt from the log.
    poisoned: bool,
}

/// The DIPS engine: rules compiled to COND tables over a relational
/// database.
pub struct DipsEngine {
    /// The backing database (COND tables live here; the firing layer adds
    /// a WM table).
    pub db: Database,
    rules: Vec<Arc<AnalyzedRule>>,
    wm: FxHashMap<TimeTag, Wme>,
    next_tag: u64,
    mode: DipsMode,
    classes: FxHashMap<Symbol, CondMeta>,
    /// Tag column count (max positive CEs over all rules).
    width: usize,
    insert_order: Vec<TimeTag>,
    tracer: Tracer,
    spans: sorete_base::Spans,
    metrics: sorete_base::Metrics,
    wal: Option<Box<DipsWal>>,
    /// Parallel cycles committed (stamps the WAL cycle markers).
    cycles: u64,
    /// Worker pool for the parallel firing layer; created lazily (from
    /// `SORETE_JOBS`, default 1) or explicitly via [`Self::set_jobs`].
    pool: Option<std::sync::Arc<sorete_base::WorkerPool>>,
}

impl DipsEngine {
    /// Compile a rule program into COND tables.
    pub fn new(mode: DipsMode, program: &str) -> Result<DipsEngine, DipsError> {
        let prog = parse_program(program).map_err(|e| DipsError::Load(e.to_string()))?;
        let rules: Vec<Arc<AnalyzedRule>> = analyze_program(&prog)
            .map_err(|e| DipsError::Load(e.to_string()))?
            .into_iter()
            .map(Arc::new)
            .collect();
        for r in &rules {
            if r.ces.iter().any(|c| c.negated) {
                return Err(DipsError::Load(format!(
                    "rule `{}`: negated CEs are not supported by the DIPS substrate",
                    r.name
                )));
            }
        }
        let width = rules.iter().map(|r| r.num_pos).max().unwrap_or(0);

        // Per class: the union of variable names across rules referencing it
        // (any equality occurrence of the variable records a binding).
        let mut class_vars: FxHashMap<Symbol, Vec<Symbol>> = FxHashMap::default();
        for r in &rules {
            for ce in &r.ces {
                let vars = class_vars.entry(ce.class).or_default();
                for (_, v) in eq_vars(r, ce) {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
        }

        let mut db = Database::new();
        let mut classes = FxHashMap::default();
        for (class, vars) in &class_vars {
            let table = Symbol::new(&format!("COND-{}", class.as_str().to_uppercase()));
            let mut cols: Vec<String> = vec!["RULE-ID".into(), "CEN".into()];
            cols.extend(vars.iter().map(|v| format!("VAR-{}", v)));
            cols.extend((1..=width).map(|i| format!("T{}", i)));
            let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
            db.create_table(Schema::new(table.as_str(), &col_refs))
                .map_err(|e| DipsError::Db(e.to_string()))?;
            classes.insert(
                *class,
                CondMeta {
                    table,
                    vars: vars.clone(),
                },
            );
        }

        let mut engine = DipsEngine {
            db,
            rules,
            wm: FxHashMap::default(),
            next_tag: 0,
            mode,
            classes,
            width,
            insert_order: Vec::new(),
            tracer: Tracer::default(),
            spans: sorete_base::Spans::null(),
            metrics: sorete_base::Metrics::null(),
            wal: None,
            cycles: 0,
            pool: None,
        };
        engine.seed()?;
        Ok(engine)
    }

    /// The matching mode.
    pub fn mode(&self) -> DipsMode {
        self.mode
    }

    /// Install a trace sink set. DIPS emits the WM-level and firing-level
    /// events of the shared stream (assert/retract, fire, rollback); the
    /// node-level events are Rete/TREAT concepts it has no analogue for.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (used by the firing layer).
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Install a span recorder: [`crate::parallel_cycle`] wraps each cycle
    /// in a logical `parallel_cycle` span and each transaction build in a
    /// physical `firing_build` span on its worker lane.
    pub fn set_spans(&mut self, spans: sorete_base::Spans) {
        self.spans = spans;
    }

    /// The installed span recorder (used by the firing layer).
    pub(crate) fn spans(&self) -> &sorete_base::Spans {
        &self.spans
    }

    /// Turn on the metrics registry. [`crate::parallel_cycle`] then keeps
    /// `sorete_dips_*` cumulative counters (attempted / committed /
    /// aborted / tag-conflict transactions) current. Idempotent.
    pub fn enable_metrics(&mut self) {
        if !self.metrics.enabled() {
            self.metrics = sorete_base::Metrics::new_registry();
        }
    }

    /// A handle on the engine's registry ([`sorete_base::Metrics::null`]
    /// when metrics are disabled).
    pub fn metrics(&self) -> sorete_base::Metrics {
        self.metrics.clone()
    }

    /// Fire on `jobs` worker lanes (1 = build transactions inline). The
    /// commit order — and therefore every firing outcome — is independent
    /// of this setting; only the transaction *build* phase fans out.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.pool = Some(std::sync::Arc::new(sorete_base::WorkerPool::new(jobs)));
    }

    /// Worker lanes the firing layer will use.
    pub fn jobs(&self) -> usize {
        self.pool
            .as_ref()
            .map(|p| p.jobs())
            .unwrap_or_else(|| sorete_base::resolve_jobs(None))
    }

    /// The firing-layer pool, created on first use ([`Self::jobs`] lanes).
    pub(crate) fn ensure_pool(&mut self) -> std::sync::Arc<sorete_base::WorkerPool> {
        if self.pool.is_none() {
            self.pool = Some(std::sync::Arc::new(sorete_base::WorkerPool::new(
                sorete_base::resolve_jobs(None),
            )));
        }
        std::sync::Arc::clone(self.pool.as_ref().unwrap())
    }

    /// Loaded rules.
    pub fn rules(&self) -> &[Arc<AnalyzedRule>] {
        &self.rules
    }

    /// Read a working-memory element.
    pub fn wme(&self, tag: TimeTag) -> Option<&Wme> {
        self.wm.get(&tag)
    }

    /// Working-memory size.
    pub fn wm_len(&self) -> usize {
        self.wm.len()
    }

    /// All WMEs, sorted by time tag.
    pub fn wmes(&self) -> Vec<&Wme> {
        let mut v: Vec<&Wme> = self.wm.values().collect();
        v.sort_by_key(|w| w.tag);
        v
    }

    /// Byte-level memory accounting for the COND-table backing store
    /// (delegates to [`sorete_reldb::Database::memory_report`]).
    pub fn memory_report(&self) -> sorete_base::MemoryReport {
        self.db.memory_report()
    }

    /// Insert the initial (all-NULL) CE template rows.
    fn seed(&mut self) -> Result<(), DipsError> {
        for (ri, rule) in self.rules.clone().iter().enumerate() {
            for ce in &rule.ces {
                let meta = self.classes[&ce.class].clone();
                let mut row: Vec<Value> = vec![
                    Value::Int(ri as i64),
                    Value::Int(ce.pos_idx.unwrap() as i64 + 1),
                ];
                row.extend(meta.vars.iter().map(|_| Value::Nil));
                row.extend((0..self.width).map(|_| Value::Nil));
                self.db
                    .table_mut(meta.table)
                    .map_err(|e| DipsError::Db(e.to_string()))?
                    .insert(row)
                    .map_err(|e| DipsError::Db(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// Assert a WME and propagate through the COND tables.
    pub fn insert(&mut self, class: &str, slots: &[(&str, Value)]) -> Result<TimeTag, DipsError> {
        self.wal_guard()?;
        self.next_tag += 1;
        let tag = TimeTag::new(self.next_tag);
        let wme = Wme::new(
            tag,
            Symbol::new(class),
            slots.iter().map(|(a, v)| (Symbol::new(a), *v)).collect(),
        );
        self.wm.insert(tag, wme.clone());
        self.insert_order.push(tag);
        self.tracer.emit(|| TraceEvent::WmeAssert {
            cycle: 0,
            tag,
            wme: wme.to_string(),
        });
        self.propagate(&wme)?;
        self.wal_log(WmeOp::Assert(wme))?;
        Ok(tag)
    }

    /// Attach a write-ahead log, first re-applying whatever committed
    /// state it holds (the COND tables are re-derived afterwards). Must
    /// run before any WMEs are inserted: recovered asserts carry their
    /// original time tags.
    pub fn attach_wal(
        &mut self,
        path: &Path,
        opts: WalOptions,
    ) -> Result<DipsReplayReport, DipsError> {
        if self.wal.is_some() {
            return Err(DipsError::Db("a WAL is already attached".into()));
        }
        let (wal, records) = Wal::open(path, opts).map_err(|e| DipsError::Db(e.to_string()))?;
        if wal.generation() != 0 {
            // DIPS never rotates its log; a nonzero generation means the
            // file belongs to a checkpointed core-engine lineage whose
            // pre-rotation records are gone — replaying the remainder
            // alone would be silent corruption.
            return Err(DipsError::Db(format!(
                "WAL {:?} has generation {} (rotated by a checkpoint); DIPS requires generation 0",
                path,
                wal.generation()
            )));
        }
        let mut report = DipsReplayReport::default();
        let mut pending: Vec<WmeOp> = Vec::new();
        for rec in records {
            match rec {
                WalRecord::Op(bytes) => {
                    pending.push(decode_wme_op(&bytes).map_err(|e| DipsError::Db(e.to_string()))?);
                }
                WalRecord::Commit => {
                    report.replayed_ops += pending.len();
                    for op in pending.drain(..) {
                        self.replay_op(op)?;
                    }
                    report.replayed_commits += 1;
                }
                WalRecord::Cycle(_) => {
                    report.replayed_ops += pending.len();
                    for op in pending.drain(..) {
                        self.replay_op(op)?;
                    }
                    report.replayed_cycles += 1;
                    self.cycles += 1;
                }
            }
        }
        let st = wal.stats();
        report.discarded_records = st.discarded_records;
        report.truncated_bytes = st.truncated_bytes;
        if report.replayed_ops > 0 {
            self.rebuild()?;
        }
        self.wal = Some(Box::new(DipsWal {
            wal,
            pending: Vec::new(),
            in_cycle: false,
            poisoned: false,
        }));
        Ok(report)
    }

    /// Is a WAL attached?
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Counters of the attached WAL, if any.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|d| *d.wal.stats())
    }

    /// Arm a storage fault on the attached WAL (testing). Returns false
    /// when no WAL is attached.
    pub fn inject_wal_fault(&mut self, plan: sorete_reldb::IoFaultPlan) -> bool {
        match &mut self.wal {
            Some(d) => {
                d.wal.inject_fault(plan);
                true
            }
            None => false,
        }
    }

    /// Re-apply one committed WM op during recovery. COND tables are NOT
    /// maintained here — the caller re-derives them once via `rebuild`.
    fn replay_op(&mut self, op: WmeOp) -> Result<(), DipsError> {
        match op {
            WmeOp::Assert(wme) => {
                if self.wm.contains_key(&wme.tag) {
                    return Err(DipsError::Db(format!(
                        "replayed assert collides with live time tag {}",
                        wme.tag.raw()
                    )));
                }
                self.next_tag = self.next_tag.max(wme.tag.raw());
                self.insert_order.push(wme.tag);
                self.wm.insert(wme.tag, wme);
            }
            WmeOp::Retract(tag) => {
                self.wm.remove(&tag);
                self.insert_order.retain(|&t| t != tag);
            }
            WmeOp::Update(tag, slots) => {
                if let Some(w) = self.wm.get(&tag) {
                    let new = w.modified(tag, &slots);
                    self.wm.insert(tag, new);
                }
            }
        }
        Ok(())
    }

    /// Error while the attached WAL is poisoned: in-memory state already
    /// ran ahead of the log once, and further mutations would widen the
    /// divergence. Reopen (re-attach) to recover to the last commit point.
    fn wal_guard(&self) -> Result<(), DipsError> {
        match &self.wal {
            Some(d) if d.poisoned => Err(DipsError::Db(
                "DIPS WAL poisoned: in-memory state diverged from the log; \
                 rebuild from the log to recover"
                    .into(),
            )),
            _ => Ok(()),
        }
    }

    /// Log one WM effect. Outside a parallel cycle every op is its own
    /// transaction (op + commit marker); inside, ops buffer until the
    /// cycle's boundary marker commits them as one unit. The caller has
    /// already applied the effect in memory, so a refusal from the log
    /// poisons the handle.
    fn wal_log(&mut self, op: WmeOp) -> Result<(), DipsError> {
        let Some(d) = &mut self.wal else {
            return Ok(());
        };
        if d.in_cycle {
            d.pending.push(op);
            return Ok(());
        }
        let r = d
            .wal
            .append_op(&encode_wme_op(&op))
            .and_then(|()| d.wal.append_commit());
        if r.is_err() {
            d.poisoned = true;
        }
        r.map_err(|e| DipsError::Db(e.to_string()))
    }

    /// Start buffering WM effects for a parallel cycle. Errors if the
    /// log is already poisoned (the cycle would mutate WM it can't log).
    pub(crate) fn wal_begin_cycle(&mut self) -> Result<(), DipsError> {
        self.wal_guard()?;
        if let Some(d) = &mut self.wal {
            d.in_cycle = true;
            d.pending.clear();
        }
        Ok(())
    }

    /// Commit the buffered cycle: flush its ops and a cycle-boundary
    /// marker (the commit point). `summary` rides in the marker payload.
    pub(crate) fn wal_commit_cycle(&mut self, summary: &str) -> Result<(), DipsError> {
        self.cycles += 1;
        let cycle = self.cycles;
        let Some(d) = &mut self.wal else {
            return Ok(());
        };
        d.in_cycle = false;
        let flush = |d: &mut DipsWal| -> Result<(), sorete_reldb::DbError> {
            for op in &d.pending {
                d.wal.append_op(&encode_wme_op(op))?;
            }
            d.wal
                .append_cycle(format!("dips\t{}\t{}", cycle, summary).as_bytes())
        };
        let res = flush(d);
        d.pending.clear();
        if res.is_err() {
            // The cycle's effects are already applied in memory (and
            // mirrored into the WM table) but not durably logged: the
            // half-appended batch was truncated away, so recovery lands
            // before this cycle while the live engine sits after it.
            // Poison so the divergence cannot widen.
            d.poisoned = true;
        }
        res.map_err(|e| DipsError::Db(e.to_string()))
    }

    /// Drop the buffered cycle (the cycle failed before committing).
    pub(crate) fn wal_abort_cycle(&mut self) {
        if let Some(d) = &mut self.wal {
            d.in_cycle = false;
            d.pending.clear();
        }
    }

    /// Propagate one WME arrival (the §8.1 update step).
    fn propagate(&mut self, wme: &Wme) -> Result<(), DipsError> {
        if !self.classes.contains_key(&wme.class) {
            return Ok(()); // class not referenced by any rule
        }
        for (ri, rule) in self.rules.clone().iter().enumerate() {
            for ce in rule.ces.clone().iter() {
                if ce.class != wme.class {
                    continue;
                }
                if !ce.const_tests.iter().all(|t| t.matches(&wme.get(t.attr))) {
                    continue;
                }
                if !ce
                    .intra_tests
                    .iter()
                    .all(|t| t.pred.apply(&wme.get(t.attr), &wme.get(t.other_attr)))
                {
                    continue;
                }
                self.match_ce(ri, rule, ce, wme)?;
            }
        }
        Ok(())
    }

    /// Match `wme` against the candidate rows of one CE and spawn updated
    /// copies (the RCE propagation).
    fn match_ce(
        &mut self,
        ri: usize,
        rule: &Arc<AnalyzedRule>,
        ce: &AnalyzedCe,
        wme: &Wme,
    ) -> Result<(), DipsError> {
        let cen = ce.pos_idx.unwrap();
        let meta = self.classes[&ce.class].clone();
        let var_base = 2;
        let tag_base = var_base + meta.vars.len();
        let bindings = eq_vars(rule, ce);

        // Collect candidates first (we insert while scanning otherwise).
        let table = self
            .db
            .table(meta.table)
            .map_err(|e| DipsError::Db(e.to_string()))?;
        let mut candidates: Vec<Vec<Value>> = Vec::new();
        'rows: for (_, row) in table.iter() {
            if row[0] != Value::Int(ri as i64) || row[1] != Value::Int(cen as i64 + 1) {
                continue;
            }
            if !row[tag_base + cen].is_nil() {
                continue; // this CE slot already filled in that partial
            }
            // Every equality occurrence must agree with recorded bindings.
            for (attr, var) in &bindings {
                let ci = var_base + meta.vars.iter().position(|x| x == var).unwrap();
                let recorded = row[ci];
                if !recorded.is_nil() && recorded != wme.get(*attr) {
                    continue 'rows;
                }
            }
            // Ordered (non-eq) joins against recorded bindings.
            for vj in &ce.var_joins {
                if vj.pred == Pred::Eq {
                    continue; // handled above
                }
                if let Some(var) = source_var(rule, vj.other_pos_ce, vj.other_attr) {
                    if let Some(pos) = meta.vars.iter().position(|x| *x == var) {
                        let recorded = row[var_base + pos];
                        if !recorded.is_nil() && !vj.pred.apply(&wme.get(vj.attr), &recorded) {
                            continue 'rows;
                        }
                    }
                }
            }
            candidates.push(row.to_vec());
        }

        // Spawn: one updated copy per CE of the rule, into that CE's class
        // table, carrying that CE's CEN — "new copies of these referenced
        // tuples … with the constants found in the inserted WME".
        for cand in candidates {
            // Extend the binding map with this WME's values.
            let mut bound: FxHashMap<Symbol, Value> = FxHashMap::default();
            for (i, v) in meta.vars.iter().enumerate() {
                if !cand[var_base + i].is_nil() {
                    bound.insert(*v, cand[var_base + i]);
                }
            }
            for (attr, var) in &bindings {
                bound.entry(*var).or_insert_with(|| wme.get(*attr));
            }
            let mut tags: Vec<Value> = cand[tag_base..].to_vec();
            tags[cen] = Value::Tag(wme.tag);

            for other in &rule.ces {
                let m = self.classes[&other.class].clone();
                let mut row: Vec<Value> = vec![
                    Value::Int(ri as i64),
                    Value::Int(other.pos_idx.unwrap() as i64 + 1),
                ];
                for v in &m.vars {
                    row.push(bound.get(v).copied().unwrap_or(Value::Nil));
                }
                row.extend(tags.iter().copied());
                self.db
                    .table_mut(m.table)
                    .map_err(|e| DipsError::Db(e.to_string()))?
                    .insert(row)
                    .map_err(|e| DipsError::Db(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// Retract a WME: delete every COND row referencing it.
    pub fn remove(&mut self, tag: TimeTag) -> Result<(), DipsError> {
        self.wal_guard()?;
        if self.wm.remove(&tag).is_none() {
            return Err(DipsError::UnknownTag(tag.raw()));
        }
        self.insert_order.retain(|&t| t != tag);
        self.tracer
            .emit(|| TraceEvent::WmeRetract { cycle: 0, tag });
        let metas: Vec<CondMeta> = self.classes.values().cloned().collect();
        for meta in metas {
            let table = self
                .db
                .table_mut(meta.table)
                .map_err(|e| DipsError::Db(e.to_string()))?;
            let tag_base = 2 + meta.vars.len();
            let doomed: Vec<sorete_reldb::RowId> = table
                .iter()
                .filter(|(_, r)| r[tag_base..].contains(&Value::Tag(tag)))
                .map(|(id, _)| id)
                .collect();
            for id in doomed {
                table.delete(id).map_err(|e| DipsError::Db(e.to_string()))?;
            }
        }
        self.wal_log(WmeOp::Retract(tag))?;
        Ok(())
    }

    /// All complete (tuple) instantiations, deduplicated and re-verified
    /// against the full join tests.
    pub fn instantiations(&self) -> Vec<DipsInst> {
        let mut seen: FxHashSet<(usize, Vec<TimeTag>)> = FxHashSet::default();
        let mut out = Vec::new();
        for meta in self.classes.values() {
            let Ok(table) = self.db.table(meta.table) else {
                continue;
            };
            let tag_base = 2 + meta.vars.len();
            for (_, row) in table.iter() {
                let Value::Int(ri) = row[0] else { continue };
                let ri = ri as usize;
                let k = self.rules[ri].num_pos;
                let tags: Option<Vec<TimeTag>> = row[tag_base..tag_base + k]
                    .iter()
                    .map(|v| v.as_tag())
                    .collect();
                let Some(tags) = tags else { continue };
                if !seen.insert((ri, tags.clone())) {
                    continue;
                }
                if self.verify(ri, &tags) {
                    out.push(DipsInst { rule: ri, tags });
                }
            }
        }
        out.sort_by(|a, b| (a.rule, &a.tags).cmp(&(b.rule, &b.tags)));
        out
    }

    /// Re-evaluate every inter-CE join test of a complete row.
    fn verify(&self, ri: usize, tags: &[TimeTag]) -> bool {
        let rule = &self.rules[ri];
        for ce in &rule.ces {
            let Some(pos) = ce.pos_idx else { continue };
            let Some(w) = self.wm.get(&tags[pos]) else {
                return false;
            };
            for vj in &ce.var_joins {
                let Some(other) = self.wm.get(&tags[vj.other_pos_ce]) else {
                    return false;
                };
                if !vj.pred.apply(&w.get(vj.attr), &other.get(vj.other_attr)) {
                    return false;
                }
            }
        }
        true
    }

    /// Set-oriented instantiations: complete rows grouped by the scalar CE
    /// tags and scalar PV values — the Figure 6 retrieval.
    pub fn sois(&self) -> Vec<DipsSoi> {
        let mut out = Vec::new();
        for (ri, rule) in self.rules.iter().enumerate() {
            let insts: Vec<DipsInst> = self
                .instantiations()
                .into_iter()
                .filter(|i| i.rule == ri)
                .collect();
            if insts.is_empty() {
                continue;
            }
            let mut groups: FxHashMap<Vec<Value>, Vec<Vec<TimeTag>>> = FxHashMap::default();
            for inst in insts {
                let mut key: Vec<Value> = rule
                    .scalar_ces
                    .iter()
                    .map(|&pos| Value::Tag(inst.tags[pos]))
                    .collect();
                for pv in &rule.scalar_pvs {
                    key.push(self.wm[&inst.tags[pv.pos_ce]].get(pv.attr));
                }
                groups.entry(key).or_default().push(inst.tags);
            }
            let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
            keys.sort();
            for key in keys {
                let mut rows = groups.remove(&key).unwrap();
                rows.sort();
                out.push(DipsSoi {
                    rule: ri,
                    key,
                    rows,
                });
            }
        }
        out
    }

    /// Render a class's COND table (for the Figure 6 demo).
    pub fn render_cond(&self, class: &str) -> Result<String, DipsError> {
        let meta = self
            .classes
            .get(&Symbol::new(class))
            .ok_or_else(|| DipsError::Load(format!("class `{}` has no COND table", class)))?;
        let rel = self
            .db
            .sql(&format!("SELECT * FROM {}", meta.table))
            .map_err(|e| DipsError::Db(e.to_string()))?;
        Ok(rel.render())
    }

    /// The COND table name for a class.
    pub fn cond_table_name(&self, class: &str) -> Option<&str> {
        self.classes
            .get(&Symbol::new(class))
            .map(|m| m.table.as_str())
    }

    /// Rebuild all COND tables from scratch (after a firing cycle mutates
    /// working memory through transactions).
    pub fn rebuild(&mut self) -> Result<(), DipsError> {
        let metas: Vec<CondMeta> = self.classes.values().cloned().collect();
        for meta in metas {
            let table = self
                .db
                .table_mut(meta.table)
                .map_err(|e| DipsError::Db(e.to_string()))?;
            let all: Vec<sorete_reldb::RowId> = table.iter().map(|(id, _)| id).collect();
            for id in all {
                table.delete(id).map_err(|e| DipsError::Db(e.to_string()))?;
            }
        }
        self.seed()?;
        let order = self.insert_order.clone();
        for tag in order {
            if let Some(wme) = self.wm.get(&tag).cloned() {
                self.propagate(&wme)?;
            }
        }
        Ok(())
    }

    /// Direct WM removal used by the firing layer.
    pub(crate) fn wm_remove(&mut self, tag: TimeTag) {
        self.wm.remove(&tag);
        self.insert_order.retain(|&t| t != tag);
        // Inside a cycle this only buffers; the boundary marker commits.
        let _ = self.wal_log(WmeOp::Retract(tag));
    }

    /// Direct in-place WM update used by the firing layer (DIPS updates
    /// tuples; tags are stable identifiers there).
    pub(crate) fn wm_update(&mut self, tag: TimeTag, updates: &[(Symbol, Value)]) {
        if let Some(w) = self.wm.get(&tag) {
            let new = w.modified(tag, updates);
            self.wm.insert(tag, new);
            let _ = self.wal_log(WmeOp::Update(tag, updates.to_vec()));
        }
    }
}

/// Every equality occurrence `(attr, var)` of a CE — bindings plus Eq
/// joins: all of them both constrain candidates and substitute values.
fn eq_vars(rule: &AnalyzedRule, ce: &AnalyzedCe) -> Vec<(Symbol, Symbol)> {
    let mut out: Vec<(Symbol, Symbol)> = ce.binds.clone();
    for vj in &ce.var_joins {
        if vj.pred == Pred::Eq {
            if let Some(var) = source_var(rule, vj.other_pos_ce, vj.other_attr) {
                out.push((vj.attr, var));
            }
        }
    }
    out
}

/// The variable whose binding site is `(pos_ce, attr)`.
fn source_var(rule: &AnalyzedRule, pos_ce: usize, attr: Symbol) -> Option<Symbol> {
    rule.var_sources
        .iter()
        .find(|(_, s)| s.pos_ce == pos_ce && s.attr == attr)
        .map(|(v, _)| *v)
}
