//! Concurrent firing over the database — the paper's §8 argument as an
//! executable experiment.
//!
//! Original DIPS "attempts to execute all satisfied instantiations
//! concurrently, relying on transaction semantics to block inconsistent
//! updates" — and suffers, because "instantiations frequently conflict. A
//! special case … is where multiple instantiations of a single rule
//! invalidate each other (e.g. try to remove the same WME)".
//!
//! [`parallel_cycle`] reproduces that execution model: every satisfied
//! instantiation (tuple mode) or SOI (set mode) becomes one optimistic
//! transaction over a relational `WM` table. All transactions are *built*
//! concurrently from the same snapshot on the engine's worker pool
//! (`--jobs` / `SORETE_JOBS` lanes), each reporting its read and write
//! tag sets; they then commit in canonical snapshot order — a firing
//! aborts iff its tag sets intersect an earlier committed firing's write
//! set (first committer wins), so outcomes never depend on lane timing.
//! Tuple-oriented runs show the conflict storm; set-oriented runs
//! collapse each group into a single transaction that cannot conflict
//! with itself. The cycle's committed WM effects reach the WAL as one
//! buffered unit under a single boundary marker (one fsync window), so
//! crash recovery replays the cycle atomically and in canonical order.

use crate::cond::{DipsEngine, DipsInst, DipsMode, DipsSoi};
use crate::error::DipsError;
use sorete_base::span::category as span_cat;
use sorete_base::{FxHashMap, FxHashSet, Symbol, TimeTag, TraceEvent, Value, Wme};
use sorete_lang::analyze::{AggTarget, AnalyzedRule};
use sorete_lang::ast::{Action, AggOp, Expr, RhsTarget};
use sorete_lang::eval::{eval_truthy, FnEnv};
use sorete_reldb::{RowId, Schema, Transaction};

/// Outcome of one parallel firing cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Transactions attempted (instantiations or SOIs).
    pub attempted: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted on conflict.
    pub aborted: usize,
    /// Write operations carried by committed transactions.
    pub writes_committed: usize,
    /// Aborts decided by the explicit read/write tag-set rule (the firing's
    /// tag sets intersected an earlier committed firing's write set) before
    /// its transaction ever reached the optimistic validator. Counted
    /// inside `aborted` as well.
    pub tag_conflicts: usize,
}

const WM_TABLE: &str = "WM";

/// Run one parallel firing cycle. Returns the report; working memory and
/// the COND tables reflect the committed transactions afterwards.
pub fn parallel_cycle(engine: &mut DipsEngine) -> Result<CycleReport, DipsError> {
    // WM effects of this cycle buffer in the WAL layer until the cycle
    // commits as one unit under a boundary marker. Refuses to start when
    // a previous cycle left memory ahead of the log (poisoned WAL).
    engine.wal_begin_cycle()?;
    let spans = engine.spans().clone();
    let sp = spans.begin_scope();
    let report = parallel_cycle_inner(engine);
    spans.end(sp, span_cat::PARALLEL_CYCLE, 0, || match &report {
        Ok(r) => vec![
            ("attempted", r.attempted as u64),
            ("committed", r.committed as u64),
            ("aborted", r.aborted as u64),
        ],
        Err(_) => Vec::new(),
    });
    if let Ok(r) = &report {
        engine.metrics().with(|reg| {
            let pairs: [(&'static str, &'static str, usize); 4] = [
                (
                    "sorete_dips_attempted_total",
                    "DIPS transactions attempted (instantiations or SOIs)",
                    r.attempted,
                ),
                (
                    "sorete_dips_committed_total",
                    "DIPS transactions committed",
                    r.committed,
                ),
                (
                    "sorete_dips_aborted_total",
                    "DIPS transactions aborted on conflict",
                    r.aborted,
                ),
                (
                    "sorete_dips_tag_conflicts_total",
                    "DIPS aborts decided by the read/write tag-set rule",
                    r.tag_conflicts,
                ),
            ];
            for (family, help, v) in pairs {
                let id = reg.counter(family, help);
                reg.add(id, v as u64);
            }
        });
    }
    match &report {
        Ok(r) => engine.wal_commit_cycle(&format!(
            "attempted={} committed={} aborted={} writes={}",
            r.attempted, r.committed, r.aborted, r.writes_committed
        ))?,
        Err(_) => engine.wal_abort_cycle(),
    }
    report
}

fn parallel_cycle_inner(engine: &mut DipsEngine) -> Result<CycleReport, DipsError> {
    // 1. Snapshot the satisfied work under the current mode.
    let work: Vec<(usize, Vec<Vec<TimeTag>>)> = match engine.mode() {
        DipsMode::Tuple => engine
            .instantiations()
            .into_iter()
            .filter(|i| passes_test(engine, i.rule, std::slice::from_ref(&i.tags)))
            .map(|DipsInst { rule, tags }| (rule, vec![tags]))
            .collect(),
        DipsMode::Set => engine
            .sois()
            .into_iter()
            .filter(|s| passes_test(engine, s.rule, &s.rows))
            .map(|DipsSoi { rule, rows, .. }| (rule, rows))
            .collect(),
    };

    // 2. Materialize working memory as a relational table.
    let attrs = rhs_attrs(engine);
    let row_ids = build_wm_table(engine, &attrs)?;

    // 3. One optimistic transaction per unit of work. All transactions are
    //    *built* against the same initial snapshot — genuinely in parallel
    //    on the persistent worker pool (`--jobs` / `SORETE_JOBS` lanes),
    //    as DIPS intends. Each builder also reports its read and write tag
    //    sets, which decide conflicts in the commit phase below.
    type NewWmes = Vec<(Symbol, Vec<(Symbol, Value)>)>;
    type Built = (Transaction, NewWmes, Vec<TimeTag>, Vec<TimeTag>);
    let mut report = CycleReport {
        attempted: work.len(),
        ..Default::default()
    };
    let pool = engine.ensure_pool();
    let slots: Vec<std::sync::Mutex<Option<Result<Built, DipsError>>>> =
        work.iter().map(|_| std::sync::Mutex::new(None)).collect();
    {
        let engine_ref: &DipsEngine = engine;
        let row_ids = &row_ids;
        let attrs = &attrs[..];
        let work = &work[..];
        let spans = engine_ref.spans();
        pool.for_each_index_lane(work.len(), &|i, lane| {
            let sp_build = spans.begin();
            // Panic isolation per unit of work: a panicking builder becomes
            // one build error, which the rollback path below handles like
            // any other build failure — the whole cycle is abandoned and
            // the engine state re-derived, never torn down.
            let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let (ri, rows) = &work[i];
                let rule = engine_ref.rules()[*ri].clone();
                let mut tx = engine_ref.db.begin();
                let mut tx_new = Vec::new();
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                build_tx(
                    engine_ref,
                    &rule,
                    rows,
                    row_ids,
                    attrs,
                    &mut tx,
                    &mut tx_new,
                    &mut reads,
                    &mut writes,
                )?;
                Ok((tx, tx_new, reads, writes))
            }))
            .unwrap_or_else(|payload| {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "opaque panic payload".to_string()
                };
                Err(DipsError::Rhs(format!("builder panicked: {}", msg)))
            });
            *slots[i].lock().unwrap() = Some(built);
            spans.end(sp_build, span_cat::FIRING_BUILD, lane as u32, || {
                vec![("unit", i as u64)]
            });
        });
    }
    // Collect builder failures *before* committing anything: a cycle either
    // commits transactions or — on any build error — leaves the engine
    // exactly as it was (the scratch WM table is dropped and the COND
    // tables re-derived, mirroring the core engine's firing rollback).
    let mut pending: Vec<Built> = Vec::with_capacity(slots.len());
    let mut build_err: Option<DipsError> = None;
    for slot in slots {
        match slot.into_inner().unwrap().expect("builder ran") {
            Ok(p) => pending.push(p),
            Err(e) => {
                build_err = Some(e);
                break;
            }
        }
    }
    if let Some(e) = build_err {
        drop_wm_table(engine)?;
        engine.rebuild()?;
        return Err(e);
    }
    // Commit phase, in canonical work order (the deterministic snapshot
    // order from step 1) — firing outcomes never depend on lane timing.
    // Conflicts are decided by explicit tag sets: a firing aborts iff its
    // read/write tags intersect the write set of an earlier *committed*
    // firing (first committer wins, the rest serialize to a later cycle).
    // Writes target matched rows only, so this rule exactly predicts the
    // optimistic validator, which stays on as a backstop.
    let mut new_wmes: Vec<(Symbol, Vec<(Symbol, Value)>)> = Vec::new();
    let mut committed_writes: FxHashSet<TimeTag> = FxHashSet::default();
    for (i, (tx, tx_new, reads, writes)) in pending.into_iter().enumerate() {
        let (ri, rows) = &work[i];
        let rule = engine.rules()[*ri].name;
        let conflict = reads
            .iter()
            .chain(writes.iter())
            .any(|t| committed_writes.contains(t));
        if conflict {
            report.aborted += 1;
            report.tag_conflicts += 1;
            engine.tracer().emit(|| TraceEvent::Rollback {
                rule,
                error: "read/write tag-set conflict with an earlier firing".into(),
            });
            continue;
        }
        let write_count = tx.write_count();
        match engine.db.commit(tx) {
            Ok(()) => {
                report.committed += 1;
                report.writes_committed += write_count;
                committed_writes.extend(writes);
                new_wmes.extend(tx_new);
                engine.tracer().emit(|| TraceEvent::Fire {
                    cycle: 0,
                    rule,
                    rows: rows
                        .iter()
                        .map(|row| row.iter().map(|t| t.raw()).collect())
                        .collect(),
                });
            }
            Err(e) => {
                // Tag sets predicted a clean commit; the validator knows
                // better only if the model above ever grows a blind spot.
                debug_assert!(false, "validator abort not predicted by tag sets: {e}");
                report.aborted += 1;
                engine.tracer().emit(|| TraceEvent::Rollback {
                    rule,
                    error: e.to_string(),
                });
            }
        }
    }

    // 4. Mirror the WM table back into the engine and re-derive matches.
    mirror_back(engine, &attrs, &row_ids)?;
    for (class, slots) in new_wmes {
        let slots: Vec<(&str, Value)> = slots.iter().map(|(a, v)| (a.as_str(), *v)).collect();
        engine.insert(class.as_str(), &slots)?;
    }
    drop_wm_table(engine)?;
    engine.rebuild()?;
    Ok(report)
}

/// Evaluate a rule's `:test` over an instantiation group using batch
/// aggregates (the DIPS side has no incremental γ-memory).
fn passes_test(engine: &DipsEngine, ri: usize, rows: &[Vec<TimeTag>]) -> bool {
    let rule = &engine.rules()[ri];
    if rule.tests.is_empty() {
        return true;
    }
    let aggs: Vec<Value> = rule
        .aggregates
        .iter()
        .map(|spec| {
            let (pos, attr) = match spec.target {
                AggTarget::Pv { pos_ce, attr, .. } => (pos_ce, Some(attr)),
                AggTarget::Ce { pos_ce, .. } => (pos_ce, None),
            };
            let mut tags: FxHashSet<TimeTag> = FxHashSet::default();
            let mut values: Vec<Value> = Vec::new();
            let mut distinct: FxHashSet<Value> = FxHashSet::default();
            for row in rows {
                if tags.insert(row[pos]) {
                    if let Some(a) = attr {
                        if let Some(w) = engine.wme(row[pos]) {
                            let v = w.get(a);
                            values.push(v);
                            distinct.insert(v);
                        }
                    }
                }
            }
            match spec.op {
                AggOp::Count => match spec.target {
                    AggTarget::Ce { .. } => Value::Int(tags.len() as i64),
                    AggTarget::Pv { .. } => Value::Int(distinct.len() as i64),
                },
                AggOp::Sum => sum_of(&values),
                AggOp::Avg => {
                    let nums: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
                    if nums.is_empty() {
                        Value::Nil
                    } else {
                        Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                    }
                }
                AggOp::Min => values.iter().min().copied().unwrap_or(Value::Nil),
                AggOp::Max => values.iter().max().copied().unwrap_or(Value::Nil),
            }
        })
        .collect();
    let head = &rows[0];
    let env = FnEnv {
        vars: |v: Symbol| {
            let src = rule.var_sources.get(&v)?;
            if src.set_oriented {
                return None;
            }
            engine.wme(head[src.pos_ce]).map(|w| w.get(src.attr))
        },
        aggs: |op: AggOp, var: Symbol| rule.agg_index(op, var).and_then(|i| aggs.get(i).copied()),
    };
    rule.tests
        .iter()
        .all(|t| eval_truthy(t, &env).unwrap_or(false))
}

fn sum_of(values: &[Value]) -> Value {
    if values.is_empty() {
        return Value::Nil;
    }
    if values.iter().all(|v| matches!(v, Value::Int(_))) {
        Value::Int(
            values
                .iter()
                .filter_map(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                })
                .sum(),
        )
    } else {
        Value::Float(values.iter().filter_map(|v| v.as_f64()).sum())
    }
}

/// Attributes the WM table needs: everything any rule reads or writes.
fn rhs_attrs(engine: &DipsEngine) -> Vec<Symbol> {
    let mut attrs: Vec<Symbol> = Vec::new();
    let mut push = |a: Symbol| {
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    };
    for rule in engine.rules() {
        for ce in &rule.ces {
            for t in &ce.const_tests {
                push(t.attr);
            }
            for (a, _) in &ce.binds {
                push(*a);
            }
            for vj in &ce.var_joins {
                push(vj.attr);
                push(vj.other_attr);
            }
        }
        for action in &rule.rhs {
            match action {
                Action::Make { slots, .. }
                | Action::Modify { slots, .. }
                | Action::SetModify { slots, .. } => {
                    for (a, _) in slots {
                        push(*a);
                    }
                }
                _ => {}
            }
        }
    }
    attrs
}

fn build_wm_table(
    engine: &mut DipsEngine,
    attrs: &[Symbol],
) -> Result<FxHashMap<TimeTag, RowId>, DipsError> {
    drop_wm_table(engine)?;
    if engine.db.table_by_name(WM_TABLE).is_err() {
        let mut cols: Vec<String> = vec!["TAG".into(), "CLASS".into()];
        cols.extend(attrs.iter().map(|a| a.to_string()));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        engine
            .db
            .create_table(Schema::new(WM_TABLE, &col_refs))
            .map_err(|e| DipsError::Db(e.to_string()))?;
    }
    let mut ids = FxHashMap::default();
    let wmes: Vec<Wme> = engine.wmes().into_iter().cloned().collect();
    for wme in wmes {
        let mut row: Vec<Value> = vec![Value::Tag(wme.tag), Value::Sym(wme.class)];
        row.extend(attrs.iter().map(|a| wme.get(*a)));
        let id = engine
            .db
            .table_mut(Symbol::new(WM_TABLE))
            .map_err(|e| DipsError::Db(e.to_string()))?
            .insert(row)
            .map_err(|e| DipsError::Db(e.to_string()))?;
        ids.insert(wme.tag, id);
    }
    Ok(ids)
}

fn drop_wm_table(engine: &mut DipsEngine) -> Result<(), DipsError> {
    // reldb has no DROP TABLE; emptying it is equivalent for our purposes,
    // but a fresh schema may differ, so we clear and re-create by clearing
    // all rows if present.
    if let Ok(table) = engine.db.table_mut(Symbol::new(WM_TABLE)) {
        let all: Vec<RowId> = table.iter().map(|(id, _)| id).collect();
        for id in all {
            let _ = table.delete(id);
        }
    }
    Ok(())
}

/// Translate a rule's RHS (the DIPS-supported subset) into transaction
/// operations over the WM table. `reads`/`writes` receive the firing's
/// tag sets — every matched WME tag, and every tag it deletes or updates
/// — for the commit phase's explicit conflict rule.
#[allow(clippy::too_many_arguments)]
fn build_tx(
    engine: &DipsEngine,
    rule: &AnalyzedRule,
    rows: &[Vec<TimeTag>],
    row_ids: &FxHashMap<TimeTag, RowId>,
    attrs: &[Symbol],
    tx: &mut Transaction,
    new_wmes: &mut Vec<(Symbol, Vec<(Symbol, Value)>)>,
    reads: &mut Vec<TimeTag>,
    writes: &mut Vec<TimeTag>,
) -> Result<(), DipsError> {
    // Read set: every WME the instantiation matched (this is what makes
    // overlapping tuple-oriented instantiations conflict).
    let mut seen: FxHashSet<TimeTag> = FxHashSet::default();
    for row in rows {
        for &t in row {
            if seen.insert(t) {
                reads.push(t);
                tx.read(&engine.db, WM_TABLE, row_ids[&t])
                    .map_err(|e| DipsError::Db(e.to_string()))?;
            }
        }
    }
    let head = &rows[0];
    let env = |v: Symbol| -> Option<Value> {
        let src = rule.var_sources.get(&v)?;
        if src.set_oriented {
            return None;
        }
        engine.wme(head[src.pos_ce]).map(|w| w.get(src.attr))
    };
    let eval_expr = |e: &Expr| -> Result<Value, DipsError> {
        let env = FnEnv {
            vars: env,
            aggs: |_, _| None,
        };
        sorete_lang::eval::eval(e, &env).map_err(|er| DipsError::Rhs(er.to_string()))
    };

    for action in &rule.rhs {
        match action {
            Action::Remove(RhsTarget::Idx(i)) => {
                let tag = head[*i - 1];
                writes.push(tag);
                tx.delete(&engine.db, WM_TABLE, row_ids[&tag])
                    .map_err(|e| DipsError::Db(e.to_string()))?;
            }
            Action::Remove(RhsTarget::Var(v)) => {
                let pos = *rule
                    .elem_vars
                    .get(v)
                    .ok_or_else(|| DipsError::Rhs(format!("unknown element var <{}>", v)))?;
                let tag = head[pos];
                writes.push(tag);
                tx.delete(&engine.db, WM_TABLE, row_ids[&tag])
                    .map_err(|e| DipsError::Db(e.to_string()))?;
            }
            Action::Modify { target, slots } => {
                let pos = match target {
                    RhsTarget::Idx(i) => *i - 1,
                    RhsTarget::Var(v) => *rule
                        .elem_vars
                        .get(v)
                        .ok_or_else(|| DipsError::Rhs(format!("unknown element var <{}>", v)))?,
                };
                let tag = head[pos];
                writes.push(tag);
                for (attr, e) in slots {
                    let val = eval_expr(e)?;
                    tx.update(&engine.db, WM_TABLE, row_ids[&tag], attr.as_str(), val)
                        .map_err(|er| DipsError::Db(er.to_string()))?;
                }
            }
            Action::SetRemove(v) => {
                let pos = rule
                    .set_elem_ce(*v)
                    .ok_or_else(|| DipsError::Rhs(format!("<{}> is not a set element var", v)))?;
                let mut done: FxHashSet<TimeTag> = FxHashSet::default();
                for row in rows {
                    if done.insert(row[pos]) {
                        writes.push(row[pos]);
                        tx.delete(&engine.db, WM_TABLE, row_ids[&row[pos]])
                            .map_err(|e| DipsError::Db(e.to_string()))?;
                    }
                }
            }
            Action::SetModify { var, slots } => {
                let pos = rule
                    .set_elem_ce(*var)
                    .ok_or_else(|| DipsError::Rhs(format!("<{}> is not a set element var", var)))?;
                let mut done: FxHashSet<TimeTag> = FxHashSet::default();
                for row in rows {
                    if done.insert(row[pos]) {
                        writes.push(row[pos]);
                        for (attr, e) in slots {
                            let val = eval_expr(e)?;
                            tx.update(&engine.db, WM_TABLE, row_ids[&row[pos]], attr.as_str(), val)
                                .map_err(|er| DipsError::Db(er.to_string()))?;
                        }
                    }
                }
            }
            Action::Make { class, slots } => {
                let mut vals: Vec<(Symbol, Value)> = Vec::new();
                for (attr, e) in slots {
                    vals.push((*attr, eval_expr(e)?));
                }
                // Inserts go straight through the engine after commit (the
                // WM table lacks a tag allocator); record for later.
                let mut row: Vec<Value> = vec![Value::Nil, Value::Sym(*class)];
                row.extend(attrs.iter().map(|a| {
                    vals.iter()
                        .find(|(x, _)| x == a)
                        .map(|(_, v)| *v)
                        .unwrap_or(Value::Nil)
                }));
                tx.insert(WM_TABLE, row);
                new_wmes.push((*class, vals));
            }
            Action::Write(_) | Action::Bind(..) | Action::Halt => {}
            Action::ForEach { .. } | Action::If { .. } => {
                return Err(DipsError::Rhs(
                    "foreach/if are not part of the DIPS RHS subset".into(),
                ));
            }
        }
    }
    Ok(())
}

/// Pull committed WM-table state back into the engine's working memory.
fn mirror_back(
    engine: &mut DipsEngine,
    attrs: &[Symbol],
    row_ids: &FxHashMap<TimeTag, RowId>,
) -> Result<(), DipsError> {
    let mut removals: Vec<TimeTag> = Vec::new();
    let mut updates: Vec<(TimeTag, Vec<(Symbol, Value)>)> = Vec::new();
    {
        let table = engine
            .db
            .table(Symbol::new(WM_TABLE))
            .map_err(|e| DipsError::Db(e.to_string()))?;
        for (&tag, &rid) in row_ids {
            match table.get(rid) {
                None => removals.push(tag),
                Some(row) => {
                    // Detect drift vs the engine's copy.
                    let Some(old) = engine.wme(tag) else { continue };
                    let mut delta: Vec<(Symbol, Value)> = Vec::new();
                    for (i, a) in attrs.iter().enumerate() {
                        let newv = row[2 + i];
                        if old.get(*a) != newv {
                            delta.push((*a, newv));
                        }
                    }
                    if !delta.is_empty() {
                        updates.push((tag, delta));
                    }
                }
            }
        }
    }
    for tag in removals {
        engine.wm_remove(tag);
    }
    for (tag, delta) in updates {
        engine.wm_update(tag, &delta);
    }
    Ok(())
}
