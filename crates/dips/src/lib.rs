#![warn(missing_docs)]
//! `sorete-dips` — a reproduction of the DIPS disk-based production system
//! (Sellis, Lin & Raschid) as described in §8 of the paper, together with
//! the paper's set-oriented retrofit.
//!
//! - [`cond`]: COND-table matching over the relational substrate — mark
//!   bits generalized to WME-tag columns (§8.2), RCE propagation, and SOI
//!   retrieval by relational `GROUP BY`.
//! - [`fire`]: the concurrent-firing experiment — every satisfied
//!   instantiation (or SOI) runs as an optimistic transaction; tuple-
//!   oriented execution conflicts, set-oriented execution does not (claim
//!   C5).
//! - [`figure6`](mod@figure6): the paper's Figure 6, reproduced end to end.
//!
//! ```
//! let fig = sorete_dips::figure6().unwrap();
//! assert_eq!(fig.groups.len(), 2, "two SOIs, one per E-tuple");
//! ```

pub mod cond;
pub mod error;
pub mod figure6;
pub mod fire;

pub use cond::{DipsEngine, DipsInst, DipsMode, DipsReplayReport, DipsSoi};
pub use error::DipsError;
pub use figure6::{figure6, Figure6};
pub use fire::{parallel_cycle, CycleReport};

#[cfg(test)]
mod tests {
    use super::*;
    use sorete_base::Value;

    #[test]
    fn tuple_instantiations_match_figure1() {
        let mut e = DipsEngine::new(
            DipsMode::Tuple,
            "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B) (write x))",
        )
        .unwrap();
        for (n, t) in [
            ("Jack", "A"),
            ("Janice", "A"),
            ("Sue", "B"),
            ("Jack", "B"),
            ("Sue", "B"),
        ] {
            e.insert(
                "player",
                &[("name", Value::sym(n)), ("team", Value::sym(t))],
            )
            .unwrap();
        }
        assert_eq!(e.instantiations().len(), 6);
    }

    #[test]
    fn memory_report_counts_cond_rows() {
        let f = figure6().unwrap();
        let report = f.engine.memory_report();
        let rows = report.region("db_rows").expect("db_rows region");
        // Figure 6 seeds COND templates and inserts player rows, so the
        // backing store must be visibly non-empty.
        assert!(rows.entries > 0, "live COND rows: {}", rows.entries);
        assert!(rows.bytes > 0);
        let pages = report.region("db_pages").expect("db_pages region");
        assert!(pages.entries > 0);
        assert!(report.total_bytes() >= rows.bytes);
    }

    #[test]
    fn equality_join_respected_regardless_of_arrival_order() {
        let prog = "(p pair (a ^x <v>) (b ^x <v>) (write x))";
        // b first, then a.
        let mut e = DipsEngine::new(DipsMode::Tuple, prog).unwrap();
        e.insert("b", &[("x", Value::Int(1))]).unwrap();
        e.insert("b", &[("x", Value::Int(2))]).unwrap();
        e.insert("a", &[("x", Value::Int(1))]).unwrap();
        let insts = e.instantiations();
        assert_eq!(insts.len(), 1, "{:?}", insts);
    }

    #[test]
    fn non_equality_join_verified_on_retrieval() {
        let prog = "(p gt (a ^x <v>) (b ^y > <v>) (write x))";
        let mut e = DipsEngine::new(DipsMode::Tuple, prog).unwrap();
        e.insert("b", &[("y", Value::Int(5))]).unwrap();
        e.insert("a", &[("x", Value::Int(3))]).unwrap();
        e.insert("a", &[("x", Value::Int(9))]).unwrap();
        let insts = e.instantiations();
        assert_eq!(insts.len(), 1, "only x=3 < y=5: {:?}", insts);
    }

    #[test]
    fn removal_deletes_cond_rows() {
        let mut e = DipsEngine::new(
            DipsMode::Tuple,
            "(p compete (player ^team A) (player ^team B) (write x))",
        )
        .unwrap();
        let a = e.insert("player", &[("team", Value::sym("A"))]).unwrap();
        e.insert("player", &[("team", Value::sym("B"))]).unwrap();
        assert_eq!(e.instantiations().len(), 1);
        e.remove(a).unwrap();
        assert_eq!(e.instantiations().len(), 0);
    }

    #[test]
    fn soi_grouping_by_scalar_ce() {
        let mut e = DipsEngine::new(
            DipsMode::Set,
            "(p r (dept ^id <d>) [emp ^dept <d>] (write x))",
        )
        .unwrap();
        e.insert("dept", &[("id", Value::Int(1))]).unwrap();
        e.insert("dept", &[("id", Value::Int(2))]).unwrap();
        for d in [1i64, 1, 2] {
            e.insert("emp", &[("dept", Value::Int(d))]).unwrap();
        }
        let sois = e.sois();
        assert_eq!(sois.len(), 2);
        assert_eq!(sois[0].rows.len(), 2, "dept 1 has two emps");
        assert_eq!(sois[1].rows.len(), 1);
    }

    #[test]
    fn parallel_tuple_firing_conflicts_set_firing_does_not() {
        // The paper's §8.1 pathology: several instantiations of one rule
        // try to remove the same WME (they share the `flag` WME and remove
        // their own item — but all read `flag`, and the first one to also
        // *modify* it invalidates the rest).
        let prog = "(p drain (flag ^on t) (item ^s pending)
                      (modify 1 ^on t) (remove 2))";
        let mut tuple = DipsEngine::new(DipsMode::Tuple, prog).unwrap();
        tuple.insert("flag", &[("on", Value::sym("t"))]).unwrap();
        for _ in 0..5 {
            tuple
                .insert("item", &[("s", Value::sym("pending"))])
                .unwrap();
        }
        let report = parallel_cycle(&mut tuple).unwrap();
        assert_eq!(report.attempted, 5);
        assert_eq!(report.committed, 1, "everyone else conflicts on `flag`");
        assert_eq!(report.aborted, 4);

        // Set-oriented version: one SOI, one transaction, no conflicts.
        let prog_set = "(p drain (flag ^on t) { [item ^s pending] <P> }
                          (modify 1 ^on t) (set-remove <P>))";
        let mut set = DipsEngine::new(DipsMode::Set, prog_set).unwrap();
        set.insert("flag", &[("on", Value::sym("t"))]).unwrap();
        for _ in 0..5 {
            set.insert("item", &[("s", Value::sym("pending"))]).unwrap();
        }
        let report = parallel_cycle(&mut set).unwrap();
        assert_eq!(report.attempted, 1);
        assert_eq!(report.committed, 1);
        assert_eq!(report.aborted, 0);
        assert_eq!(set.wm_len(), 1, "all five items removed in one firing");
    }

    #[test]
    fn mutual_invalidation_same_wme() {
        // Two instantiations try to remove the same WME — the paper's
        // special case (Raschid et al. 1988).
        let prog = "(p grab (token ^free t) (worker ^idle t)
                      (remove 1) (modify 2 ^idle f))";
        let mut e = DipsEngine::new(DipsMode::Tuple, prog).unwrap();
        e.insert("token", &[("free", Value::sym("t"))]).unwrap();
        e.insert("worker", &[("idle", Value::sym("t"))]).unwrap();
        e.insert("worker", &[("idle", Value::sym("t"))]).unwrap();
        let report = parallel_cycle(&mut e).unwrap();
        assert_eq!(report.attempted, 2);
        assert_eq!(report.committed, 1, "only one worker gets the token");
        assert_eq!(report.aborted, 1);
    }

    #[test]
    fn set_mode_respects_count_test() {
        let prog = "(p dups { [player ^name <n>] <P> } :scalar (<n>)
                      :test ((count <P>) > 1) (set-remove <P>))";
        let mut e = DipsEngine::new(DipsMode::Set, prog).unwrap();
        e.insert("player", &[("name", Value::sym("Sue"))]).unwrap();
        e.insert("player", &[("name", Value::sym("Sue"))]).unwrap();
        e.insert("player", &[("name", Value::sym("Jack"))]).unwrap();
        let report = parallel_cycle(&mut e).unwrap();
        assert_eq!(report.attempted, 1, "only the Sue group passes the test");
        assert_eq!(report.committed, 1);
        assert_eq!(e.wm_len(), 1, "both Sues removed; Jack survives");
    }

    #[test]
    fn trace_stream_reports_asserts_fires_and_aborts() {
        use sorete_base::{CollectSink, TraceEvent, Tracer};
        let prog = "(p grab (token ^free t) (worker ^idle t)
                      (remove 1) (modify 2 ^idle f))";
        let mut e = DipsEngine::new(DipsMode::Tuple, prog).unwrap();
        let (tracer, sink) = Tracer::single(CollectSink::new());
        e.set_tracer(tracer);
        e.insert("token", &[("free", Value::sym("t"))]).unwrap();
        e.insert("worker", &[("idle", Value::sym("t"))]).unwrap();
        e.insert("worker", &[("idle", Value::sym("t"))]).unwrap();
        let report = parallel_cycle(&mut e).unwrap();
        assert_eq!((report.committed, report.aborted), (1, 1));
        let events = sink.lock().unwrap().take();
        let count = |name: &str| events.iter().filter(|ev| ev.name() == name).count();
        assert_eq!(count("wme_assert"), 3);
        assert_eq!(count("fire"), 1, "{:?}", events);
        assert_eq!(count("rollback"), 1, "{:?}", events);
        assert!(events
            .iter()
            .any(|ev| matches!(ev, TraceEvent::Fire { rule, .. } if rule.as_str() == "grab")));
    }

    #[test]
    fn wal_recovery_restores_wm_and_sois() {
        let dir = std::env::temp_dir().join("sorete-dips-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dips-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let prog = "(p sweep { [item ^s pending] <P> } (set-modify <P> ^s done)
                      (make tally ^n 1))";

        let mut live = DipsEngine::new(DipsMode::Set, prog).unwrap();
        live.attach_wal(&path, sorete_reldb::WalOptions::default())
            .unwrap();
        for _ in 0..3 {
            live.insert("item", &[("s", Value::sym("pending"))])
                .unwrap();
        }
        let doomed = live.insert("item", &[("s", Value::sym("stale"))]).unwrap();
        live.remove(doomed).unwrap();
        let r = parallel_cycle(&mut live).unwrap();
        assert_eq!(r.committed, 1);
        let live_wm: Vec<String> = live.wmes().iter().map(|w| w.to_string()).collect();

        // "Crash": a fresh engine recovers everything from the log alone —
        // original tags, the in-place set-modify updates, the removal.
        let mut back = DipsEngine::new(DipsMode::Set, prog).unwrap();
        let report = back
            .attach_wal(&path, sorete_reldb::WalOptions::default())
            .unwrap();
        assert_eq!(report.replayed_cycles, 1);
        assert_eq!(report.replayed_commits, 5, "4 inserts + 1 remove");
        assert_eq!(report.discarded_records, 0);
        let back_wm: Vec<String> = back.wmes().iter().map(|w| w.to_string()).collect();
        assert_eq!(back_wm, live_wm);
        assert_eq!(back.sois().len(), live.sois().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wal_failure_poisons_the_engine() {
        let dir = std::env::temp_dir().join("sorete-dips-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dips-poison-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let prog = "(p sweep { [item ^s pending] <P> } (set-modify <P> ^s done))";
        let mut e = DipsEngine::new(DipsMode::Set, prog).unwrap();
        e.attach_wal(&path, sorete_reldb::WalOptions::default())
            .unwrap();
        assert!(e.inject_wal_fault(sorete_reldb::IoFaultPlan::nth(
            sorete_reldb::IoFaultKind::Fail,
            0
        )));
        // DIPS inserts mutate WM before logging; when the log refuses the
        // record, memory has already diverged and the handle poisons.
        let err = e
            .insert("item", &[("s", Value::sym("pending"))])
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{}", err);
        // Every further mutation is refused until rebuilt from the log.
        let err = e
            .insert("item", &[("s", Value::sym("pending"))])
            .unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{}", err);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cycle_then_requery_consistent() {
        let prog = "(p sweep { [item ^s pending] <P> } (set-modify <P> ^s done))";
        let mut e = DipsEngine::new(DipsMode::Set, prog).unwrap();
        for _ in 0..4 {
            e.insert("item", &[("s", Value::sym("pending"))]).unwrap();
        }
        let r1 = parallel_cycle(&mut e).unwrap();
        assert_eq!(r1.committed, 1);
        // All items now done → no work left.
        let r2 = parallel_cycle(&mut e).unwrap();
        assert_eq!(r2.attempted, 0);
        assert_eq!(e.wm_len(), 4);
    }
}
