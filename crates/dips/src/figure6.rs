//! Exact reproduction of the paper's **Figure 6**: set-oriented DIPS.
//!
//! The scenario: rule `rule-1` with a regular CE over class `E` and a
//! set-oriented CE over class `W`,
//!
//! ```text
//! (p rule-1 (E ^name <x> ^salary <s>) [W ^name <x> ^job clerk] ...)
//! ```
//!
//! working memory
//!
//! ```text
//! 1: (W ^name Mike ^job clerk)
//! 2: (E ^name Mike ^salary 10000)
//! 3: (W ^name Mike ^job clerk)
//! 4: (E ^name Mike ^salary 5000)
//! ```
//!
//! and the SQL retrieval that selects complete COND rows and groups them by
//! the non-set-oriented CE's WME tag, yielding the paper's two groups:
//! `{E=2: W∈{1,3}}` and `{E=4: W∈{1,3}}`.

use crate::cond::{DipsEngine, DipsMode, DipsSoi};
use crate::error::DipsError;
use sorete_base::{TimeTag, Value};
use sorete_reldb::Relation;

/// Everything the demo produces.
pub struct Figure6 {
    /// The engine after the four WMEs (COND tables inspectable).
    pub engine: DipsEngine,
    /// Rendered `COND-E` table.
    pub cond_e: String,
    /// Rendered `COND-W` table.
    pub cond_w: String,
    /// The SQL query used to retrieve the SOIs.
    pub query: String,
    /// The grouped relation the query returns (the paper's "Relation
    /// containing SOIs").
    pub soi_relation: Relation,
    /// The SOIs as structured data.
    pub groups: Vec<DipsSoi>,
}

/// Build and run the Figure 6 scenario.
pub fn figure6() -> Result<Figure6, DipsError> {
    let mut engine = DipsEngine::new(
        DipsMode::Set,
        "(p rule-1 (E ^name <x> ^salary <s>) [W ^name <x> ^job clerk] (write <x>))",
    )?;
    engine.insert(
        "W",
        &[("name", Value::sym("Mike")), ("job", Value::sym("clerk"))],
    )?;
    engine.insert(
        "E",
        &[("name", Value::sym("Mike")), ("salary", Value::Int(10000))],
    )?;
    engine.insert(
        "W",
        &[("name", Value::sym("Mike")), ("job", Value::sym("clerk"))],
    )?;
    engine.insert(
        "E",
        &[("name", Value::sym("Mike")), ("salary", Value::Int(5000))],
    )?;

    let cond_e = engine.render_cond("E")?;
    let cond_w = engine.render_cond("W")?;

    // The paper's query, adapted to the normalized tag columns (T1 = the
    // regular CE over E, T2 = the set CE over W):
    let query = "select COND-E.T1, COND-E.T2 from COND-E \
                 where COND-E.T1 is not NULL and COND-E.T2 is not NULL \
                 group-by COND-E.T1"
        .to_string();
    let soi_relation = engine
        .db
        .sql(&query)
        .map_err(|e| DipsError::Db(e.to_string()))?;
    let groups = engine.sois();
    Ok(Figure6 {
        engine,
        cond_e,
        cond_w,
        query,
        soi_relation,
        groups,
    })
}

/// The expected groups, for tests: `(E-tag, [W-tags])`.
pub fn expected_groups() -> Vec<(TimeTag, Vec<TimeTag>)> {
    vec![
        (TimeTag::new(2), vec![TimeTag::new(1), TimeTag::new(3)]),
        (TimeTag::new(4), vec![TimeTag::new(1), TimeTag::new(3)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_groups_match_the_paper() {
        let fig = figure6().unwrap();
        assert_eq!(fig.groups.len(), 2, "two SOIs (one per E-tuple)");
        for (soi, (e_tag, w_tags)) in fig.groups.iter().zip(expected_groups()) {
            assert_eq!(soi.key, vec![Value::Tag(e_tag)]);
            let mut got: Vec<TimeTag> = soi.rows.iter().map(|r| r[1]).collect();
            got.sort();
            got.dedup();
            assert_eq!(got, w_tags);
            // Every row's E column is the group's E tuple.
            assert!(soi.rows.iter().all(|r| r[0] == e_tag));
        }
    }

    #[test]
    fn figure6_sql_retrieval() {
        let fig = figure6().unwrap();
        // Grouped relation: group column + (T1, T2), 4 rows in 2 groups.
        assert_eq!(fig.soi_relation.cols[0], "group");
        assert_eq!(fig.soi_relation.rows.len(), 4);
        let g1: Vec<_> = fig
            .soi_relation
            .rows
            .iter()
            .filter(|r| r[0] == Value::Int(1))
            .collect();
        assert_eq!(g1.len(), 2);
        // Group 1 is the older E tuple (tag 2) with both W tuples.
        assert!(g1.iter().all(|r| r[1] == Value::Tag(TimeTag::new(2))));
        let mut w: Vec<Value> = g1.iter().map(|r| r[2]).collect();
        w.sort();
        assert_eq!(
            w,
            vec![Value::Tag(TimeTag::new(1)), Value::Tag(TimeTag::new(3))]
        );
    }

    #[test]
    fn cond_tables_render() {
        let fig = figure6().unwrap();
        assert!(fig.cond_e.contains("RULE-ID"), "{}", fig.cond_e);
        assert!(fig.cond_e.contains("Mike"), "{}", fig.cond_e);
        assert!(fig.cond_w.contains("VAR-x"), "{}", fig.cond_w);
    }
}
