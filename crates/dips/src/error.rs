//! DIPS-layer errors.

use std::fmt;

/// Errors from the DIPS substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DipsError {
    /// Program failed to parse/analyse or used unsupported constructs.
    Load(String),
    /// Underlying database failure.
    Db(String),
    /// Unknown WME tag.
    UnknownTag(u64),
    /// RHS action outside the DIPS-supported subset.
    Rhs(String),
}

impl fmt::Display for DipsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DipsError::Load(m) => write!(f, "DIPS load error: {}", m),
            DipsError::Db(m) => write!(f, "DIPS database error: {}", m),
            DipsError::UnknownTag(t) => write!(f, "unknown WME tag {}", t),
            DipsError::Rhs(m) => write!(f, "DIPS RHS error: {}", m),
        }
    }
}

impl std::error::Error for DipsError {}
