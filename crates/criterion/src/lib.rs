//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds offline, so this shim provides the benchmarking
//! surface the `sorete-bench` targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`criterion_group!`]/[`criterion_main!`] — with honest wall-clock
//! measurement (warm-up, then `sample_size` timed samples) and plain-text
//! reporting of mean/min per benchmark. It has none of criterion's
//! statistics, HTML reports, or baselines; numbers are indicative, which is
//! all the paper-reproduction tables need in a hermetic environment.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Mirror of criterion's CLI configuration hook (no-op in the shim).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(name);
    }
}

/// A named benchmark id, optionally parameterized (`name/param`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id rendered as `name/param`.
    pub fn new<P: fmt::Display>(name: &str, param: P) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name, param),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` with a fixed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark `f` under a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// End the group (printing happens per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Times a closure over repeated samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Measure `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also forces lazy init out of the samples
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{:<48} (no samples)", label);
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{:<48} mean {:>12?}  min {:>12?}  ({} samples)",
            label,
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Define a benchmark group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u32, |b, &_n| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn id_formats_with_param() {
        assert_eq!(BenchmarkId::new("insert", 128).to_string(), "insert/128");
    }
}
