//! A minimal line-protocol client, used by the bench harness, the
//! `sorete-server request` one-shot subcommand, and the differential tests.
//!
//! The client is deliberately fault-tolerant in exactly the ways the
//! server's fault-injection mode demands: garbage lines are skipped (the
//! next parseable object is the response) and a dropped connection
//! surfaces as an error the caller can retry after reconnecting.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use sorete_lang::json::{self, Json};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Set a read deadline for responses (how long to wait on a stalled
    /// server before giving up).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request line and read the response, skipping any garbage
    /// frames in between. `Err` means the connection is gone (or stalled
    /// past the read deadline) — reconnect to continue.
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let mut resp = String::new();
            let n = self.reader.read_line(&mut resp)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server closed the connection",
                ));
            }
            let trimmed = resp.trim();
            if trimmed.is_empty() {
                continue;
            }
            match json::parse(trimmed) {
                Ok(v) if v.as_obj().is_some() => return Ok(v),
                // Garbage frame: skip and keep reading.
                _ => continue,
            }
        }
    }
}
