//! The `sorete-server` binary: `serve`, `bench`, and `request` subcommands.
//! All the logic lives in the library (`sorete_server::cli_main`) so the
//! root `sorete serve` CLI shares it.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sorete_server::cli_main(&args));
}
