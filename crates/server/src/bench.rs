//! The `sorete-server bench` load harness: concurrent sessions × assert
//! throughput at bounded p95 latency, recorded to `BENCH_server.json`.
//!
//! Two configs per run over the same workload shape:
//!
//! - `single_session`: one client, one session — the baseline.
//! - `multi_session`: N clients, N sessions, concurrently.
//!
//! The gate consumes the *ratio* of multi/single throughput (Floor) plus
//! the error/timeout counters (Exact zero under the no-fault run), which
//! keeps the check host-independent.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sorete_lang::json::Json;

use crate::client::Client;
use crate::server::{Server, ServerConfig};

/// Load-harness parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent sessions in the `multi_session` config.
    pub sessions: usize,
    /// Assert-batches per session.
    pub batches: usize,
    /// Facts per batch.
    pub facts_per_batch: usize,
    /// Where session data lives (a temp dir is created when `None`).
    pub data_dir: Option<PathBuf>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            sessions: 8,
            batches: 40,
            facts_per_batch: 25,
            data_dir: None,
        }
    }
}

/// One measured row of `BENCH_server.json`.
#[derive(Clone, Debug)]
pub struct LoadRow {
    /// `single_session` or `multi_session`.
    pub config: &'static str,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Batches per session.
    pub batches: usize,
    /// Facts per batch.
    pub facts_per_batch: usize,
    /// Sustained facts asserted per second across all sessions.
    pub asserts_per_sec: u64,
    /// 95th-percentile request latency in microseconds.
    pub p95_micros: u64,
    /// Requests answered with a non-timeout error.
    pub errors: u64,
    /// Requests answered with a `timeout` error.
    pub timeouts: u64,
}

impl LoadRow {
    /// Render as one JSON object for `BENCH_server.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".into(), Json::Str(self.config.into())),
            ("sessions".into(), Json::Int(self.sessions as i64)),
            ("batches".into(), Json::Int(self.batches as i64)),
            (
                "facts_per_batch".into(),
                Json::Int(self.facts_per_batch as i64),
            ),
            (
                "asserts_per_sec".into(),
                Json::Int(self.asserts_per_sec as i64),
            ),
            ("p95_micros".into(), Json::Int(self.p95_micros as i64)),
            ("errors".into(), Json::Int(self.errors as i64)),
            ("timeouts".into(), Json::Int(self.timeouts as i64)),
        ])
    }
}

const BENCH_PROGRAM: &str = "(p watch [item ^v 0] (halt))";

fn batch_line(session: &str, facts: usize, base: usize) -> String {
    let mut s = format!(
        r#"{{"op":"assert-batch","session":"{}","deadline_ms":30000,"facts":["#,
        session
    );
    for i in 0..facts {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            r#"{{"class":"item","slots":{{"v":{}}}}}"#,
            base + i + 1
        ));
    }
    s.push_str("]}");
    s
}

struct ClientTally {
    latencies: Vec<u64>,
    errors: u64,
    timeouts: u64,
}

fn drive_session(addr: &str, session: &str, batches: usize, facts: usize) -> ClientTally {
    let mut tally = ClientTally {
        latencies: Vec::with_capacity(batches + 2),
        errors: 0,
        timeouts: 0,
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    let send = |c: &mut Client, line: &str, t: &mut ClientTally| {
        let start = Instant::now();
        match c.request(line) {
            Ok(resp) => {
                t.latencies.push(start.elapsed().as_micros() as u64);
                if resp.get("ok").and_then(|v| v.as_bool()) != Some(true) {
                    match resp.get("error").and_then(|v| v.as_str()) {
                        Some("timeout") => t.timeouts += 1,
                        _ => t.errors += 1,
                    }
                }
            }
            Err(_) => t.errors += 1,
        }
    };
    send(
        &mut client,
        &format!(r#"{{"op":"open-session","session":"{}"}}"#, session),
        &mut tally,
    );
    send(
        &mut client,
        &Json::Obj(vec![
            ("op".into(), Json::Str("load-rules".into())),
            ("session".into(), Json::Str(session.into())),
            ("program".into(), Json::Str(BENCH_PROGRAM.into())),
        ])
        .render(),
        &mut tally,
    );
    for b in 0..batches {
        let line = batch_line(session, facts, b * facts);
        send(&mut client, &line, &mut tally);
    }
    send(
        &mut client,
        &format!(
            r#"{{"op":"run","session":"{}","limit":1,"deadline_ms":30000}}"#,
            session
        ),
        &mut tally,
    );
    tally
}

fn measure(config: &'static str, sessions: usize, load: &LoadConfig) -> LoadRow {
    let dir = load.data_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sorete-bench-{}-{}", std::process::id(), config))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(ServerConfig {
        data_dir: dir.clone(),
        max_sessions: sessions + 2,
        max_connections: sessions + 2,
        default_deadline_ms: 30_000,
        ..ServerConfig::default()
    })
    .expect("bind bench server");
    let addr = server.local_addr().expect("local addr").to_string();
    let ctx = server.ctx();
    let server_thread = std::thread::spawn(move || server.run());

    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let addr = addr.clone();
            let name = format!("bench-{}", i);
            let (batches, facts) = (load.batches, load.facts_per_batch);
            std::thread::spawn(move || drive_session(&addr, &name, batches, facts))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0;
    let mut timeouts = 0;
    for h in handles {
        let t = h.join().expect("bench client");
        latencies.extend(t.latencies);
        errors += t.errors;
        timeouts += t.timeouts;
    }
    let elapsed = start.elapsed().max(Duration::from_micros(1));
    ctx.request_stop();
    let _ = server_thread.join();
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_unstable();
    let p95 = if latencies.is_empty() {
        0
    } else {
        latencies[(latencies.len() - 1).min(latencies.len() * 95 / 100)]
    };
    let total_facts = (sessions * load.batches * load.facts_per_batch) as f64;
    LoadRow {
        config,
        sessions,
        batches: load.batches,
        facts_per_batch: load.facts_per_batch,
        asserts_per_sec: (total_facts / elapsed.as_secs_f64()) as u64,
        p95_micros: p95,
        errors,
        timeouts,
    }
}

/// Run the load harness: a single-session baseline, then the concurrent
/// multi-session config. Returns the two measured rows.
pub fn run_server_load(load: &LoadConfig) -> Vec<LoadRow> {
    vec![
        measure("single_session", 1, load),
        measure("multi_session", load.sessions.max(2), load),
    ]
}

/// Render rows as the `BENCH_server.json` document.
pub fn render_rows(rows: &[LoadRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str("  ");
        s.push_str(&r.to_json().render());
    }
    s.push_str("\n]\n");
    s
}
