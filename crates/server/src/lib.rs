#![warn(missing_docs)]
//! `sorete-server`: a fault-tolerant multi-session rule-engine daemon.
//!
//! The paper's end state is a rule base living *inside* a database system
//! serving many clients; this crate is that move for sorete. A long-lived
//! daemon speaks a newline-delimited JSON line protocol over TCP
//! ([`proto`]) and hosts many named sessions ([`session`]), each a durable
//! [`sorete_core::ProductionSystem`] with its own WAL + checkpoint
//! directory, supervisor, and metrics registry.
//!
//! Robustness is the headline ([`server`]):
//!
//! - per-request **deadlines** with typed `timeout` errors;
//! - connection and per-session concurrency limits with explicit
//!   **backpressure** (`overloaded`, never an unbounded queue);
//! - **admission control** on session count and aggregate WM bytes;
//! - **graceful shutdown** on SIGTERM that checkpoints every dirty
//!   session before exit;
//! - restart-time **recovery** that reattaches every session's WAL,
//!   refusing generation mismatches;
//! - a network-layer **fault-injection** mode (drop / stall / garbage
//!   frames) proven harmless by differential tests.
//!
//! The [`bench`] module is the load harness behind `sorete-server bench`
//! and the `BENCH_server.json` gate suite.

pub mod bench;
pub mod client;
pub mod proto;
pub mod server;
pub mod session;

pub use bench::{run_server_load, LoadConfig, LoadRow};
pub use client::Client;
pub use proto::{parse_request, Request, Response};
pub use server::{
    conflict_lines, dispatch_line, Ctx, NetFaultMode, NetFaultPlan, Server, ServerConfig,
    ServerReport,
};
pub use session::{Session, SessionError, SessionSlot, SessionStore};

use std::path::PathBuf;

/// Entry point shared by the `sorete-server` binary and `sorete serve`.
/// Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        _ => {
            eprintln!("{}", USAGE);
            2
        }
    }
}

const USAGE: &str = "\
usage: sorete-server <command> [options]

commands:
  serve    run the daemon
           --addr A              listen address (default 127.0.0.1:7878)
           --data-dir D          session data directory (default sorete-data)
           --max-sessions N      admission: session cap (default 64)
           --max-connections N   admission: connection cap (default 64)
           --max-bytes N         admission: aggregate WM bytes (default 256MiB)
           --deadline-ms N       default per-request deadline (default 5000)
           --read-timeout-ms N   stalled-client read timeout (default 10000)
           --fault MODE:N        inject drop|stall|garbage every Nth frame
  bench    run the load harness and write BENCH_server.json
           --sessions N --batches N --facts N --out PATH
  request  one-shot client: sorete-server request ADDR '<json-line>'";

fn next_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{} needs a value", flag))
}

fn cmd_serve(args: &[String]) -> i32 {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => cfg.addr = next_arg(&mut it, a)?,
                "--data-dir" => cfg.data_dir = PathBuf::from(next_arg(&mut it, a)?),
                "--max-sessions" => {
                    cfg.max_sessions = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--max-connections" => {
                    cfg.max_connections = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--max-bytes" => {
                    cfg.max_total_bytes = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--deadline-ms" => {
                    cfg.default_deadline_ms = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--read-timeout-ms" => {
                    cfg.read_timeout_ms = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--fault" => cfg.fault = Some(NetFaultPlan::parse(&next_arg(&mut it, a)?)?),
                other => return Err(format!("unknown option {}", other)),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("sorete-server: {}", e);
            return 2;
        }
    }
    sorete_base::shutdown::install();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sorete-server: bind: {}", e);
            return 1;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Machine-parseable: the CI smoke job scrapes the port here.
            println!("sorete-server listening on {}", addr);
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("sorete-server: local_addr: {}", e);
            return 1;
        }
    }
    match server.run() {
        Ok(report) => {
            // Supervisors commonly stop reading our stdout before we exit;
            // a plain println! would panic on the broken pipe, so the
            // summary write ignores errors.
            use std::io::Write as _;
            let _ = writeln!(
                std::io::stdout(),
                "; shutdown ({}): {} requests, {} sessions checkpointed, {} checkpoint failures",
                sorete_base::shutdown::last_signal_name(),
                report.requests,
                report.checkpointed,
                report.checkpoint_failures
            );
            if report.checkpoint_failures > 0 {
                5
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("sorete-server: accept loop: {}", e);
            1
        }
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let mut load = LoadConfig::default();
    let mut out = PathBuf::from("BENCH_server.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--sessions" => {
                    load.sessions = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--batches" => {
                    load.batches = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--facts" => {
                    load.facts_per_batch = next_arg(&mut it, a)?
                        .parse()
                        .map_err(|e| format!("{}: {}", a, e))?
                }
                "--out" => out = PathBuf::from(next_arg(&mut it, a)?),
                other => return Err(format!("unknown option {}", other)),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("sorete-server: {}", e);
            return 2;
        }
    }
    let rows = run_server_load(&load);
    for r in &rows {
        println!(
            "{:>15}  sessions={:<3} asserts/s={:<9} p95={}us errors={} timeouts={}",
            r.config, r.sessions, r.asserts_per_sec, r.p95_micros, r.errors, r.timeouts
        );
    }
    match std::fs::write(&out, bench::render_rows(&rows)) {
        Ok(()) => {
            println!("wrote {}", out.display());
            0
        }
        Err(e) => {
            eprintln!("sorete-server: write {}: {}", out.display(), e);
            1
        }
    }
}

fn cmd_request(args: &[String]) -> i32 {
    let (addr, line) = match args {
        [addr, line] => (addr, line),
        _ => {
            eprintln!("usage: sorete-server request ADDR '<json-line>'");
            return 2;
        }
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sorete-server: connect {}: {}", addr, e);
            return 1;
        }
    };
    match client.request(line) {
        Ok(resp) => {
            println!("{}", resp.render());
            if resp.get("ok").and_then(|v| v.as_bool()) == Some(true) {
                0
            } else {
                3
            }
        }
        Err(e) => {
            eprintln!("sorete-server: request: {}", e);
            1
        }
    }
}
