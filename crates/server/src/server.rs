//! The daemon: TCP listener, request dispatch, admission control,
//! deadlines, fault injection, and crash-safe shutdown.
//!
//! Threading model: one accept loop (non-blocking, polling the shutdown
//! flag) plus one thread per connection. Each request takes its session's
//! mutex with `try_lock`; a busy session answers `overloaded` immediately —
//! the server never queues work it has not admitted.
//!
//! Robustness invariants, in order of importance:
//!
//! 1. **The daemon never exits on a per-session failure.** Engine errors,
//!    quarantines, malformed frames, and dropped connections are all
//!    answered (or logged) and the loop continues.
//! 2. **Faults never corrupt state.** Every mutation is WAL-committed
//!    before its response is written, so a dropped connection or stalled
//!    response leaves the session exactly as if the request had completed
//!    normally — the differential tests in `tests/` assert byte-identical
//!    conflict sets and checkpoints against an undisturbed run.
//! 3. **Shutdown is a checkpoint, not an abort.** SIGTERM/SIGINT (or the
//!    `shutdown` op) stops admission, interrupts in-flight runs at a firing
//!    boundary, checkpoints every dirty session, and only then returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sorete_base::{TimeTag, Value};
use sorete_core::{GuardViolation, ProductionSystem, StopReason};
use sorete_lang::json::{self, Json};

use crate::proto::{codes, parse_request, Request, Response};
use crate::session::{Session, SessionStore};

/// Network-layer fault injection: what to break and every how many frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultMode {
    /// Close the connection after processing a frame, before responding.
    Drop,
    /// Sleep before responding (past any client deadline).
    Stall,
    /// Write a garbage line before the real response.
    Garbage,
}

/// A fault plan: trigger `mode` every `every`-th frame on each connection.
#[derive(Clone, Copy, Debug)]
pub struct NetFaultPlan {
    /// What to break.
    pub mode: NetFaultMode,
    /// Trigger on every Nth frame (1-based; 0 disables).
    pub every: u64,
    /// Stall duration for [`NetFaultMode::Stall`].
    pub stall: Duration,
}

impl NetFaultPlan {
    /// Parse `drop:N` / `stall:N` / `garbage:N`.
    pub fn parse(spec: &str) -> Result<NetFaultPlan, String> {
        let (mode, n) = match spec.split_once(':') {
            Some((m, n)) => (m, n),
            None => return Err(format!("bad fault spec {:?} (want mode:N)", spec)),
        };
        let every: u64 = n.parse().map_err(|_| format!("bad fault count {:?}", n))?;
        let mode = match mode {
            "drop" => NetFaultMode::Drop,
            "stall" => NetFaultMode::Stall,
            "garbage" => NetFaultMode::Garbage,
            other => return Err(format!("unknown fault mode {:?}", other)),
        };
        Ok(NetFaultPlan {
            mode,
            every,
            stall: Duration::from_millis(150),
        })
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Directory holding one subdirectory per session.
    pub data_dir: PathBuf,
    /// Admission: maximum live sessions.
    pub max_sessions: usize,
    /// Admission: maximum concurrent connections.
    pub max_connections: usize,
    /// Admission: maximum aggregate working-memory bytes across sessions.
    pub max_total_bytes: u64,
    /// Default per-request deadline when the frame names none.
    pub default_deadline_ms: u64,
    /// Socket read timeout — a client stalled longer than this is dropped.
    pub read_timeout_ms: u64,
    /// Fault injection (tests only).
    pub fault: Option<NetFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("sorete-data"),
            max_sessions: 64,
            max_connections: 64,
            max_total_bytes: 256 << 20,
            default_deadline_ms: 5_000,
            read_timeout_ms: 10_000,
            fault: None,
        }
    }
}

/// What a server run did, returned when the accept loop exits.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerReport {
    /// Sessions checkpointed during graceful shutdown.
    pub checkpointed: u64,
    /// Sessions that failed to checkpoint (logged, not fatal).
    pub checkpoint_failures: u64,
    /// Total requests served.
    pub requests: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// Shared server state, one per daemon.
pub struct Ctx {
    cfg: ServerConfig,
    store: SessionStore,
    stop: AtomicBool,
    conns: AtomicUsize,
    requests: AtomicU64,
}

impl Ctx {
    /// Is shutdown in progress?
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || sorete_base::shutdown::requested()
    }

    /// Request shutdown (the `shutdown` op and tests use this).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The session store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }
}

/// The daemon.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind the listener and recover every session already on disk.
    /// Per-session recovery failures are logged and skipped — the daemon
    /// starts anyway and answers requests for broken sessions with their
    /// typed error.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let ctx = Arc::new(Ctx {
            store: SessionStore::new(),
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            cfg,
        });
        // Restart-time recovery: reattach every session directory found
        // under the data dir, in name order for deterministic logs.
        let mut names: Vec<String> = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&ctx.cfg.data_dir) {
            for entry in rd.flatten() {
                if entry.path().is_dir() {
                    if let Ok(name) = entry.file_name().into_string() {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        for name in names {
            match ctx
                .store
                .open(&ctx.cfg.data_dir, &name, ctx.cfg.max_sessions)
            {
                Ok((slot, _)) => {
                    if let Some(mut s) = slot.try_lock() {
                        install_interrupt(&ctx, &mut s.ps);
                        eprintln!(
                            "; session {}: recovered (replayed_ops={} cycles={} gen={:?})",
                            name,
                            s.replay.replayed_ops,
                            s.replay.replayed_cycles,
                            s.ps.wal_generation()
                        );
                    }
                }
                Err(e) => {
                    eprintln!(
                        "; session {}: recovery refused ({}): {}",
                        name, e.code, e.message
                    );
                }
            }
        }
        Ok(Server { listener, ctx })
    }

    /// The bound address (read the port after binding `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state handle (tests drive shutdown through it).
    pub fn ctx(&self) -> Arc<Ctx> {
        self.ctx.clone()
    }

    /// Accept loop. Returns after graceful shutdown has checkpointed every
    /// dirty session.
    pub fn run(self) -> std::io::Result<ServerReport> {
        let mut report = ServerReport::default();
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.ctx.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    report.connections += 1;
                    let held = self.ctx.conns.fetch_add(1, Ordering::SeqCst);
                    if held >= self.ctx.cfg.max_connections {
                        // Over the connection cap: answer once and close.
                        self.ctx.conns.fetch_sub(1, Ordering::SeqCst);
                        let mut s = stream;
                        let _ = s.write_all(
                            (Response::err(codes::OVERLOADED, "connection limit reached").render()
                                + "\n")
                                .as_bytes(),
                        );
                        continue;
                    }
                    let ctx = self.ctx.clone();
                    workers.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, &ctx);
                        ctx.conns.fetch_sub(1, Ordering::SeqCst);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
            workers.retain(|h| !h.is_finished());
        }
        // Graceful shutdown: stop admitting, let in-flight requests drain
        // (the blocking lock below waits for each one), checkpoint every
        // dirty session. A failed checkpoint is logged and counted, never
        // fatal — the WAL still holds the state for the next start.
        for (name, slot) in self.ctx.store.all() {
            let mut s = slot.lock();
            if s.dirty {
                match s.checkpoint() {
                    Ok(()) => {
                        report.checkpointed += 1;
                        eprintln!("; shutdown: session {} checkpointed", name);
                    }
                    Err(e) => {
                        report.checkpoint_failures += 1;
                        eprintln!(
                            "; shutdown: session {} checkpoint failed: {}",
                            name, e.message
                        );
                    }
                }
            }
        }
        for h in workers {
            let _ = h.join();
        }
        report.requests = self.ctx.requests.load(Ordering::SeqCst);
        Ok(report)
    }
}

/// Point the engine's interrupt flag at the server's stop state so SIGTERM
/// stops in-flight runs at a firing boundary.
fn install_interrupt(ctx: &Arc<Ctx>, ps: &mut ProductionSystem) {
    let flag = Arc::new(AtomicBool::new(false));
    ps.set_interrupt(flag.clone());
    let ctx = ctx.clone();
    std::thread::spawn(move || loop {
        if ctx.stopping() {
            flag.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
}

fn handle_connection(stream: TcpStream, ctx: &Arc<Ctx>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(ctx.cfg.read_timeout_ms)))?;
    stream.set_write_timeout(Some(Duration::from_millis(ctx.cfg.read_timeout_ms)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut frames: u64 = 0;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            // Timed out or interrupted: the client stalled past the read
            // deadline — drop the connection (sessions are untouched).
            Err(_) => return Ok(()),
        }
        if line.trim().is_empty() {
            continue;
        }
        frames += 1;
        ctx.requests.fetch_add(1, Ordering::SeqCst);
        let response = dispatch_line(line.trim_end(), ctx);

        // Fault injection happens strictly *after* the request has been
        // processed and committed, so a broken wire never un-does work.
        let fault = ctx
            .cfg
            .fault
            .filter(|f| f.every > 0 && frames.is_multiple_of(f.every));
        if let Some(f) = fault {
            match f.mode {
                NetFaultMode::Drop => return Ok(()), // close without responding
                NetFaultMode::Stall => std::thread::sleep(f.stall),
                NetFaultMode::Garbage => {
                    writer.write_all(b"%%%garbage-frame%%%\n")?;
                }
            }
        }
        writer.write_all((response + "\n").as_bytes())?;
        writer.flush()?;
    }
}

/// Parse and dispatch one protocol line, returning the rendered response.
/// Public so tests and the bench harness can drive a server in-process.
pub fn dispatch_line(line: &str, ctx: &Arc<Ctx>) -> String {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(resp) => return resp.render(),
    };
    dispatch(&req, ctx).render()
}

fn dispatch(req: &Request, ctx: &Arc<Ctx>) -> Response {
    // `health` and `shutdown` are admitted even while stopping: orchestrators
    // poll health to watch the drain.
    match req.op.as_str() {
        "health" => return op_health(ctx),
        "shutdown" => {
            ctx.request_stop();
            return Response::with(vec![("stopping".into(), Json::Bool(true))]);
        }
        _ => {}
    }
    if ctx.stopping() {
        return Response::err(codes::SHUTTING_DOWN, "server is shutting down");
    }
    match req.op.as_str() {
        "open-session" => op_open_session(req, ctx),
        "metrics" => op_metrics(req, ctx),
        "load-rules" | "assert-batch" | "retract" | "run" | "query-conflict-set" | "explain" => {
            with_session(req, ctx, |req, ctx, session| match req.op.as_str() {
                "load-rules" => op_load_rules(req, session),
                "assert-batch" => op_assert_batch(req, ctx, session),
                "retract" => op_retract(req, session),
                "run" => op_run(req, ctx, session),
                "query-conflict-set" => op_query_conflict_set(session),
                "explain" => op_explain(req, session),
                _ => unreachable!(),
            })
        }
        other => Response::err(codes::BAD_REQUEST, &format!("unknown op {:?}", other)),
    }
}

/// Resolve the request's session, take its lock (or answer `overloaded`),
/// run `f`, then publish the fresh byte gauge.
fn with_session(
    req: &Request,
    ctx: &Arc<Ctx>,
    f: impl FnOnce(&Request, &Arc<Ctx>, &mut Session) -> Response,
) -> Response {
    let name = match &req.session {
        Some(n) => n,
        None => return Response::err(codes::BAD_REQUEST, "missing \"session\""),
    };
    let slot = match ctx.store.get(name) {
        Some(s) => s,
        None => return Response::err(codes::NO_SUCH_SESSION, &format!("no session {:?}", name)),
    };
    let mut guard = match slot.try_lock() {
        Some(g) => g,
        None => return Response::err(codes::OVERLOADED, &format!("session {:?} is busy", name)),
    };
    let resp = f(req, ctx, &mut guard);
    slot.publish_bytes(&guard);
    resp
}

fn op_health(ctx: &Arc<Ctx>) -> Response {
    Response::with(vec![
        ("sessions".into(), Json::Int(ctx.store.len() as i64)),
        (
            "connections".into(),
            Json::Int(ctx.conns.load(Ordering::SeqCst) as i64),
        ),
        (
            "total_bytes".into(),
            Json::Int(ctx.store.total_bytes() as i64),
        ),
        ("stopping".into(), Json::Bool(ctx.stopping())),
    ])
}

fn op_open_session(req: &Request, ctx: &Arc<Ctx>) -> Response {
    let name = match &req.session {
        Some(n) => n.clone(),
        None => return Response::err(codes::BAD_REQUEST, "missing \"session\""),
    };
    match ctx
        .store
        .open(&ctx.cfg.data_dir, &name, ctx.cfg.max_sessions)
    {
        Ok((slot, existed)) => {
            let mut fields = vec![("existed".into(), Json::Bool(existed))];
            if let Some(mut s) = slot.try_lock() {
                if !existed {
                    install_interrupt(ctx, &mut s.ps);
                }
                fields.push(("recovered".into(), Json::Bool(s.recovered)));
                fields.push((
                    "replayed_ops".into(),
                    Json::Int(s.replay.replayed_ops as i64),
                ));
                if let Some(g) = s.ps.wal_generation() {
                    fields.push(("wal_generation".into(), Json::Int(g as i64)));
                }
                slot.publish_bytes(&s);
            }
            Response::with(fields)
        }
        Err(e) => Response::err(e.code, &e.message),
    }
}

fn op_metrics(req: &Request, ctx: &Arc<Ctx>) -> Response {
    // Server-level gauges always; a session's Prometheus text when named.
    let mut prom = format!(
        "# TYPE sorete_server_sessions gauge\nsorete_server_sessions {}\n\
         # TYPE sorete_server_total_bytes gauge\nsorete_server_total_bytes {}\n",
        ctx.store.len(),
        ctx.store.total_bytes()
    );
    if let Some(name) = &req.session {
        let slot = match ctx.store.get(name) {
            Some(s) => s,
            None => {
                return Response::err(codes::NO_SUCH_SESSION, &format!("no session {:?}", name))
            }
        };
        let guard = match slot.try_lock() {
            Some(g) => g,
            None => {
                return Response::err(codes::OVERLOADED, &format!("session {:?} is busy", name))
            }
        };
        guard.ps.record_metrics_snapshot();
        if let Some(text) = guard.ps.metrics_prometheus() {
            prom.push_str(&text);
        }
        slot.publish_bytes(&guard);
    }
    Response::with(vec![("prometheus".into(), Json::Str(prom))])
}

fn op_load_rules(req: &Request, session: &mut Session) -> Response {
    let src = match req.body.get("program").and_then(|v| v.as_str()) {
        Some(s) => s,
        None => return Response::err(codes::BAD_REQUEST, "missing \"program\""),
    };
    match session.load_rules(src) {
        Ok(()) => Response::with(vec![(
            "rules".into(),
            Json::Int(session.ps.loaded_rules().len() as i64),
        )]),
        Err(e) => Response::err(e.code, &e.message),
    }
}

fn op_assert_batch(req: &Request, ctx: &Arc<Ctx>, session: &mut Session) -> Response {
    if let Some(r) = admission_bytes_check(ctx) {
        return r;
    }
    let facts = match req.body.get("facts").and_then(|v| v.as_arr()) {
        Some(a) => a,
        None => return Response::err(codes::BAD_REQUEST, "missing \"facts\""),
    };
    let deadline = deadline_of(req, ctx);
    let start = Instant::now();
    let mut tags: Vec<Json> = Vec::with_capacity(facts.len());
    for (i, f) in facts.iter().enumerate() {
        if start.elapsed() >= deadline {
            // Commit what was asserted, then report the timeout with the
            // partial count — the client knows exactly how far it got.
            session.dirty = true;
            let _ = session.ps.sync_wal();
            let mut r = Response::err(codes::TIMEOUT, "deadline exceeded mid-batch");
            r.fields.push(("asserted".into(), Json::Int(i as i64)));
            return r;
        }
        let (class, slots) = match json::fact_from_json(f) {
            Ok(x) => x,
            Err(e) => return Response::err(codes::BAD_REQUEST, &format!("facts[{}]: {}", i, e)),
        };
        match session.ps.assert_wme(class, slots) {
            Ok(tag) => tags.push(Json::Int(tag.raw() as i64)),
            Err(e) => return Response::err(codes::RUN_ERROR, &format!("facts[{}]: {}", i, e)),
        }
    }
    session.dirty = true;
    if let Err(e) = session.ps.sync_wal() {
        return Response::err(codes::DURABILITY, &e.to_string());
    }
    Response::with(vec![
        ("count".into(), Json::Int(tags.len() as i64)),
        ("tags".into(), Json::Arr(tags)),
    ])
}

fn op_retract(req: &Request, session: &mut Session) -> Response {
    let tag = match req.body.get("tag").and_then(|v| v.as_u64()) {
        Some(t) => t,
        None => return Response::err(codes::BAD_REQUEST, "missing \"tag\""),
    };
    match session.ps.retract_wme(TimeTag::new(tag)) {
        Ok(()) => {
            session.dirty = true;
            if let Err(e) = session.ps.sync_wal() {
                return Response::err(codes::DURABILITY, &e.to_string());
            }
            Response::ok()
        }
        Err(e) => Response::err(codes::RUN_ERROR, &e.to_string()),
    }
}

fn op_run(req: &Request, ctx: &Arc<Ctx>, session: &mut Session) -> Response {
    if let Some(r) = admission_bytes_check(ctx) {
        return r;
    }
    let limit = req.body.get("limit").and_then(|v| v.as_u64());
    let deadline = deadline_of(req, ctx);
    // The deadline rides on the engine's wall-clock guard, so the run stops
    // at a firing boundary and every committed cycle stays intact.
    let saved = session.ps.guards();
    let mut guards = saved;
    guards.max_wall = Some(match saved.max_wall {
        Some(w) => w.min(deadline),
        None => deadline,
    });
    session.ps.set_guards(guards);
    let outcome = session.ps.run(limit);
    session.ps.set_guards(saved);
    session.dirty = true;
    if let Err(e) = session.ps.sync_wal() {
        return Response::err(codes::DURABILITY, &e.to_string());
    }
    let fired = Json::Int(outcome.fired as i64);
    match &outcome.reason {
        StopReason::Quiescence | StopReason::Halt | StopReason::Limit | StopReason::Interrupted => {
            Response::with(vec![
                ("fired".into(), fired),
                ("reason".into(), Json::Str(outcome.reason.label().into())),
                ("cycle".into(), Json::Int(session.ps.cycle() as i64)),
                (
                    "conflict_set_len".into(),
                    Json::Int(session.ps.conflict_set_len() as i64),
                ),
            ])
        }
        StopReason::ResourceExhausted(GuardViolation::WallClock { .. }) => {
            let mut r = Response::err(codes::TIMEOUT, "run deadline exceeded");
            r.fields.push(("fired".into(), fired));
            r
        }
        StopReason::ResourceExhausted(v) => {
            let mut r = Response::err(codes::RUN_ERROR, &format!("guard tripped: {:?}", v));
            r.fields.push(("fired".into(), fired));
            r
        }
        StopReason::Error(e) => {
            let mut r = Response::err(codes::RUN_ERROR, &e.to_string());
            r.fields.push(("fired".into(), fired));
            r
        }
        StopReason::Panicked { rule, message } => {
            let mut r = Response::err(
                codes::RUN_ERROR,
                &format!("panic in rule {}: {}", rule, message),
            );
            r.fields.push(("fired".into(), fired));
            r
        }
        StopReason::Quarantined { rules } => {
            let names: Vec<Json> = rules.iter().map(|r| Json::Str(r.to_string())).collect();
            let mut r = Response::err(codes::QUARANTINED, "only quarantined rules remain");
            r.fields.push(("fired".into(), fired));
            r.fields.push(("rules".into(), Json::Arr(names)));
            r
        }
    }
}

/// Render the conflict set exactly like the CLI's `--print-cs`, one line
/// per entry, recency-descending — the byte-comparison format the
/// differential tests diff.
pub fn conflict_lines(ps: &ProductionSystem) -> Vec<String> {
    let mut items = ps.conflict_items();
    items.sort_by(|a, b| b.recency.cmp(&a.recency));
    items
        .iter()
        .map(|item| {
            let rows: Vec<Vec<u64>> = item
                .rows
                .iter()
                .map(|r| r.iter().map(|t| t.raw()).collect())
                .collect();
            format!(
                "rule#{}{} rows={:?} aggregates={:?}",
                item.key.rule().index(),
                if item.key.is_soi() { " [SOI]" } else { "" },
                rows,
                item.aggregates
                    .iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
            )
        })
        .collect()
}

fn op_query_conflict_set(session: &mut Session) -> Response {
    let lines: Vec<Json> = conflict_lines(&session.ps)
        .into_iter()
        .map(Json::Str)
        .collect();
    Response::with(vec![
        ("entries".into(), Json::Int(lines.len() as i64)),
        ("conflict_set".into(), Json::Arr(lines)),
        (
            "firings".into(),
            Json::Int(session.ps.stats().firings as i64),
        ),
        ("wm".into(), Json::Int(session.ps.wm().len() as i64)),
    ])
}

fn op_explain(req: &Request, session: &mut Session) -> Response {
    let rule = match req.body.get("rule").and_then(|v| v.as_str()) {
        Some(r) => r,
        None => return Response::err(codes::BAD_REQUEST, "missing \"rule\""),
    };
    match session.ps.explain(rule) {
        Ok(text) => Response::with(vec![("explain".into(), Json::Str(text))]),
        Err(e) => Response::err(codes::BAD_REQUEST, &e.to_string()),
    }
}

fn deadline_of(req: &Request, ctx: &Arc<Ctx>) -> Duration {
    Duration::from_millis(
        req.deadline_ms
            .unwrap_or(ctx.cfg.default_deadline_ms)
            .max(1),
    )
}

fn admission_bytes_check(ctx: &Arc<Ctx>) -> Option<Response> {
    let total = ctx.store.total_bytes();
    if total > ctx.cfg.max_total_bytes {
        return Some(Response::err(
            codes::MEMORY_LIMIT,
            &format!(
                "aggregate working memory {} bytes exceeds limit {}",
                total, ctx.cfg.max_total_bytes
            ),
        ));
    }
    None
}
