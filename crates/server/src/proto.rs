//! The line protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, in order. A request is a
//! JSON object with an `op` field; everything else is op-specific:
//!
//! ```text
//! {"op":"open-session","session":"a"}
//! {"op":"load-rules","session":"a","program":"(p R [t ^x 1] (halt))"}
//! {"op":"assert-batch","session":"a","facts":[{"class":"t","slots":{"x":1}}]}
//! {"op":"run","session":"a","limit":100,"deadline_ms":2000}
//! {"op":"query-conflict-set","session":"a"}
//! ```
//!
//! Success responses are `{"ok":true,...}`; failures are
//! `{"ok":false,"error":"<code>","message":"..."}` where `<code>` is one of
//! the stable [`codes`] the caller can branch on. Malformed frames get a
//! `bad-frame` response and the connection stays open — a garbage line must
//! never take down a session, let alone the daemon.

use sorete_lang::json::Json;

/// Stable machine-readable error codes.
pub mod codes {
    /// The line was not valid JSON (or not an object).
    pub const BAD_FRAME: &str = "bad-frame";
    /// JSON was well-formed but the request was not (unknown op, missing
    /// or ill-typed field).
    pub const BAD_REQUEST: &str = "bad-request";
    /// The named session does not exist (and the op does not create one).
    pub const NO_SUCH_SESSION: &str = "no-such-session";
    /// The session is busy serving another request — explicit backpressure,
    /// never unbounded queueing. Retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// Admission control: the server is at its session-count limit.
    pub const SESSION_LIMIT: &str = "session-limit";
    /// Admission control: aggregate working-memory bytes are at the limit.
    pub const MEMORY_LIMIT: &str = "memory-limit";
    /// The request exceeded its deadline. For `run` the engine stopped at
    /// a firing boundary, so committed cycles are intact.
    pub const TIMEOUT: &str = "timeout";
    /// The run stopped on an engine error (RHS error, panic fence).
    pub const RUN_ERROR: &str = "run-error";
    /// WAL/checkpoint problem — includes generation mismatches at
    /// recovery, which the server refuses rather than guessing.
    pub const DURABILITY: &str = "durability";
    /// The run went quiescent only because rules are quarantined.
    pub const QUARANTINED: &str = "quarantined";
    /// The server is shutting down and no longer admits work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
}

/// A parsed request frame.
#[derive(Clone, Debug)]
pub struct Request {
    /// The operation name (`open-session`, `run`, ...).
    pub op: String,
    /// Target session, when the op needs one.
    pub session: Option<String>,
    /// Per-request deadline in milliseconds (server default applies when
    /// absent).
    pub deadline_ms: Option<u64>,
    /// The whole frame, for op-specific fields.
    pub body: Json,
}

/// Parse one protocol line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, Response> {
    let body = match sorete_lang::json::parse(line) {
        Ok(v) => v,
        Err(e) => return Err(Response::err(codes::BAD_FRAME, &e)),
    };
    if body.as_obj().is_none() {
        return Err(Response::err(codes::BAD_FRAME, "frame is not an object"));
    }
    let op = match body.get("op").and_then(|v| v.as_str()) {
        Some(s) => s.to_string(),
        None => return Err(Response::err(codes::BAD_REQUEST, "missing \"op\"")),
    };
    let session = body
        .get("session")
        .and_then(|v| v.as_str())
        .map(|s| s.to_string());
    let deadline_ms = body.get("deadline_ms").and_then(|v| v.as_u64());
    Ok(Request {
        op,
        session,
        deadline_ms,
        body,
    })
}

/// A response frame, rendered to one JSON line.
#[derive(Clone, Debug)]
pub struct Response {
    /// Did the request succeed?
    pub ok: bool,
    /// Error code (only when `ok == false`).
    pub error: Option<String>,
    /// Human-readable detail (only when `ok == false`).
    pub message: Option<String>,
    /// Op-specific payload fields, merged into the response object.
    pub fields: Vec<(String, Json)>,
}

impl Response {
    /// A bare success.
    pub fn ok() -> Response {
        Response {
            ok: true,
            error: None,
            message: None,
            fields: Vec::new(),
        }
    }

    /// A success with payload fields.
    pub fn with(fields: Vec<(String, Json)>) -> Response {
        Response {
            ok: true,
            error: None,
            message: None,
            fields,
        }
    }

    /// A failure with a stable code and a human-readable message.
    pub fn err(code: &str, message: &str) -> Response {
        Response {
            ok: false,
            error: Some(code.to_string()),
            message: Some(message.to_string()),
            fields: Vec::new(),
        }
    }

    /// Render to one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut obj = vec![("ok".to_string(), Json::Bool(self.ok))];
        if let Some(e) = &self.error {
            obj.push(("error".to_string(), Json::Str(e.clone())));
        }
        if let Some(m) = &self.message {
            obj.push(("message".to_string(), Json::Str(m.clone())));
        }
        obj.extend(self.fields.iter().cloned());
        Json::Obj(obj).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_request() {
        let r = parse_request(r#"{"op":"health"}"#).unwrap();
        assert_eq!(r.op, "health");
        assert!(r.session.is_none());
        assert!(r.deadline_ms.is_none());
    }

    #[test]
    fn parses_full_request() {
        let r =
            parse_request(r#"{"op":"run","session":"s1","deadline_ms":250,"limit":10}"#).unwrap();
        assert_eq!(r.op, "run");
        assert_eq!(r.session.as_deref(), Some("s1"));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.body.get("limit").and_then(|v| v.as_u64()), Some(10));
    }

    #[test]
    fn garbage_is_bad_frame_not_bad_request() {
        let e = parse_request("%%%garbage%%%").unwrap_err();
        assert_eq!(e.error.as_deref(), Some(codes::BAD_FRAME));
        let e = parse_request("[1,2,3]").unwrap_err();
        assert_eq!(e.error.as_deref(), Some(codes::BAD_FRAME));
        let e = parse_request(r#"{"no_op":1}"#).unwrap_err();
        assert_eq!(e.error.as_deref(), Some(codes::BAD_REQUEST));
    }

    #[test]
    fn response_renders_stable_shape() {
        assert_eq!(Response::ok().render(), r#"{"ok":true}"#);
        let e = Response::err(codes::TIMEOUT, "deadline exceeded");
        assert_eq!(
            e.render(),
            r#"{"ok":false,"error":"timeout","message":"deadline exceeded"}"#
        );
        let w = Response::with(vec![("fired".into(), Json::Int(3))]);
        assert_eq!(w.render(), r#"{"ok":true,"fired":3}"#);
    }
}
