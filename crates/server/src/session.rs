//! Named durable sessions and the store that hosts them.
//!
//! A session is one [`ProductionSystem`] with its own directory under the
//! server's data dir:
//!
//! ```text
//! <data-dir>/<name>/program.ops    rule source (replayed on recovery)
//! <data-dir>/<name>/session.ckpt   latest checkpoint (WAL base)
//! <data-dir>/<name>/session.wal    write-ahead log past the checkpoint
//! <data-dir>/<name>/crash/         crash bundles from this session
//! ```
//!
//! Recovery order matches the CLI runner: load `program.ops`, restore the
//! checkpoint, then attach the WAL — which refuses generation mismatches
//! (the WAL and checkpoint must pair up; the server surfaces that as a
//! `durability` error rather than guessing which state is real).
//!
//! Concurrency: the store holds each session behind its own mutex. A
//! request takes the lock with `try_lock`; if the session is busy the
//! request is rejected with `overloaded` — explicit backpressure instead of
//! an unbounded queue. Aggregate admission control reads the per-session
//! byte gauge that each request refreshes on its way out, so it never has
//! to lock a busy session to size the fleet.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

use sorete_core::{CoreError, MatcherKind, ProductionSystem, SupervisorConfig, WalReplayReport};
use sorete_reldb::WalOptions;

/// A session-level failure, tagged with a protocol error code.
#[derive(Clone, Debug)]
pub struct SessionError {
    /// Protocol error code (`crate::proto::codes`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl SessionError {
    fn new(code: &'static str, message: impl Into<String>) -> SessionError {
        SessionError {
            code,
            message: message.into(),
        }
    }
}

fn durability_err(e: &CoreError) -> SessionError {
    SessionError::new(crate::proto::codes::DURABILITY, e.to_string())
}

/// One live session: a durable engine plus its bookkeeping.
pub struct Session {
    /// Session name (also the directory name).
    pub name: String,
    /// The session directory.
    pub dir: PathBuf,
    /// The engine.
    pub ps: ProductionSystem,
    /// Mutated since the last checkpoint? Graceful shutdown checkpoints
    /// only dirty sessions.
    pub dirty: bool,
    /// What WAL recovery found when the session was (re)opened.
    pub replay: WalReplayReport,
    /// Was state recovered (checkpoint restored or WAL ops replayed)?
    pub recovered: bool,
}

impl Session {
    /// Open or recover the session named `name` under `data_dir`.
    pub fn open(data_dir: &Path, name: &str) -> Result<Session, SessionError> {
        if !valid_name(name) {
            return Err(SessionError::new(
                crate::proto::codes::BAD_REQUEST,
                format!("invalid session name {:?}", name),
            ));
        }
        let dir = data_dir.join(name);
        std::fs::create_dir_all(&dir).map_err(|e| {
            SessionError::new(
                crate::proto::codes::DURABILITY,
                format!("create {}: {}", dir.display(), e),
            )
        })?;
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.enable_metrics();
        ps.set_crash_dir(dir.join("crash"));

        let program_path = dir.join("program.ops");
        if let Ok(src) = std::fs::read_to_string(&program_path) {
            ps.load_program(&src).map_err(|e| {
                SessionError::new(
                    crate::proto::codes::BAD_REQUEST,
                    format!("recover {}: {}", program_path.display(), e),
                )
            })?;
        }

        let ckpt_path = dir.join("session.ckpt");
        let mut recovered = false;
        if ckpt_path.exists() {
            ps.resume_from_file(&ckpt_path)
                .map_err(|e| durability_err(&e))?;
            recovered = true;
        }
        let wal_path = dir.join("session.wal");
        let replay = ps
            .attach_wal(&wal_path, WalOptions::default())
            .map_err(|e| durability_err(&e))?;
        recovered = recovered || replay.replayed_ops > 0;

        // Supervise with the session's checkpoint as the degradation
        // target, so hard-budget halts and interrupts cut a checkpoint.
        ps.enable_supervision(SupervisorConfig {
            checkpoint_path: Some(ckpt_path),
            ..SupervisorConfig::default()
        });

        Ok(Session {
            name: name.to_string(),
            dir,
            ps,
            dirty: false,
            replay,
            recovered,
        })
    }

    /// Install new rules: persist the source (so recovery can replay it),
    /// then load it into the engine.
    pub fn load_rules(&mut self, src: &str) -> Result<(), SessionError> {
        // Validate before persisting — a bad program must not poison the
        // session directory for the next recovery.
        let mut probe = ProductionSystem::new(MatcherKind::Rete);
        probe
            .load_program(src)
            .map_err(|e| SessionError::new(crate::proto::codes::BAD_REQUEST, e.to_string()))?;
        let path = self.dir.join("program.ops");
        let mut text = std::fs::read_to_string(&path).unwrap_or_default();
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(src);
        text.push('\n');
        std::fs::write(&path, &text).map_err(|e| {
            SessionError::new(
                crate::proto::codes::DURABILITY,
                format!("write {}: {}", path.display(), e),
            )
        })?;
        self.ps
            .load_program(src)
            .map_err(|e| SessionError::new(crate::proto::codes::BAD_REQUEST, e.to_string()))?;
        Ok(())
    }

    /// Checkpoint the session (rotating the WAL) and clear the dirty flag.
    pub fn checkpoint(&mut self) -> Result<(), SessionError> {
        let path = self.dir.join("session.ckpt");
        self.ps
            .checkpoint_to(&path)
            .map_err(|e| durability_err(&e))?;
        self.dirty = false;
        Ok(())
    }

    /// Live working-memory bytes, for admission control.
    pub fn bytes(&self) -> u64 {
        self.ps.memory_report().total_bytes()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

/// A session slot: the mutex plus a byte gauge readable without the lock.
pub struct SessionSlot {
    session: Mutex<Session>,
    /// Last observed WM bytes, refreshed after every request that held the
    /// lock. Admission control sums these gauges.
    bytes: AtomicU64,
}

impl SessionSlot {
    /// Try to take the session for one request. `None` means busy.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, Session>> {
        match self.session.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    /// Block until the session is free (shutdown checkpointing only — the
    /// request path must use [`SessionSlot::try_lock`]).
    pub fn lock(&self) -> MutexGuard<'_, Session> {
        match self.session.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Refresh the byte gauge from a held guard.
    pub fn publish_bytes(&self, g: &Session) {
        self.bytes.store(g.bytes(), Ordering::Relaxed);
    }

    /// Last published WM bytes.
    pub fn published_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// The store of named sessions.
#[derive(Default)]
pub struct SessionStore {
    slots: Mutex<HashMap<String, Arc<SessionSlot>>>,
}

impl SessionStore {
    /// New, empty.
    pub fn new() -> SessionStore {
        SessionStore::default()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of every session's published byte gauge.
    pub fn total_bytes(&self) -> u64 {
        self.slots
            .lock()
            .unwrap()
            .values()
            .map(|s| s.published_bytes())
            .sum()
    }

    /// Look up a session.
    pub fn get(&self, name: &str) -> Option<Arc<SessionSlot>> {
        self.slots.lock().unwrap().get(name).cloned()
    }

    /// All slots, for shutdown checkpointing and recovery scans.
    pub fn all(&self) -> Vec<(String, Arc<SessionSlot>)> {
        let mut v: Vec<_> = self
            .slots
            .lock()
            .unwrap()
            .iter()
            .map(|(k, s)| (k.clone(), s.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Open (or recover) a session, enforcing the session-count limit.
    /// Returns `(slot, existed_already)`.
    pub fn open(
        &self,
        data_dir: &Path,
        name: &str,
        max_sessions: usize,
    ) -> Result<(Arc<SessionSlot>, bool), SessionError> {
        if let Some(slot) = self.get(name) {
            return Ok((slot, true));
        }
        // Admission check before the (possibly slow) recovery work.
        if self.len() >= max_sessions {
            return Err(SessionError::new(
                crate::proto::codes::SESSION_LIMIT,
                format!("session limit {} reached", max_sessions),
            ));
        }
        let session = Session::open(data_dir, name)?;
        let slot = Arc::new(SessionSlot {
            bytes: AtomicU64::new(session.bytes()),
            session: Mutex::new(session),
        });
        let mut slots = self.slots.lock().unwrap();
        // Double-checked under the map lock: a racing open of the same name
        // keeps the first slot (ours is dropped, releasing its WAL handle).
        if let Some(existing) = slots.get(name) {
            return Ok((existing.clone(), true));
        }
        if slots.len() >= max_sessions {
            return Err(SessionError::new(
                crate::proto::codes::SESSION_LIMIT,
                format!("session limit {} reached", max_sessions),
            ));
        }
        slots.insert(name.to_string(), slot.clone());
        Ok((slot, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sorete-session-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const PROG: &str = "(p bump { [n ^v 1] <S> } (set-modify <S> ^v 2))";

    #[test]
    fn open_load_checkpoint_recover_round_trip() {
        let dir = temp_dir("round-trip");
        {
            let mut s = Session::open(&dir, "a").unwrap();
            assert!(!s.recovered);
            s.load_rules(PROG).unwrap();
            s.ps.make_str("n", &[("v", sorete_base::Value::Int(1))])
                .unwrap();
            s.ps.sync_wal().unwrap();
            s.dirty = true;
            s.checkpoint().unwrap();
        }
        let s = Session::open(&dir, "a").unwrap();
        assert!(s.recovered);
        assert_eq!(s.ps.wm().len(), 1);
        assert!(s.ps.rule("bump").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_mismatch_is_refused() {
        let dir = temp_dir("gen-mismatch");
        {
            let mut s = Session::open(&dir, "a").unwrap();
            s.load_rules(PROG).unwrap();
            s.ps.make_str("n", &[("v", sorete_base::Value::Int(1))])
                .unwrap();
            s.ps.sync_wal().unwrap();
            s.checkpoint().unwrap();
            s.ps.make_str("n", &[("v", sorete_base::Value::Int(1))])
                .unwrap();
            s.ps.sync_wal().unwrap();
        }
        // Roll the checkpoint back two generations by deleting it and
        // keeping the rotated WAL: the pairing check must refuse.
        std::fs::remove_file(dir.join("a").join("session.ckpt")).unwrap();
        let err = match Session::open(&dir, "a") {
            Err(e) => e,
            Ok(_) => panic!("expected a generation-mismatch refusal"),
        };
        assert_eq!(err.code, crate::proto::codes::DURABILITY);
        assert!(err.message.contains("generation"), "{}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_enforces_session_limit_and_backpressure() {
        let dir = temp_dir("limits");
        let store = SessionStore::new();
        let (slot_a, existed) = store.open(&dir, "a", 2).unwrap();
        assert!(!existed);
        let (_, existed) = store.open(&dir, "a", 2).unwrap();
        assert!(existed, "reopening is idempotent");
        store.open(&dir, "b", 2).unwrap();
        let err = match store.open(&dir, "c", 2) {
            Err(e) => e,
            Ok(_) => panic!("expected the session limit to trip"),
        };
        assert_eq!(err.code, crate::proto::codes::SESSION_LIMIT);

        let held = slot_a.try_lock().unwrap();
        assert!(slot_a.try_lock().is_none(), "busy session rejects");
        drop(held);
        assert!(slot_a.try_lock().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_names_are_rejected() {
        let dir = temp_dir("names");
        for bad in ["", "../escape", "a/b", "x y"] {
            let err = match Session::open(&dir, bad) {
                Err(e) => e,
                Ok(_) => panic!("expected name {:?} to be rejected", bad),
            };
            assert_eq!(err.code, crate::proto::codes::BAD_REQUEST, "{:?}", bad);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
