//! Integration tests for the metrics registry: single-sourcing against
//! `RunStats`/`MatchStats`, byte-level memory accounting, and JSONL
//! snapshot-stream flush behaviour.

use sorete::base::{Metrics, SnapshotWriter, Value};
use sorete::core::{MatcherKind, ProductionSystem, RecoveryPolicy};

/// The J1-style workload from the bench crate: an equality join over
/// stocks/orders plus a negated-CE rule, with a retract-heavy tail.
const PROGRAM: &str = "
(literalize stock sym price)
(literalize order sym qty)
(literalize seen sym)
(p match-order
    { [stock ^sym <s> ^price <p>] <S> }
    { [order ^sym <s>] <O> }
    (make seen ^sym <s>)
    (set-remove <O>))
(p lone-stock
    { [stock ^sym <s>] <S> }
    -(order ^sym <s>)
    -(seen ^sym <s>)
    (write lone <s>))
";

fn loaded(kind: MatcherKind) -> ProductionSystem {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(PROGRAM).unwrap();
    ps
}

fn populate(ps: &mut ProductionSystem, n: i64) -> Vec<sorete::base::TimeTag> {
    let mut stock_tags = Vec::new();
    for i in 0..n {
        let tag = ps
            .make_str(
                "stock",
                &[("sym", Value::Int(i % 7)), ("price", Value::Int(100 + i))],
            )
            .unwrap();
        stock_tags.push(tag);
        if i % 2 == 0 {
            ps.make_str(
                "order",
                &[("sym", Value::Int(i % 7)), ("qty", Value::Int(i))],
            )
            .unwrap();
        }
    }
    stock_tags
}

/// Satellite: the per-backend `MatchStats`/`RunStats` counters and the
/// metrics registry must agree exactly — the registry samples them as its
/// single source of truth, so any divergence is a wiring regression.
#[test]
fn registry_counters_equal_stats_on_every_backend() {
    for kind in [
        MatcherKind::Rete,
        MatcherKind::ReteScan,
        MatcherKind::Treat,
        MatcherKind::Naive,
    ] {
        let mut ps = loaded(kind);
        ps.enable_metrics();
        populate(&mut ps, 12);
        ps.run(Some(50));
        ps.record_metrics_snapshot();

        let rs = ps.stats().clone();
        let ms = ps.match_stats();
        let m = ps.metrics();
        let v = |family: &str| {
            m.with(|r| r.value(family, ""))
                .flatten()
                .unwrap_or_else(|| panic!("{}: metric {} missing", ps.matcher_name(), family))
        };
        assert_eq!(v("sorete_firings_total"), rs.firings, "{:?}", kind);
        assert_eq!(v("sorete_actions_total"), rs.actions, "{:?}", kind);
        assert_eq!(v("sorete_makes_total"), rs.makes, "{:?}", kind);
        assert_eq!(v("sorete_removes_total"), rs.removes, "{:?}", kind);
        assert_eq!(v("sorete_modifies_total"), rs.modifies, "{:?}", kind);
        assert_eq!(v("sorete_writes_total"), rs.writes, "{:?}", kind);
        assert_eq!(
            v("sorete_skipped_actions_total"),
            rs.skipped_actions,
            "{:?}",
            kind
        );
        assert_eq!(v("sorete_rolled_back_total"), rs.rolled_back, "{:?}", kind);
        assert_eq!(
            v("sorete_match_alpha_activations_total"),
            ms.alpha_activations,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_beta_activations_total"),
            ms.beta_activations,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_join_tests_total"),
            ms.join_tests,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_tokens_created_total"),
            ms.tokens_created,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_tokens_deleted_total"),
            ms.tokens_deleted,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_snode_activations_total"),
            ms.snode_activations,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_aggregate_updates_total"),
            ms.aggregate_updates,
            "{:?}",
            kind
        );
        assert_eq!(
            v("sorete_match_index_probes_total"),
            ms.index_probes,
            "{:?}",
            kind
        );
        assert_eq!(v("sorete_cycles_total"), ps.current_cycle(), "{:?}", kind);
        assert_eq!(
            m.with(|r| r.value("sorete_wm_size", "")).flatten(),
            Some(ps.wm().len() as u64),
            "{:?}",
            kind
        );
    }
}

/// Acceptance: alpha/beta/token byte gauges are nonzero under load and
/// shrink after retract-heavy cycles (live-set methodology).
#[test]
fn memory_gauges_shrink_after_retracts() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize stock sym price)
         (literalize order sym qty)
         (p pair (stock ^sym <s>) (order ^sym <s>) (write pair <s>))",
    )
    .unwrap();
    ps.enable_metrics();
    let stock_tags = populate_raw(&mut ps, 30);
    ps.record_metrics_snapshot();
    let m = ps.metrics();
    let gauge = |m: &Metrics, family: &str, region: &str| {
        m.with(|r| r.value(family, region)).flatten().unwrap_or(0)
    };
    let alpha_before = gauge(&m, "sorete_memory_bytes", "alpha");
    let beta_before = gauge(&m, "sorete_memory_bytes", "beta");
    let tokens_before = gauge(&m, "sorete_memory_bytes", "tokens");
    assert!(alpha_before > 0, "alpha bytes under load");
    assert!(beta_before > 0, "beta bytes under load");
    assert!(tokens_before > 0, "token bytes under load");

    for tag in stock_tags {
        ps.retract_wme(tag).unwrap();
    }
    ps.record_metrics_snapshot();
    let alpha_after = gauge(&m, "sorete_memory_bytes", "alpha");
    let beta_after = gauge(&m, "sorete_memory_bytes", "beta");
    let tokens_after = gauge(&m, "sorete_memory_bytes", "tokens");
    assert!(
        alpha_after < alpha_before,
        "alpha bytes shrink: {} -> {}",
        alpha_before,
        alpha_after
    );
    assert!(
        beta_after < beta_before,
        "beta bytes shrink: {} -> {}",
        beta_before,
        beta_after
    );
    assert!(
        tokens_after < tokens_before,
        "token bytes shrink: {} -> {}",
        tokens_before,
        tokens_after
    );
}

fn populate_raw(ps: &mut ProductionSystem, n: i64) -> Vec<sorete::base::TimeTag> {
    let mut tags = Vec::new();
    for i in 0..n {
        tags.push(
            ps.make_str(
                "stock",
                &[("sym", Value::Int(i)), ("price", Value::Int(100 + i))],
            )
            .unwrap(),
        );
        ps.make_str("order", &[("sym", Value::Int(i)), ("qty", Value::Int(1))])
            .unwrap();
    }
    tags
}

/// Acceptance: the γ-memory gauge is nonzero while a set-oriented rule has
/// candidates and shrinks once the set is consumed.
#[test]
fn gamma_gauge_tracks_soi_lifecycle() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize item s)
         (p sweep { [item ^s pending] <P> } (set-remove <P>) (write swept (count <P>)))",
    )
    .unwrap();
    ps.enable_metrics();
    for _ in 0..8 {
        ps.make_str("item", &[("s", Value::sym("pending"))])
            .unwrap();
    }
    ps.record_metrics_snapshot();
    let m = ps.metrics();
    let gamma = |m: &Metrics, fam: &str| m.with(|r| r.value(fam, "gamma")).flatten().unwrap_or(0);
    let bytes_before = gamma(&m, "sorete_memory_bytes");
    let sois_before = gamma(&m, "sorete_memory_entries");
    assert!(bytes_before > 0, "gamma bytes with pending candidates");
    assert_eq!(sois_before, 1, "one candidate SOI");

    ps.run(Some(5));
    ps.record_metrics_snapshot();
    let bytes_after = gamma(&m, "sorete_memory_bytes");
    assert!(
        bytes_after < bytes_before,
        "gamma shrinks after the set fires: {} -> {}",
        bytes_before,
        bytes_after
    );
    // The matcher-event counters expose the S-node token protocol.
    let kind = |m: &Metrics, k: &str| {
        m.with(|r| r.value("sorete_matcher_events_total", k))
            .flatten()
            .unwrap_or(0)
    };
    ps.record_metrics_snapshot();
    assert!(kind(&m, "soi_plus") >= 1, "at least one + token");
    assert!(kind(&m, "gamma_created") >= 1);
    assert!(kind(&m, "gamma_dropped") >= 1);
}

/// Satellite: the JSONL snapshot stream must be flushed on engine
/// halt/error paths — here a `RecoveryPolicy::Rollback` run whose failing
/// firing is rolled back — and on drop, without an explicit flush call.
#[test]
fn metrics_stream_flushes_on_rollback_and_drop() {
    let dir = std::env::temp_dir().join("sorete-metrics-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rollback-stream.jsonl");
    {
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(
            "(literalize item s)
             (p poison (item ^s go) (modify 1 ^bogus 1))",
        )
        .unwrap();
        ps.set_recovery_policy(RecoveryPolicy::Rollback);
        ps.set_metrics_stream(SnapshotWriter::create(&path).unwrap());
        ps.make_str("item", &[("s", Value::sym("go"))]).unwrap();
        let outcome = ps.run(None);
        assert!(
            matches!(outcome.reason, sorete::core::StopReason::Error(_)),
            "{:?}",
            outcome.reason
        );
        assert!(ps.stats().rolled_back >= 1);
        assert!(ps.metrics_stream_written() >= 1, "snapshot streamed");
        // No flush_trace() here: drop must flush the buffered lines.
    }
    let jsonl = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty(), "stream flushed on drop");
    // The rolled-back cycle still produced a snapshot with its counter.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"sorete_rolled_back_total\":1")),
        "{}",
        jsonl
    );
}

/// The snapshot ring is bounded by the configured capacity.
#[test]
fn snapshot_ring_respects_capacity() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize item n)
         (p consume (item ^n <n>) (remove 1))",
    )
    .unwrap();
    ps.set_metrics_capacity(4);
    for i in 0..20 {
        ps.make_str("item", &[("n", Value::Int(i))]).unwrap();
    }
    ps.run(Some(30));
    let m = ps.metrics();
    let kept = m.with(|r| r.snapshots().count()).unwrap();
    assert!(kept <= 4, "ring bounded: kept {}", kept);
    assert!(ps.current_cycle() >= 10, "enough cycles ran");
}
