//! Parallel-execution determinism: the partitioned multi-threaded backend
//! must be *bitwise* reproducible. Because the rule→shard assignment is
//! fixed (round-robin over [`sorete::core::PARTITIONS`] shards) and the
//! per-shard delta buffers merge in shard order, the logical delta stream
//! — and therefore every downstream artifact: trace events, conflict-set
//! ordering, firing sequence, checkpoints — is byte-identical at every
//! `--jobs` level. These tests pin that invariant:
//!
//! 1. a seeded proptest drives random op streams through all four matcher
//!    kinds at `jobs ∈ {1, 2, 4}` and demands byte-identical logical
//!    `TraceEvent` JSON and byte-identical final checkpoints;
//! 2. a fixed multi-rule workload checks `--jobs 1..=8` all arrive at the
//!    `--jobs 1` conflict set (same items, same resolution order) and the
//!    same firing sequence;
//! 3. the parallel backend is cross-checked against the monolithic one at
//!    the canonical (order-blind) level, the same standard the PR 3
//!    equivalence suite applies between matcher algorithms.

use proptest::prelude::*;
use sorete::core::{MatcherKind, ProductionSystem};
use sorete_base::{TraceEvent, Value};
use std::collections::BTreeSet;

const KINDS: [MatcherKind; 4] = [
    MatcherKind::Rete,
    MatcherKind::ReteScan,
    MatcherKind::Treat,
    MatcherKind::Naive,
];

/// Multi-rule program: several rules spread across shards, a join, a
/// negation, and WM-mutating right-hand sides so firings feed back into
/// the match phase.
const PROGRAM: &str = "(literalize a x y)(literalize b x y)
    (p pair (a ^x <v>) (b ^x <v> ^y <w>) (write pair <v>) (remove 2))
    (p solo (a ^x 3 ^y <w>) (remove 1))
    (p guard (b ^x <v>) -(a ^x <v> ^y <v>) (write g <v>))";

/// One random working-memory operation (same shape as the PR 3
/// equivalence harness).
#[derive(Clone, Debug)]
enum Op {
    Insert { class: u8, x: i64, y: i64 },
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2, 0i64..4, 0i64..4).prop_map(|(class, x, y)| Op::Insert { class, x, y }),
        1 => (0usize..16).prop_map(Op::Remove),
    ]
}

/// Drive one engine through `ops`, running to a small firing limit after
/// each op. Returns the logical event stream (as JSON lines) plus the
/// final checkpoint text.
fn drive(mut ps: ProductionSystem, ops: &[Op]) -> (Vec<String>, String) {
    ps.set_event_log(true);
    ps.load_program(PROGRAM).unwrap();
    let mut live = Vec::new();
    for op in ops {
        match op {
            Op::Insert { class, x, y } => {
                let tag = ps
                    .make_str(
                        if *class == 0 { "a" } else { "b" },
                        &[("x", Value::Int(*x)), ("y", Value::Int(*y))],
                    )
                    .unwrap();
                live.push(tag);
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let tag = live.remove(i % live.len());
                // Firings may have retracted it already.
                if ps.wm().get(tag).is_some() {
                    ps.retract_wme(tag).unwrap();
                }
            }
        }
        let _ = ps.run(Some(4));
    }
    let stream = ps
        .trace_events()
        .into_iter()
        .filter(|e| e.is_logical())
        .map(|e| e.to_json())
        .collect();
    (stream, ps.checkpoint_string())
}

fn assert_jobs_equivalent(kind: MatcherKind, ops: &[Op]) {
    let (base_stream, base_ckpt) = drive(ProductionSystem::with_jobs(kind, 1), ops);
    for jobs in [2usize, 4] {
        let (stream, ckpt) = drive(ProductionSystem::with_jobs(kind, jobs), ops);
        assert_eq!(
            stream, base_stream,
            "{:?}: logical stream at jobs={} diverged from jobs=1",
            kind, jobs
        );
        assert_eq!(
            ckpt, base_ckpt,
            "{:?}: checkpoint at jobs={} diverged from jobs=1",
            kind, jobs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: single- vs multi-threaded runs are bitwise
    /// indistinguishable through the logical trace and the checkpoint,
    /// for every matcher kind.
    #[test]
    fn thread_count_never_changes_the_logical_stream(
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        for kind in KINDS {
            assert_jobs_equivalent(kind, &ops);
        }
    }
}

/// Fixed regression inputs for the same invariant (fast, deterministic,
/// no proptest shrinking involved).
#[test]
fn jobs_equivalence_regression() {
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 1,
            x: 1,
            y: 2,
        },
        Op::Insert {
            class: 0,
            x: 3,
            y: 0,
        },
        Op::Insert {
            class: 1,
            x: 2,
            y: 2,
        },
        Op::Remove(1),
        Op::Insert {
            class: 0,
            x: 2,
            y: 2,
        },
        Op::Insert {
            class: 1,
            x: 3,
            y: 3,
        },
        Op::Remove(0),
    ];
    for kind in KINDS {
        assert_jobs_equivalent(kind, &ops);
    }
}

/// Load facts without running and compare the *ordered* conflict set at
/// `--jobs 1..=8` against `--jobs 1`, then run and compare the firing
/// sequences. Conflict resolution tie-breaks on delta arrival order, so
/// this catches any jobs-dependent merge nondeterminism directly where it
/// would surface for a user.
#[test]
fn conflict_set_identical_across_jobs_1_to_8() {
    let seed = |ps: &mut ProductionSystem| {
        ps.load_program(PROGRAM).unwrap();
        for i in 0..10i64 {
            ps.make_str(
                if i % 2 == 0 { "a" } else { "b" },
                &[("x", Value::Int(i % 4)), ("y", Value::Int(i % 3))],
            )
            .unwrap();
        }
    };
    let ordered_cs = |ps: &ProductionSystem| -> Vec<String> {
        ps.conflict_items()
            .iter()
            .map(|item| format!("{:?} {:?}", item.key, item.recency))
            .collect()
    };
    for kind in KINDS {
        let mut base = ProductionSystem::with_jobs(kind, 1);
        seed(&mut base);
        let base_cs = ordered_cs(&base);
        assert!(!base_cs.is_empty(), "{:?}: workload must load the CS", kind);
        base.set_event_log(true);
        base.run(None);
        let base_fires: Vec<String> = base
            .trace_events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fire { .. }))
            .map(|e| e.to_json())
            .collect();
        for jobs in 2..=8usize {
            let mut ps = ProductionSystem::with_jobs(kind, jobs);
            seed(&mut ps);
            assert_eq!(
                ordered_cs(&ps),
                base_cs,
                "{:?}: conflict set at jobs={} diverged from jobs=1",
                kind,
                jobs
            );
            ps.set_event_log(true);
            ps.run(None);
            let fires: Vec<String> = ps
                .trace_events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::Fire { .. }))
                .map(|e| e.to_json())
                .collect();
            assert_eq!(
                fires, base_fires,
                "{:?}: firing sequence at jobs={} diverged from jobs=1",
                kind, jobs
            );
        }
    }
}

/// Canonical (order-blind) cross-check of the parallel wrapper against
/// the monolithic backend: partitioning reorders delta *arrival* but must
/// never change which instantiations exist or what they contain.
#[test]
fn parallel_backend_matches_monolithic_conflict_set() {
    let canon = |ps: &ProductionSystem| -> BTreeSet<String> {
        ps.conflict_items()
            .iter()
            .map(|item| {
                let mut rows: Vec<Vec<u64>> = item
                    .rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect();
                rows.sort();
                let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
                format!("{} {:?} {:?}", item.key.repr(), rows, aggs)
            })
            .collect()
    };
    let seed = |ps: &mut ProductionSystem| {
        ps.load_program(PROGRAM).unwrap();
        for i in 0..12i64 {
            ps.make_str(
                if i % 3 == 0 { "a" } else { "b" },
                &[("x", Value::Int(i % 4)), ("y", Value::Int(i % 5))],
            )
            .unwrap();
        }
    };
    for kind in KINDS {
        let mut mono = ProductionSystem::new(kind);
        let mut par = ProductionSystem::with_jobs(kind, 4);
        seed(&mut mono);
        seed(&mut par);
        assert_eq!(
            canon(&par),
            canon(&mono),
            "{:?}: parallel wrapper diverged from the monolithic backend",
            kind
        );
        mono.run(None);
        par.run(None);
        assert_eq!(
            canon(&par),
            canon(&mono),
            "{:?}: post-run conflict sets diverged",
            kind
        );
    }
}
