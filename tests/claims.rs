//! Integration tests for the paper's efficiency claims (C1–C5 in
//! DESIGN.md). The benches measure magnitudes; these tests pin down the
//! *shapes* the paper asserts.

use sorete::core::{MatcherKind, ProductionSystem};
use sorete::dips::{parallel_cycle, DipsEngine, DipsMode};
use sorete_base::Value;

// ---------------------------------------------------------------- C1
// "The introduction of the set-oriented changes was made in a way that
// does not degrade the performance when executing regular OPS5 programs."

#[test]
fn c1_regular_rules_pay_nothing_for_the_extension() {
    let regular = "(literalize job id state)
        (p advance (job ^id <i> ^state ready) (modify 1 ^state running))";
    // The same program plus a set-oriented rule over a class that this
    // workload never creates.
    let with_set_rule = format!(
        "{}\n(literalize audit k)\n(p audit-sweep {{ [audit ^k <k>] <A> }} :test ((count <A>) > 3) (set-remove <A>))",
        regular
    );

    let run = |program: &str| {
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(program).unwrap();
        for i in 0..50i64 {
            ps.make_str(
                "job",
                &[("id", Value::Int(i)), ("state", Value::sym("ready"))],
            )
            .unwrap();
        }
        ps.run(Some(200));
        (ps.stats().firings, ps.match_stats())
    };

    let (f1, m1) = run(regular);
    let (f2, m2) = run(&with_set_rule);
    assert_eq!(f1, f2);
    assert_eq!(
        m1.tokens_created, m2.tokens_created,
        "identical token traffic"
    );
    assert_eq!(m1.join_tests, m2.join_tests);
    assert_eq!(m1.beta_activations, m2.beta_activations);
    assert_eq!(m2.snode_activations, 0, "the unused S-node never activates");
}

// ---------------------------------------------------------------- C2
// Collection processing: marking scheme vs one set-oriented firing.

/// Tuple-oriented OPS5 idiom: a control WME plus per-element marking.
const MARKING_PROGRAM: &str = "(literalize item s)(literalize phase p)
    (p process-one (phase ^p sweep) (item ^s pending)
      (modify 2 ^s done))
    (p finish (phase ^p sweep) -(item ^s pending)
      (remove 1))";

const SET_PROGRAM: &str = "(literalize item s)(literalize phase p)
    (p process-all (phase ^p sweep) { [item ^s pending] <P> }
      (set-modify <P> ^s done)
      (remove 1))";

fn run_sweep(program: &str, n: usize) -> (u64, f64) {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(program).unwrap();
    for _ in 0..n {
        ps.make_str("item", &[("s", Value::sym("pending"))])
            .unwrap();
    }
    ps.make_str("phase", &[("p", Value::sym("sweep"))]).unwrap();
    let out = ps.run(Some(5000));
    assert!(ps.wm().iter().all(|w| {
        w.class.as_str() != "item" || w.get(sorete_base::Symbol::new("s")) == Value::sym("done")
    }));
    (out.fired, ps.stats().actions_per_firing())
}

#[test]
fn c2_marking_scheme_needs_linear_firings_set_oriented_needs_one() {
    for n in [5usize, 20, 60] {
        let (tuple_firings, _) = run_sweep(MARKING_PROGRAM, n);
        let (set_firings, _) = run_sweep(SET_PROGRAM, n);
        assert_eq!(
            tuple_firings,
            n as u64 + 1,
            "n item firings + 1 control firing"
        );
        assert_eq!(set_firings, 1, "one firing regardless of n");
    }
}

// ---------------------------------------------------------------- C3
// Second-order information: direct cardinality match vs counter WMEs.

const COUNTER_PROGRAM: &str = "(literalize box s)(literalize counter n)(literalize alarm t)
    ; counter maintenance: one firing per box
    (p count-one (counter ^n <n>) (box ^s new)
      (modify 1 ^n (<n> + 1)) (modify 2 ^s counted))
    (p raise (counter ^n >= 4)
      (make alarm ^t overfull) (modify 1 ^n 0))";

const AGGREGATE_PROGRAM: &str = "(literalize box s)(literalize alarm t)
    (p raise { [box ^s new] <B> } :test ((count <B>) >= 4)
      (make alarm ^t overfull) (set-modify <B> ^s counted))";

#[test]
fn c3_direct_cardinality_match_replaces_counter_rules() {
    let run = |program: &str, n: usize| {
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(program).unwrap();
        if program.contains("literalize counter") {
            ps.make_str("counter", &[("n", Value::Int(0))]).unwrap();
        }
        for _ in 0..n {
            ps.make_str("box", &[("s", Value::sym("new"))]).unwrap();
        }
        let out = ps.run(Some(1000));
        let alarms = ps
            .wm()
            .iter()
            .filter(|w| w.class.as_str() == "alarm")
            .count();
        (out.fired, alarms)
    };
    let (tuple_firings, tuple_alarms) = run(COUNTER_PROGRAM, 6);
    let (set_firings, set_alarms) = run(AGGREGATE_PROGRAM, 6);
    assert_eq!(tuple_alarms, 1);
    assert_eq!(set_alarms, 1);
    assert!(
        tuple_firings >= 7,
        "per-element counting: {}",
        tuple_firings
    );
    assert_eq!(set_firings, 1, "the cardinality is matched, not computed");
}

#[test]
fn c3_aggregate_updates_incrementally_with_wm_size() {
    // The aggregate stays current as WM changes — no recount firings.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize box s)
         (p watch { [box ^s new] <B> } :test ((count <B>) >= 2) (write (count <B>)))",
    )
    .unwrap();
    let t1 = ps.make_str("box", &[("s", Value::sym("new"))]).unwrap();
    ps.make_str("box", &[("s", Value::sym("new"))]).unwrap();
    ps.run(None);
    ps.make_str("box", &[("s", Value::sym("new"))]).unwrap();
    ps.run(None);
    ps.retract_wme(t1).unwrap();
    ps.run(None);
    assert_eq!(ps.take_output(), vec!["2", "3", "2"]);
}

// ---------------------------------------------------------------- C4
// "The number of actions in a set-oriented rule should be substantially
// greater, providing the ability to increase parallelism."

#[test]
fn c4_actions_per_firing_scales_with_set_size() {
    let mut per_firing = Vec::new();
    for n in [4usize, 16, 64] {
        let (_, apf) = run_sweep(SET_PROGRAM, n);
        per_firing.push(apf);
    }
    assert!(per_firing[0] >= 4.0);
    assert!(per_firing[1] > per_firing[0] * 2.0);
    assert!(per_firing[2] > per_firing[1] * 2.0, "{:?}", per_firing);

    // Tuple-oriented firings stay O(1) actions each.
    let (_, tuple_apf) = run_sweep(MARKING_PROGRAM, 64);
    assert!(tuple_apf < 3.0, "{}", tuple_apf);
}

// ---------------------------------------------------------------- C5
// DIPS concurrent firing: conflicts vanish with set-oriented rules.

#[test]
fn c5_conflict_counts_scale_with_wm_for_tuple_dips_only() {
    for n in [4usize, 12] {
        let prog_tuple = "(p drain (flag ^on t) (item ^s pending)
                            (modify 1 ^on t) (remove 2))";
        let mut tuple = DipsEngine::new(DipsMode::Tuple, prog_tuple).unwrap();
        tuple.insert("flag", &[("on", Value::sym("t"))]).unwrap();
        for _ in 0..n {
            tuple
                .insert("item", &[("s", Value::sym("pending"))])
                .unwrap();
        }
        let r = parallel_cycle(&mut tuple).unwrap();
        assert_eq!(r.attempted, n);
        assert_eq!(r.committed, 1);
        assert_eq!(r.aborted, n - 1, "aborts grow with the collection size");

        let prog_set = "(p drain (flag ^on t) { [item ^s pending] <P> }
                          (modify 1 ^on t) (set-remove <P>))";
        let mut set = DipsEngine::new(DipsMode::Set, prog_set).unwrap();
        set.insert("flag", &[("on", Value::sym("t"))]).unwrap();
        for _ in 0..n {
            set.insert("item", &[("s", Value::sym("pending"))]).unwrap();
        }
        let r = parallel_cycle(&mut set).unwrap();
        assert_eq!((r.attempted, r.committed, r.aborted), (1, 1, 0));
    }
}

// ----------------------------------------------------------- strategies

#[test]
fn strategies_and_matchers_cross_check() {
    use sorete::core::Strategy;
    for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
        for strategy in [Strategy::Lex, Strategy::Mea] {
            let mut ps = ProductionSystem::new(kind);
            ps.set_strategy(strategy);
            ps.load_program(SET_PROGRAM).unwrap();
            for _ in 0..10 {
                ps.make_str("item", &[("s", Value::sym("pending"))])
                    .unwrap();
            }
            ps.make_str("phase", &[("p", Value::sym("sweep"))]).unwrap();
            let out = ps.run(Some(100));
            assert_eq!(out.fired, 1, "{:?}/{:?}", kind, strategy);
        }
    }
}

// ---------------------------------------------------------------- J1
// Hash-join indexing (DESIGN.md "Join indexing"): on a join-heavy workload
// at n=1000 the indexed Rete performs at least 10× fewer join tests than
// the same network with indexing disabled, while emitting a byte-identical
// CsDelta stream.

#[test]
fn j1_hash_index_cuts_join_tests_10x_at_n1000() {
    use sorete::lang::{analyze_rule, parse_rule, Matcher};
    use sorete::rete::ReteMatcher;
    use sorete_base::{Symbol, TimeTag, Wme};
    use std::sync::Arc;

    let rules = [
        "(p fill (order ^id <i> ^qty <q>) (stock ^id <i> ^qty >= <q>) (halt))",
        "(p missing (order ^id <i> ^qty <q>) -(stock ^id <i>) (halt))",
    ];
    let mut idx = ReteMatcher::new();
    let mut scan = ReteMatcher::with_indexing(false);
    for src in rules {
        let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        idx.add_rule(r.clone());
        scan.add_rule(r);
    }

    let wme = |tag: u64, class: &str, id: i64, qty: i64| {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            vec![
                (Symbol::new("id"), Value::Int(id)),
                (Symbol::new("qty"), Value::Int(qty)),
            ],
        )
    };
    let n = 1000i64;
    let mut tag = 0u64;
    let insert = |idx: &mut ReteMatcher, scan: &mut ReteMatcher, w: Wme| {
        idx.insert_wme(&w);
        scan.insert_wme(&w);
    };
    for i in 0..n {
        tag += 1;
        insert(&mut idx, &mut scan, wme(tag, "stock", i, (i * 5) % 10));
    }
    for i in 0..n {
        tag += 1;
        insert(&mut idx, &mut scan, wme(tag, "order", i, (i * 3) % 10));
    }

    assert_eq!(
        format!("{:?}", idx.drain_deltas()),
        format!("{:?}", scan.drain_deltas()),
        "identical CsDelta streams"
    );
    let (ji, js) = (idx.stats().join_tests, scan.stats().join_tests);
    assert!(
        ji * 10 <= js,
        "indexed rete must do ≥10× fewer join tests: indexed={} scan={}",
        ji,
        js
    );
    assert!(idx.stats().index_probes > 0);
    assert_eq!(scan.stats().index_probes, 0);
    idx.validate().expect("indexes consistent at n=1000");
}
