//! `sorete-server` integration tests: the fault sweep the ISSUE demands.
//!
//! The differential harness drives identical request schedules against an
//! undisturbed server and servers with network-layer faults injected
//! (dropped connections, garbage frames, stalled responses), plus a real
//! SIGKILL + restart of the daemon binary — and asserts that every
//! surviving session's conflict set and checkpoint are **byte-identical**
//! to the uninterrupted run. The daemon itself must never exit on a
//! per-session failure.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use sorete::server::{Client, Ctx, NetFaultPlan, Server, ServerConfig, ServerReport};
use sorete_lang::json::Json;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sorete-server-it-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(cfg: ServerConfig) -> (String, Arc<Ctx>, std::thread::JoinHandle<ServerReport>) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let ctx = server.ctx();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, ctx, handle)
}

fn stop_server(ctx: &Arc<Ctx>, handle: std::thread::JoinHandle<ServerReport>) -> ServerReport {
    ctx.request_stop();
    handle.join().expect("server thread")
}

const TEAMS_PROG: &str = "\
(literalize player name team)
(p MoveToB
  (player ^team A ^name <n>)
  -->
  (modify 1 ^team B))";

fn req(fields: Vec<(&str, Json)>) -> String {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
    .render()
}

fn player(name: &str, team: &str) -> Json {
    Json::Obj(vec![
        ("class".into(), Json::Str("player".into())),
        (
            "slots".into(),
            Json::Obj(vec![
                ("name".into(), Json::Str(name.into())),
                ("team".into(), Json::Str(team.into())),
            ]),
        ),
    ])
}

/// The differential schedule for one session: open, load rules, assert a
/// roster, run, retract, run again. Every request is WAL-committed before
/// its response, so replaying this schedule against any fault plan must
/// land in the same final state.
fn schedule(session: &str) -> Vec<String> {
    let s = || Json::Str(session.into());
    vec![
        req(vec![
            ("op", Json::Str("open-session".into())),
            ("session", s()),
        ]),
        req(vec![
            ("op", Json::Str("load-rules".into())),
            ("session", s()),
            ("program", Json::Str(TEAMS_PROG.into())),
        ]),
        req(vec![
            ("op", Json::Str("assert-batch".into())),
            ("session", s()),
            (
                "facts",
                Json::Arr(vec![
                    player("jack", "A"),
                    player("janice", "A"),
                    player("sue", "B"),
                ]),
            ),
        ]),
        req(vec![
            ("op", Json::Str("run".into())),
            ("session", s()),
            ("limit", Json::Int(1)),
            ("deadline_ms", Json::Int(30_000)),
        ]),
        req(vec![
            ("op", Json::Str("assert-batch".into())),
            ("session", s()),
            (
                "facts",
                Json::Arr(vec![player("pat", "A"), player("kim", "A")]),
            ),
        ]),
        req(vec![
            ("op", Json::Str("retract".into())),
            ("session", s()),
            ("tag", Json::Int(3)),
        ]),
        // Limit 2 leaves at least one A-player in the conflict set, so the
        // byte-comparison covers a *non-empty* final conflict set.
        req(vec![
            ("op", Json::Str("run".into())),
            ("session", s()),
            ("limit", Json::Int(2)),
            ("deadline_ms", Json::Int(30_000)),
        ]),
    ]
}

/// Drive a schedule, reconnecting when a fault drops the connection. The
/// server commits every mutation *before* responding (and the drop fault
/// closes only after processing), so a request that errors out was still
/// applied — the driver reconnects and moves to the next request, exactly
/// once each.
fn drive(addr: &str, schedule: &[String]) {
    let mut client = Client::connect(addr).expect("connect");
    for line in schedule {
        if client.request(line).is_err() {
            client = Client::connect(addr).expect("reconnect");
        }
    }
}

/// Query a session's conflict set (idempotent: retried across drops).
fn query_cs(addr: &str, session: &str) -> (Vec<String>, i64) {
    for _ in 0..10 {
        let mut client = match Client::connect(addr) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let line = req(vec![
            ("op", Json::Str("query-conflict-set".into())),
            ("session", Json::Str(session.into())),
        ]);
        if let Ok(resp) = client.request(&line) {
            assert_eq!(
                resp.get("ok").and_then(|v| v.as_bool()),
                Some(true),
                "query-conflict-set failed: {}",
                resp.render()
            );
            let lines: Vec<String> = resp
                .get("conflict_set")
                .and_then(|v| v.as_arr())
                .unwrap()
                .iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect();
            let firings = resp.get("firings").and_then(|v| v.as_i64()).unwrap();
            return (lines, firings);
        }
    }
    panic!("query-conflict-set never succeeded");
}

struct RunResult {
    cs: Vec<(Vec<String>, i64)>,
    ckpts: Vec<Vec<u8>>,
    report: ServerReport,
}

/// Run the full two-session schedule against a server with the given
/// fault plan; return conflict sets, shutdown checkpoints, and the report.
fn run_schedules(tag: &str, fault: Option<NetFaultPlan>) -> RunResult {
    let dir = temp_dir(tag);
    let (addr, ctx, handle) = start_server(ServerConfig {
        data_dir: dir.clone(),
        fault,
        ..ServerConfig::default()
    });
    let sessions = ["alpha", "beta"];
    for s in &sessions {
        drive(&addr, &schedule(s));
    }
    let cs = sessions.iter().map(|s| query_cs(&addr, s)).collect();
    let report = stop_server(&ctx, handle);
    let ckpts = sessions
        .iter()
        .map(|s| std::fs::read(dir.join(s).join("session.ckpt")).expect("checkpoint written"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    RunResult { cs, ckpts, report }
}

// ---------------------------------------------------------------------
// The fault sweep: drop / garbage / stall vs the undisturbed oracle.

#[test]
fn fault_sweep_is_byte_identical_to_uninterrupted_run() {
    let oracle = run_schedules("oracle", None);
    assert!(
        !oracle.cs[0].0.is_empty() || oracle.cs[0].1 > 0,
        "oracle did nothing: cs={:?} firings={}",
        oracle.cs[0].0,
        oracle.cs[0].1
    );
    assert_eq!(
        oracle.report.checkpointed, 2,
        "both dirty sessions checkpoint"
    );

    for spec in ["drop:3", "garbage:2", "stall:2"] {
        let fault = NetFaultPlan::parse(spec).unwrap();
        let faulted = run_schedules(&format!("fault-{}", spec.replace(':', "-")), Some(fault));
        for (i, name) in ["alpha", "beta"].iter().enumerate() {
            assert_eq!(
                faulted.cs[i].0, oracle.cs[i].0,
                "{}: session {} conflict set diverged",
                spec, name
            );
            assert_eq!(
                faulted.cs[i].1, oracle.cs[i].1,
                "{}: session {} firings diverged",
                spec, name
            );
            assert_eq!(
                faulted.ckpts[i], oracle.ckpts[i],
                "{}: session {} checkpoint not byte-identical",
                spec, name
            );
        }
    }
}

// ---------------------------------------------------------------------
// A stalled client is dropped past the read deadline; the daemon lives.

#[test]
fn stalled_client_is_dropped_but_daemon_survives() {
    let dir = temp_dir("stalled-client");
    let (addr, ctx, handle) = start_server(ServerConfig {
        data_dir: dir.clone(),
        read_timeout_ms: 150,
        ..ServerConfig::default()
    });

    // Connect and go silent past the server's read deadline.
    let mut stalled = Client::connect(&addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    let dead = stalled
        .request(&req(vec![("op", Json::Str("health".into()))]))
        .is_err();
    assert!(dead, "the stalled connection should have been dropped");

    // The daemon is unharmed: a fresh connection gets a healthy answer.
    let mut fresh = Client::connect(&addr).unwrap();
    let resp = fresh
        .request(&req(vec![("op", Json::Str("health".into()))]))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));

    stop_server(&ctx, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Per-session failures (bad frames, run errors, deadline timeouts) are
// answered with typed errors and never take the daemon down.

#[test]
fn per_session_failure_never_exits_the_daemon() {
    let dir = temp_dir("session-failure");
    let (addr, ctx, handle) = start_server(ServerConfig {
        data_dir: dir.clone(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();

    // Garbage frame: typed bad-frame, connection stays open.
    let resp = client.request("%%% not json %%%").unwrap();
    assert_eq!(
        resp.get("error").and_then(|v| v.as_str()),
        Some("bad-frame")
    );

    // Unknown session: typed no-such-session.
    let resp = client
        .request(&req(vec![
            ("op", Json::Str("run".into())),
            ("session", Json::Str("ghost".into())),
        ]))
        .unwrap();
    assert_eq!(
        resp.get("error").and_then(|v| v.as_str()),
        Some("no-such-session")
    );

    // A poisoned session: sessions run supervised, so the divide-by-zero
    // RHS trips the breaker and the rule is quarantined — the session (and
    // daemon) stay alive, and the response carries the typed code plus the
    // quarantined rule names.
    for line in [
        req(vec![
            ("op", Json::Str("open-session".into())),
            ("session", Json::Str("poison".into())),
        ]),
        req(vec![
            ("op", Json::Str("load-rules".into())),
            ("session", Json::Str("poison".into())),
            (
                "program",
                Json::Str(
                    "(literalize counter n)\n\
                     (p boom (counter ^n <x>) --> (modify 1 ^n (compute <x> / 0)))"
                        .into(),
                ),
            ),
        ]),
        req(vec![
            ("op", Json::Str("assert-batch".into())),
            ("session", Json::Str("poison".into())),
            (
                "facts",
                Json::Arr(vec![Json::Obj(vec![
                    ("class".into(), Json::Str("counter".into())),
                    ("slots".into(), Json::Obj(vec![("n".into(), Json::Int(1))])),
                ])]),
            ),
        ]),
    ] {
        let resp = client.request(&line).unwrap();
        assert_eq!(
            resp.get("ok").and_then(|v| v.as_bool()),
            Some(true),
            "{}",
            resp.render()
        );
    }
    let resp = client
        .request(&req(vec![
            ("op", Json::Str("run".into())),
            ("session", Json::Str("poison".into())),
            ("deadline_ms", Json::Int(30_000)),
        ]))
        .unwrap();
    assert_eq!(
        resp.get("error").and_then(|v| v.as_str()),
        Some("quarantined"),
        "{}",
        resp.render()
    );
    assert!(
        resp.render().contains("boom"),
        "quarantined response names the rule: {}",
        resp.render()
    );

    // A hot loop against a 1ms deadline: typed timeout, engine intact.
    for line in [
        req(vec![
            ("op", Json::Str("open-session".into())),
            ("session", Json::Str("spin".into())),
        ]),
        req(vec![
            ("op", Json::Str("load-rules".into())),
            ("session", Json::Str("spin".into())),
            (
                "program",
                Json::Str(
                    "(literalize tick n)\n\
                     (p spin (tick ^n <x>) --> (modify 1 ^n (compute <x> + 1)))"
                        .into(),
                ),
            ),
        ]),
        req(vec![
            ("op", Json::Str("assert-batch".into())),
            ("session", Json::Str("spin".into())),
            (
                "facts",
                Json::Arr(vec![Json::Obj(vec![
                    ("class".into(), Json::Str("tick".into())),
                    ("slots".into(), Json::Obj(vec![("n".into(), Json::Int(0))])),
                ])]),
            ),
        ]),
    ] {
        let resp = client.request(&line).unwrap();
        assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    }
    let resp = client
        .request(&req(vec![
            ("op", Json::Str("run".into())),
            ("session", Json::Str("spin".into())),
            ("deadline_ms", Json::Int(1)),
        ]))
        .unwrap();
    assert_eq!(resp.get("error").and_then(|v| v.as_str()), Some("timeout"));

    // After all of that, the daemon still answers and the healthy session
    // count is intact.
    let resp = client
        .request(&req(vec![("op", Json::Str("health".into()))]))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(resp.get("sessions").and_then(|v| v.as_i64()), Some(2));

    stop_server(&ctx, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Backpressure: a busy session answers `overloaded` instead of queueing.

#[test]
fn busy_session_gets_overloaded_not_a_queue() {
    let dir = temp_dir("backpressure");
    let (addr, ctx, handle) = start_server(ServerConfig {
        data_dir: dir.clone(),
        default_deadline_ms: 30_000,
        ..ServerConfig::default()
    });
    let mut a = Client::connect(&addr).unwrap();
    for line in [
        req(vec![
            ("op", Json::Str("open-session".into())),
            ("session", Json::Str("busy".into())),
        ]),
        req(vec![
            ("op", Json::Str("load-rules".into())),
            ("session", Json::Str("busy".into())),
            (
                "program",
                Json::Str(
                    "(literalize tick n)\n\
                     (p spin (tick ^n <x>) --> (modify 1 ^n (compute <x> + 1)))"
                        .into(),
                ),
            ),
        ]),
        req(vec![
            ("op", Json::Str("assert-batch".into())),
            ("session", Json::Str("busy".into())),
            (
                "facts",
                Json::Arr(vec![Json::Obj(vec![
                    ("class".into(), Json::Str("tick".into())),
                    ("slots".into(), Json::Obj(vec![("n".into(), Json::Int(0))])),
                ])]),
            ),
        ]),
    ] {
        assert_eq!(
            a.request(&line)
                .unwrap()
                .get("ok")
                .and_then(|v| v.as_bool()),
            Some(true)
        );
    }
    // Hold the session busy with a long run on one connection…
    let addr2 = addr.clone();
    let runner = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        c.request(&req(vec![
            ("op", Json::Str("run".into())),
            ("session", Json::Str("busy".into())),
            ("deadline_ms", Json::Int(600)),
        ]))
        .unwrap()
    });
    // …and poke it from another until backpressure answers.
    let mut saw_overloaded = false;
    let mut b = Client::connect(&addr).unwrap();
    for _ in 0..100 {
        let resp = b
            .request(&req(vec![
                ("op", Json::Str("query-conflict-set".into())),
                ("session", Json::Str("busy".into())),
            ]))
            .unwrap();
        if resp.get("error").and_then(|v| v.as_str()) == Some("overloaded") {
            saw_overloaded = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let run_resp = runner.join().unwrap();
    assert!(
        saw_overloaded,
        "never saw overloaded while the run held the session"
    );
    assert_eq!(
        run_resp.get("error").and_then(|v| v.as_str()),
        Some("timeout"),
        "the spinning run ends on its deadline: {}",
        run_resp.render()
    );
    stop_server(&ctx, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Admission control: session-count and aggregate-byte limits are typed.

#[test]
fn admission_control_rejects_over_limit_work() {
    let dir = temp_dir("admission");
    let (addr, ctx, handle) = start_server(ServerConfig {
        data_dir: dir.clone(),
        max_sessions: 2,
        max_total_bytes: 1, // any real working memory trips the byte gate
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    for name in ["s0", "s1"] {
        let resp = client
            .request(&req(vec![
                ("op", Json::Str("open-session".into())),
                ("session", Json::Str(name.into())),
            ]))
            .unwrap();
        assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    }
    let resp = client
        .request(&req(vec![
            ("op", Json::Str("open-session".into())),
            ("session", Json::Str("s2".into())),
        ]))
        .unwrap();
    assert_eq!(
        resp.get("error").and_then(|v| v.as_str()),
        Some("session-limit")
    );
    // The byte gauge is published after every request; with a 1-byte
    // budget the next mutation is refused.
    let resp = client
        .request(&req(vec![
            ("op", Json::Str("assert-batch".into())),
            ("session", Json::Str("s0".into())),
            (
                "facts",
                Json::Arr(vec![Json::Obj(vec![
                    ("class".into(), Json::Str("t".into())),
                    ("slots".into(), Json::Obj(vec![("v".into(), Json::Int(1))])),
                ])]),
            ),
        ]))
        .unwrap();
    assert_eq!(
        resp.get("error").and_then(|v| v.as_str()),
        Some("memory-limit")
    );
    stop_server(&ctx, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// SIGKILL + restart of the real daemon binary: both sessions resume from
// their WALs with state identical to an uninterrupted run.

struct Daemon {
    child: std::process::Child,
    addr: String,
}

fn spawn_daemon(dir: &std::path::Path) -> Daemon {
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_sorete"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--data-dir"])
        .arg(dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn sorete serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = first
        .rsplit(' ')
        .next()
        .expect("address on the listening line")
        .to_string();
    assert!(first.contains("listening"), "{}", first);
    Daemon { child, addr }
}

#[test]
fn sigkill_and_restart_recovers_both_sessions_byte_identically() {
    // Oracle: the full schedule against an in-process server, no kill.
    let oracle = run_schedules("sigkill-oracle", None);

    let dir = temp_dir("sigkill");
    let mut daemon = spawn_daemon(&dir);
    // Phase A: everything up to (and including) the first run, acknowledged.
    for s in ["alpha", "beta"] {
        drive(&daemon.addr, &schedule(s)[..4]);
    }
    // SIGKILL: no checkpoint, no goodbye — the WAL is the only truth.
    daemon.child.kill().expect("SIGKILL the daemon");
    let _ = daemon.child.wait();

    // Restart over the same data dir; sessions recover from their WALs.
    let daemon = spawn_daemon(&dir);
    let mut client = Client::connect(&daemon.addr).unwrap();
    for s in ["alpha", "beta"] {
        let resp = client
            .request(&req(vec![
                ("op", Json::Str("open-session".into())),
                ("session", Json::Str((*s).into())),
            ]))
            .unwrap();
        assert_eq!(
            resp.get("ok").and_then(|v| v.as_bool()),
            Some(true),
            "{}",
            resp.render()
        );
        assert_eq!(
            resp.get("recovered").and_then(|v| v.as_bool()),
            Some(true),
            "session {} should recover from its WAL: {}",
            s,
            resp.render()
        );
    }
    drop(client);
    // Phase B: the rest of the schedule, then compare against the oracle.
    for s in ["alpha", "beta"] {
        drive(&daemon.addr, &schedule(s)[4..]);
    }
    for (i, s) in ["alpha", "beta"].iter().enumerate() {
        let (cs, firings) = query_cs(&daemon.addr, s);
        assert_eq!(
            cs, oracle.cs[i].0,
            "session {} conflict set diverged after SIGKILL",
            s
        );
        assert_eq!(
            firings, oracle.cs[i].1,
            "session {} stats diverged after SIGKILL",
            s
        );
    }
    // Graceful shutdown via the protocol; the daemon checkpoints and exits 0.
    let mut client = Client::connect(&daemon.addr).unwrap();
    let resp = client
        .request(&req(vec![("op", Json::Str("shutdown".into()))]))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "graceful shutdown exits 0: {:?}", status);
    for (i, s) in ["alpha", "beta"].iter().enumerate() {
        let ckpt = std::fs::read(dir.join(s).join("session.ckpt")).expect("checkpoint written");
        assert_eq!(
            ckpt, oracle.ckpts[i],
            "session {} checkpoint not byte-identical after SIGKILL + restart",
            s
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Satellite: N sessions driven with interleaved (concurrent) schedules
// produce conflict sets and checkpoints byte-identical to the same
// sessions run serially in isolation.

fn lcg_schedule(session: &str, seed: u64) -> Vec<String> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut rng = move |n: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n
    };
    let s = || Json::Str(session.into());
    let mut out = vec![
        req(vec![
            ("op", Json::Str("open-session".into())),
            ("session", s()),
        ]),
        req(vec![
            ("op", Json::Str("load-rules".into())),
            ("session", s()),
            (
                "program",
                Json::Str(
                    "(literalize item v)\n\
                     (p sweep { [item ^v > 0] <S> } :test ((count <S>) > 2) -->\n\
                        (set-modify <S> ^v 0))"
                        .into(),
                ),
            ),
        ]),
    ];
    let mut asserted = 0u64;
    for _ in 0..10 {
        match rng(4) {
            0 | 1 => {
                let k = rng(3) + 1;
                let facts: Vec<Json> = (0..k)
                    .map(|_| {
                        Json::Obj(vec![
                            ("class".into(), Json::Str("item".into())),
                            (
                                "slots".into(),
                                Json::Obj(vec![("v".into(), Json::Int((rng(9) + 1) as i64))]),
                            ),
                        ])
                    })
                    .collect();
                asserted += k;
                out.push(req(vec![
                    ("op", Json::Str("assert-batch".into())),
                    ("session", s()),
                    ("facts", Json::Arr(facts)),
                ]));
            }
            2 if asserted > 0 => {
                // Retracting an already-dead tag answers run-error in both
                // modes — still deterministic.
                out.push(req(vec![
                    ("op", Json::Str("retract".into())),
                    ("session", s()),
                    ("tag", Json::Int((rng(asserted) + 1) as i64)),
                ]));
            }
            _ => {
                out.push(req(vec![
                    ("op", Json::Str("run".into())),
                    ("session", s()),
                    ("limit", Json::Int((rng(3) + 1) as i64)),
                    ("deadline_ms", Json::Int(30_000)),
                ]));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn interleaved_sessions_match_serial_isolation(seed in 0u64..1_000_000) {
        let names = ["p0", "p1", "p2"];

        // Interleaved: one server, every session driven concurrently.
        let dir = temp_dir(&format!("prop-inter-{}", seed));
        let (addr, ctx, handle) = start_server(ServerConfig {
            data_dir: dir.clone(),
            ..ServerConfig::default()
        });
        let threads: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let addr = addr.clone();
                let sched = lcg_schedule(name, seed + i as u64);
                std::thread::spawn(move || drive(&addr, &sched))
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let interleaved: Vec<(Vec<String>, i64)> =
            names.iter().map(|n| query_cs(&addr, n)).collect();
        stop_server(&ctx, handle);
        let inter_ckpts: Vec<Vec<u8>> = names
            .iter()
            .map(|n| std::fs::read(dir.join(n).join("session.ckpt")).unwrap_or_default())
            .collect();
        let _ = std::fs::remove_dir_all(&dir);

        // Serial isolation: each session alone on its own server.
        for (i, name) in names.iter().enumerate() {
            let dir = temp_dir(&format!("prop-serial-{}-{}", seed, name));
            let (addr, ctx, handle) = start_server(ServerConfig {
                data_dir: dir.clone(),
                ..ServerConfig::default()
            });
            drive(&addr, &lcg_schedule(name, seed + i as u64));
            let (cs, firings) = query_cs(&addr, name);
            stop_server(&ctx, handle);
            let ckpt = std::fs::read(dir.join(name).join("session.ckpt")).unwrap_or_default();
            let _ = std::fs::remove_dir_all(&dir);

            prop_assert_eq!(&cs, &interleaved[i].0, "session {} conflict set", name);
            prop_assert_eq!(firings, interleaved[i].1, "session {} firings", name);
            prop_assert_eq!(&ckpt, &inter_ckpts[i], "session {} checkpoint", name);
        }
    }
}
