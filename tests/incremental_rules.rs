//! Incremental production addition: rules loaded *after* working memory is
//! populated must see exactly the matches a from-scratch build would —
//! Doorenbos' "update-new-node" step, checked against the naive oracle.

use proptest::prelude::*;
use sorete::core::{MatcherKind, ProductionSystem};
use sorete::lang::{analyze_rule, parse_rule, Matcher};
use sorete::naive::NaiveMatcher;
use sorete::rete::ReteMatcher;
use sorete::treat::TreatMatcher;
use sorete_base::{ConflictItem, CsDelta, FxHashMap, InstKey, Symbol, TimeTag, Value, Wme};
use std::collections::BTreeSet;
use std::sync::Arc;

const RULES: &[&str] = &[
    "(p r1 (a ^x <v>) (b ^x <v>) (halt))",
    "(p r2 (a ^x <v>) -(b ^x <v>) (halt))",
    "(p r3 { [a ^x <v>] <P> } :scalar (<v>) :test ((count <P>) > 1) (set-remove <P>))",
    "(p r4 [b ^y <w>] (halt))",
];

fn wme(tag: u64, class: &str, x: i64, y: i64) -> Wme {
    Wme::new(
        TimeTag::new(tag),
        Symbol::new(class),
        vec![
            (Symbol::new("x"), Value::Int(x)),
            (Symbol::new("y"), Value::Int(y)),
        ],
    )
}

type Canon = BTreeSet<(usize, BTreeSet<Vec<u64>>, Vec<String>)>;

fn canon_of(cs: &FxHashMap<InstKey, ConflictItem>) -> Canon {
    cs.values()
        .map(|item| {
            let rows: BTreeSet<Vec<u64>> = item
                .rows
                .iter()
                .map(|r| r.iter().map(|t| t.raw()).collect())
                .collect();
            let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
            (item.key.rule().index(), rows, aggs)
        })
        .collect()
}

fn drive(m: &mut dyn Matcher, wmes: &[Wme], split: usize) -> Canon {
    // Load the first `split` rules, then WMEs, then the remaining rules.
    for src in &RULES[..split] {
        m.add_rule(Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap()));
    }
    for w in wmes {
        m.insert_wme(w);
    }
    for src in &RULES[split..] {
        m.add_rule(Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap()));
    }
    let mut cs: FxHashMap<InstKey, ConflictItem> = FxHashMap::default();
    for d in m.drain_deltas() {
        match d {
            CsDelta::Insert(item) => {
                assert!(cs.insert(item.key.clone(), item).is_none());
            }
            CsDelta::Remove(key) => {
                assert!(cs.remove(&key).is_some());
            }
            CsDelta::Retime(info) => {
                if let Some(fresh) = m.materialize(&info.key) {
                    cs.insert(info.key.clone(), fresh);
                }
            }
        }
    }
    canon_of(&cs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn late_rules_see_existing_wm(
        seed in proptest::collection::vec((0u8..2, 0i64..3, 0i64..3), 0..12),
        split in 0usize..5,
    ) {
        let split = split.min(RULES.len());
        let wmes: Vec<Wme> = seed
            .iter()
            .enumerate()
            .map(|(i, &(c, x, y))| wme(i as u64 + 1, if c == 0 { "a" } else { "b" }, x, y))
            .collect();

        let expected = drive(&mut NaiveMatcher::new(), &wmes, split);
        let rete = drive(&mut ReteMatcher::new(), &wmes, split);
        let treat = drive(&mut TreatMatcher::new(), &wmes, split);
        prop_assert_eq!(&rete, &expected, "rete with split {}", split);
        prop_assert_eq!(&treat, &expected, "treat with split {}", split);
    }
}

#[test]
fn engine_supports_late_program_loading() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program("(literalize item s)").unwrap();
    for _ in 0..4 {
        ps.make_str("item", &[("s", Value::sym("pending"))])
            .unwrap();
    }
    // The sweep rule arrives after the facts.
    ps.load_program(
        "(p sweep { [item ^s pending] <P> } (set-modify <P> ^s done) (write swept (count <P>)))",
    )
    .unwrap();
    let outcome = ps.run(Some(10));
    assert_eq!(outcome.fired, 1);
    assert_eq!(ps.take_output(), vec!["swept 4"]);
}

#[test]
fn late_rule_with_existing_joins_and_negation() {
    for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program("(literalize a x)(literalize b x)").unwrap();
        ps.make_str("a", &[("x", Value::Int(1))]).unwrap();
        ps.make_str("a", &[("x", Value::Int(2))]).unwrap();
        ps.make_str("b", &[("x", Value::Int(1))]).unwrap();
        ps.load_program("(p lonely (a ^x <v>) -(b ^x <v>) (write lonely <v>) (remove 1))")
            .unwrap();
        assert_eq!(
            ps.conflict_set_len(),
            1,
            "{:?}: only a(x=2) is unblocked",
            kind
        );
        ps.run(Some(5));
        assert_eq!(ps.take_output(), vec!["lonely 2"], "{:?}", kind);
    }
}
