//! End-to-end tests of the `sorete` command-line interpreter binary.

use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sorete")
}

fn repo_file(rel: &str) -> String {
    format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel)
}

#[test]
fn runs_the_teams_program() {
    let out = Command::new(bin())
        .args([
            "--stats",
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("removing duplicates of Sue on team B"),
        "{}",
        stdout
    );
    assert!(stdout.contains("team B"), "{}", stdout);
    assert!(stdout.contains("; stats: firings=2"), "{}", stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fired 2 rules"), "{}", stderr);
}

#[test]
fn all_matchers_agree_via_cli() {
    let mut outputs = Vec::new();
    for matcher in ["rete", "treat", "naive"] {
        let out = Command::new(bin())
            .args([
                "--matcher",
                matcher,
                "--wm",
                &repo_file("programs/teams.wm"),
                &repo_file("programs/teams.ops"),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}: {}",
            matcher,
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(String::from_utf8_lossy(&out.stdout).to_string());
    }
    assert_eq!(outputs[0], outputs[1], "rete vs treat");
    assert_eq!(outputs[0], outputs[2], "rete vs naive");
}

#[test]
fn monkey_and_bananas_plans_correctly() {
    for matcher in ["rete", "treat", "naive"] {
        let out = Command::new(bin())
            .args([
                "--matcher",
                matcher,
                "--strategy",
                "mea",
                "--wm",
                &repo_file("programs/monkey.wm"),
                &repo_file("programs/monkey.ops"),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let plan: Vec<&str> = stdout.lines().collect();
        assert_eq!(
            plan,
            vec![
                "plan: move the ladder",
                "plan: walk to the ladder",
                "walk to 2-2",
                "push ladder to 7-7",
                "climb the ladder",
                "grab bananas",
                "cleanup: 3 satisfied goals removed",
            ],
            "{}: {}",
            matcher,
            stdout
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("fired 7 rules"),
            "{}",
            matcher
        );
    }
}

/// Minimal structural JSON check: balanced quotes/braces/brackets and the
/// `{"ev":"<name>",...}` envelope every trace line must carry. Not a full
/// parser — just enough to catch malformed output without a JSON dep.
fn assert_jsonl_line(line: &str) {
    assert!(
        line.starts_with("{\"ev\":\"") && line.ends_with('}'),
        "bad envelope: {}",
        line
    );
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    for c in line.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced: {}", line);
    }
    assert!(depth == 0 && !in_str, "unterminated: {}", line);
    let name = &line["{\"ev\":\"".len()..];
    let name = &name[..name.find('"').unwrap()];
    const NAMES: &[&str] = &[
        "cycle_begin",
        "cycle_end",
        "wme_assert",
        "wme_retract",
        "alpha",
        "beta",
        "probe",
        "snode",
        "aggregate",
        "cs_insert",
        "cs_remove",
        "cs_retime",
        "fire",
        "skip",
        "rollback",
        "guard",
    ];
    assert!(NAMES.contains(&name), "unknown event `{}`: {}", name, line);
}

#[test]
fn trace_json_and_profile_smoke() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("smoke-trace.jsonl");
    let out = Command::new(bin())
        .args([
            "--profile",
            "--trace-json",
            trace.to_str().unwrap(),
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Under a SORETE_JOBS override the backend reports `parallel-rete`.
    assert!(
        stdout.contains("; profile [rete]:") || stdout.contains("; profile [parallel-rete]:"),
        "{}",
        stdout
    );
    assert!(stdout.contains("node"), "{}", stdout);
    assert!(stdout.contains("production"), "{}", stdout);

    let jsonl = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 10, "suspiciously short trace:\n{}", jsonl);
    for line in &lines {
        assert_jsonl_line(line);
    }
    assert!(
        lines.iter().any(|l| l.contains("\"ev\":\"fire\"")),
        "{}",
        jsonl
    );
    assert!(
        lines.iter().any(|l| l.contains("\"ev\":\"cs_insert\"")),
        "{}",
        jsonl
    );
}

/// The logical (algorithm-independent) trace stream must be byte-identical
/// across the indexed and scan Rete variants.
#[test]
fn trace_json_logical_stream_matches_across_rete_variants() {
    const LOGICAL: &[&str] = &[
        "cycle_begin",
        "cycle_end",
        "wme_assert",
        "wme_retract",
        "cs_insert",
        "cs_remove",
        "cs_retime",
        "fire",
        "skip",
        "rollback",
        "guard",
    ];
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut streams = Vec::new();
    for matcher in ["rete", "rete-scan"] {
        let trace = dir.join(format!("logical-{}.jsonl", matcher));
        let out = Command::new(bin())
            .args([
                "--matcher",
                matcher,
                "--trace-json",
                trace.to_str().unwrap(),
                "--wm",
                &repo_file("programs/teams.wm"),
                &repo_file("programs/teams.ops"),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        let logical: Vec<String> = jsonl
            .lines()
            .filter(|l| {
                let name = &l["{\"ev\":\"".len()..];
                LOGICAL.contains(&&name[..name.find('"').unwrap()])
            })
            .map(str::to_string)
            .collect();
        assert!(!logical.is_empty());
        streams.push(logical.join("\n"));
    }
    assert_eq!(streams[0], streams[1], "rete vs rete-scan logical streams");
}

#[test]
fn reports_bad_usage() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = Command::new(bin())
        .args(["--matcher", "ops83", "x.ops"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn reports_parse_errors_with_file_name() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ops");
    std::fs::write(&bad, "(p broken (a ^x <v>) (frobnicate))").unwrap();
    let out = Command::new(bin())
        .arg(bad.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.ops"), "{}", stderr);
}

#[test]
fn repl_session() {
    let mut child = Command::new(bin())
        .args(["--repl", &repo_file("programs/teams.ops")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "cs").unwrap();
        writeln!(stdin, "run").unwrap();
        writeln!(stdin, "wm").unwrap();
        writeln!(stdin, "stats").unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("; => 1"), "{}", stdout);
    assert!(
        stdout.contains("removing duplicates of Ada on team A"),
        "{}",
        stdout
    );
    // After dedup only the most recent Ada remains.
    assert!(
        stdout.contains("2: (player ^name Ada ^team A)"),
        "{}",
        stdout
    );
    assert!(!stdout.contains("\n; 1: (player"), "{}", stdout);
    assert!(stdout.contains("; stats: firings="), "{}", stdout);
}

/// Pull `"key":<int>` out of a metrics JSONL line (no JSON dep).
fn jsonl_value(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{}\":", key);
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// Acceptance: the final `--metrics-json` snapshot's counters must equal
/// the `--stats` totals exactly (single-sourcing), and every counter must
/// be monotone across the per-cycle time series.
#[test]
fn metrics_jsonl_matches_stats_and_is_monotone() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("teams-metrics.jsonl");
    let out = Command::new(bin())
        .args([
            "--stats",
            "--metrics-json",
            metrics.to_str().unwrap(),
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stats_line = stdout
        .lines()
        .find(|l| l.starts_with("; stats:"))
        .expect("stats line");
    let stat = |name: &str| -> u64 {
        let needle = format!("{}=", name);
        let at = stats_line.find(&needle).unwrap() + needle.len();
        stats_line[at..]
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };

    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty(), "per-cycle snapshots written");
    let last = lines.last().unwrap();
    assert_eq!(
        jsonl_value(last, "sorete_firings_total"),
        Some(stat("firings"))
    );
    assert_eq!(
        jsonl_value(last, "sorete_actions_total"),
        Some(stat("actions"))
    );
    assert_eq!(jsonl_value(last, "sorete_makes_total"), Some(stat("makes")));
    assert_eq!(
        jsonl_value(last, "sorete_removes_total"),
        Some(stat("removes"))
    );
    assert_eq!(
        jsonl_value(last, "sorete_modifies_total"),
        Some(stat("modifies"))
    );
    assert_eq!(
        jsonl_value(last, "sorete_writes_total"),
        Some(stat("writes"))
    );

    for counter in [
        "sorete_cycles_total",
        "sorete_firings_total",
        "sorete_actions_total",
        "sorete_wm_asserts_total",
        "sorete_wm_retracts_total",
        "sorete_match_beta_activations_total",
    ] {
        let mut prev = 0u64;
        for line in &lines {
            let v = jsonl_value(line, counter)
                .unwrap_or_else(|| panic!("{} missing in {}", counter, line));
            assert!(v >= prev, "{} not monotone: {} < {}", counter, v, prev);
            prev = v;
        }
    }
}

/// Acceptance: `--metrics-prom` output parses as Prometheus text
/// exposition — every sample line belongs to a family announced by a
/// `# TYPE` line, histograms carry `+Inf`/`_sum`/`_count`, and labeled
/// families quote their label values.
#[test]
fn metrics_prom_is_valid_exposition() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prom = dir.join("teams.prom");
    let out = Command::new(bin())
        .args([
            "--metrics-prom",
            prom.to_str().unwrap(),
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&prom).unwrap();
    let mut typed: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let family = it.next().unwrap().to_string();
            let kind = it.next().unwrap().to_string();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                "{}",
                line
            );
            typed.push((family, kind));
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // A sample: `name[{labels}] value`.
        let name_end = line.find(['{', ' ']).unwrap_or_else(|| panic!("{}", line));
        let name = &line[..name_end];
        let family = typed
            .iter()
            .find(|(f, _)| {
                name == f
                    || (name.starts_with(f.as_str())
                        && ["_bucket", "_sum", "_count"].contains(&&name[f.len()..]))
            })
            .unwrap_or_else(|| panic!("sample without TYPE: {}", line));
        if line.as_bytes()[name_end] == b'{' {
            let close = line.find('}').unwrap_or_else(|| panic!("{}", line));
            let labels = &line[name_end + 1..close];
            assert!(
                labels.contains("=\"") && labels.ends_with('"'),
                "unquoted label value: {}",
                line
            );
        }
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "bad sample value: {}", line);
        let _ = family;
    }
    for want in [
        ("sorete_firings_total", "counter"),
        ("sorete_conflict_set_size", "gauge"),
        ("sorete_fire_nanos", "histogram"),
        ("sorete_memory_bytes", "gauge"),
    ] {
        assert!(
            typed.iter().any(|(f, k)| (f.as_str(), k.as_str()) == want),
            "missing family {:?} in:\n{}",
            want,
            text
        );
    }
    for (family, kind) in &typed {
        if kind == "histogram" {
            assert!(
                text.contains(&format!("{}_bucket{{le=\"+Inf\"}}", family)),
                "{} missing +Inf bucket",
                family
            );
            assert!(text.contains(&format!("{}_sum ", family)), "{}", family);
            assert!(text.contains(&format!("{}_count ", family)), "{}", family);
        }
    }
    assert!(
        text.contains("region=\""),
        "memory gauges carry region labels:\n{}",
        text
    );
}

/// Satellite: the metrics stream must be flushed when the run ends in an
/// error (here: an undeclared-attribute modify under the default Rollback
/// policy makes the run abort after the rollback).
#[test]
fn metrics_jsonl_flushes_on_error_exit() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("poison.ops");
    std::fs::write(
        &prog,
        "(literalize item x)
         (p bad (item ^x <v>) --> (modify 1 ^bogus 2))",
    )
    .unwrap();
    let facts = dir.join("poison.wm");
    std::fs::write(&facts, "(item ^x 1)").unwrap();
    let metrics = dir.join("poison-metrics.jsonl");
    let out = Command::new(bin())
        .args([
            "--metrics-json",
            metrics.to_str().unwrap(),
            "--wm",
            facts.to_str().unwrap(),
            prog.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "poison program must fail");
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let last = jsonl.lines().last().expect("flushed on error exit");
    assert_eq!(jsonl_value(last, "sorete_rolled_back_total"), Some(1));
}

/// Durability satellite: a `--wal` run replays on restart — the second
/// invocation recovers working memory from the log, skips the fact files,
/// and finds nothing left to fire.
#[test]
fn wal_run_and_recover_via_cli() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join(format!("teams-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    let args = [
        "--wal",
        wal.to_str().unwrap(),
        "--wm",
        &repo_file("programs/teams.wm"),
        &repo_file("programs/teams.ops"),
    ];
    let first = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(
        String::from_utf8_lossy(&first.stderr).contains("fired 2 rules"),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );

    // "Crash" and restart against the same log. The fact files are passed
    // again but must be ignored (recovery already restored them).
    let second = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("; recovered "), "{}", stderr);
    assert!(
        stderr.contains("; skipping --wm fact files: state was recovered"),
        "{}",
        stderr
    );
    assert!(stderr.contains("fired 0 rules"), "{}", stderr);
    // The dedup already happened in run one; it must not re-fire.
    assert!(
        !String::from_utf8_lossy(&second.stdout).contains("removing duplicates"),
        "{}",
        String::from_utf8_lossy(&second.stdout)
    );
    let _ = std::fs::remove_file(&wal);
}

/// Durability satellite: `--checkpoint-every` cuts checkpoints during the
/// run and `--resume` restores one — on a *different* matcher — with no
/// re-firing.
#[test]
fn checkpoint_resume_cross_matcher_via_cli() {
    let dir = std::env::temp_dir().join("sorete-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("teams-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    let first = Command::new(bin())
        .args([
            "--checkpoint-every",
            "1",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("; checkpointed "), "{}", stderr);

    let second = Command::new(bin())
        .args([
            "--matcher",
            "treat",
            "--resume",
            ckpt.to_str().unwrap(),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let stderr = String::from_utf8_lossy(&second.stderr);
    // The recorded source backend is `parallel-rete` under SORETE_JOBS.
    assert!(
        stderr.contains("; resumed ")
            && (stderr.contains("checkpointed from rete")
                || stderr.contains("checkpointed from parallel-rete")),
        "{}",
        stderr
    );
    assert!(stderr.contains("fired 0 rules"), "{}", stderr);
    let _ = std::fs::remove_file(&ckpt);
}

/// The REPL `metrics` command renders the registry table; `watch` runs in
/// chunks re-rendering it.
#[test]
fn repl_metrics_and_watch() {
    let mut child = Command::new(bin())
        .args(["--repl", &repo_file("programs/teams.ops")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "metrics").unwrap();
        writeln!(stdin, "watch 1").unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sorete_wm_size"), "{}", stdout);
    assert!(stdout.contains("sorete_firings_total"), "{}", stdout);
    assert!(
        stdout.contains("removing duplicates of Ada on team A"),
        "{}",
        stdout
    );
    // watch printed at least two tables (the `metrics` one and its own).
    assert!(stdout.matches("; cycle ").count() >= 2, "{}", stdout);
}

// ---------------------------------------------------------------------------
// Typed exit codes, the recovery summary, and fsck

/// The deterministic failing workload: `bump` counts to 5, then `poison`
/// divides by zero forever.
const POISON_OPS: &str = "
(literalize counter n)
(p bump
  (counter ^n <x> < 5)
  -->
  (modify 1 ^n (compute <x> + 1)))
(p poison
  (counter ^n {<x> 5})
  -->
  (modify 1 ^n (compute <x> / 0)))
";

fn cli_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sorete-cli-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_poison_fixture() -> (String, String) {
    let prog = cli_dir("poison.ops");
    let wm = cli_dir("poison.wm");
    std::fs::write(&prog, POISON_OPS).unwrap();
    std::fs::write(&wm, "(counter ^n 0)\n").unwrap();
    (
        prog.to_str().unwrap().to_string(),
        wm.to_str().unwrap().to_string(),
    )
}

#[test]
fn exit_codes_are_typed() {
    // 2: usage / parse errors.
    let out = Command::new(bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(bin())
        .arg("does-not-exist.ops")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let (prog, wm) = write_poison_fixture();
    // 3: the run stopped on an error.
    let out = Command::new(bin())
        .args(["--wm", &wm, &prog])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error after 5 firings"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 4: a hard resource budget ended the run.
    let out = Command::new(bin())
        .args(["--hard-mem", "1", "--wm", &wm, &prog])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resource exhausted"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 5: durability errors (here: resuming a checkpoint that is not one).
    let bogus = cli_dir("bogus.ckpt");
    std::fs::write(&bogus, "not a checkpoint\n").unwrap();
    let out = Command::new(bin())
        .args(["--resume", bogus.to_str().unwrap(), &prog])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 6: everything left to fire is quarantined.
    let out = Command::new(bin())
        .args([
            "--supervise",
            "--recovery",
            "rollback",
            "--quarantine-after",
            "2",
            "--wm",
            &wm,
            &prog,
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(6),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined (poison)"), "{}", stderr);
}

#[test]
fn wal_attach_always_prints_the_recovery_summary() {
    let (prog, wm) = write_poison_fixture();
    let wal = cli_dir("summary.wal");
    let _ = std::fs::remove_file(&wal);
    let count_prog = cli_dir("count.ops");
    std::fs::write(
        &count_prog,
        "(literalize counter n)\n(p bump (counter ^n <x> < 5) --> (modify 1 ^n (compute <x> + 1)))",
    )
    .unwrap();
    let _ = prog; // poison fixture shares the wm file
                  // First run: clean attach still prints the summary (all zeros).
    let out = Command::new(bin())
        .args([
            "--wal",
            wal.to_str().unwrap(),
            "--wm",
            &wm,
            count_prog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("; recovery: ") && stderr.contains("replayed=0"),
        "{}",
        stderr
    );
    // Second run: recovery replays the committed history and says so.
    let out = Command::new(bin())
        .args(["--wal", wal.to_str().unwrap(), count_prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("; recovery: "), "{}", stderr);
    assert!(!stderr.contains("replayed=0"), "{}", stderr);
    assert!(stderr.contains("commits="), "{}", stderr);
    assert!(stderr.contains("truncated_bytes="), "{}", stderr);
}

#[test]
fn fsck_validates_wal_and_checkpoint_pairing() {
    let wal = cli_dir("fsck.wal");
    let _ = std::fs::remove_file(&wal);
    let ckpt = cli_dir("fsck.wal.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let wm = cli_dir("fsck.wm");
    std::fs::write(&wm, "(counter ^n 0)\n").unwrap();
    let count_prog = cli_dir("fsck-count.ops");
    std::fs::write(
        &count_prog,
        "(literalize counter n)\n(p bump (counter ^n <x> < 5) --> (modify 1 ^n (compute <x> + 1)))",
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            "--wal",
            wal.to_str().unwrap(),
            "--checkpoint-every",
            "2",
            "--wm",
            wm.to_str().unwrap(),
            count_prog.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A healthy pair: fsck reports framing + pairing and exits 0.
    let out = Command::new(bin())
        .args(["fsck", wal.to_str().unwrap(), ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fsck: wal"), "{}", stdout);
    assert!(stdout.contains("fsck: checkpoint"), "{}", stdout);
    assert!(stdout.contains("pairing ok"), "{}", stdout);
    assert!(stdout.contains("fsck: ok"), "{}", stdout);

    // A torn tail is reported but still recoverable: exit 0.
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
    let out = Command::new(bin())
        .args(["fsck", wal.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tail defect"), "{}", stdout);
    assert!(stdout.contains("recoverable"), "{}", stdout);

    // Garbage is not a WAL: exit 5.
    let junk = cli_dir("junk.wal");
    std::fs::write(&junk, "definitely not a log").unwrap();
    let out = Command::new(bin())
        .args(["fsck", junk.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // An unrelated checkpoint generation cannot pair: exit 5.
    let text = std::fs::read_to_string(&ckpt).unwrap();
    let bumped: String = text
        .lines()
        .map(|l| {
            if let Some(g) = l.strip_prefix("GEN\t") {
                let n: u64 = g.trim().parse().unwrap();
                format!("GEN\t{}\n", n + 7)
            } else {
                format!("{}\n", l)
            }
        })
        .collect();
    let bad_ckpt = cli_dir("fsck-bad.ckpt");
    std::fs::write(&bad_ckpt, bumped).unwrap();
    let out = Command::new(bin())
        .args(["fsck", wal.to_str().unwrap(), bad_ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("generation mismatch"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The REPL's quarantine/readmit commands flip conflict-set eligibility.
#[test]
fn repl_quarantine_and_readmit() {
    let (prog, wm) = write_poison_fixture();
    let mut child = Command::new(bin())
        .args(["--repl", "--wm", &wm, &prog])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "quarantine poison").unwrap();
        writeln!(stdin, "run").unwrap();
        writeln!(stdin, "readmit poison").unwrap();
        writeln!(stdin, "readmit poison").unwrap();
        writeln!(stdin, "quarantine no-such-rule").unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("; quarantined poison"), "{}", stdout);
    // With poison quarantined, bump counts to 5 and the run rests at
    // quiescence instead of dying on the division.
    assert!(stdout.contains("; fired 5"), "{}", stdout);
    assert!(stdout.contains("; readmitted poison"), "{}", stdout);
    assert!(
        stdout.contains("; poison was not quarantined"),
        "{}",
        stdout
    );
    assert!(
        stdout.contains("no rule named `no-such-rule`"),
        "{}",
        stdout
    );
}

// ---------------------------------------------------------------------------
// Span layer: Perfetto export, span-stats, and the REPL `spans` command

use sorete_bench::gate::json::{self, Json};

/// Write the marking-scheme sweep fixture: many per-item cycles so the
/// trace has a real run → cycle → resolve/rhs structure.
fn write_sweep_fixture() -> (String, String) {
    let prog = cli_dir("sweep.ops");
    let wm = cli_dir("sweep.wm");
    std::fs::write(
        &prog,
        "(literalize item s)(literalize phase p)
         (p process-one (phase ^p sweep) (item ^s pending) (modify 2 ^s done))
         (p finish (phase ^p sweep) -(item ^s pending) (remove 1))",
    )
    .unwrap();
    let facts: String = std::iter::repeat_n("(item ^s pending)\n", 12)
        .chain(std::iter::once("(phase ^p sweep)\n"))
        .collect();
    std::fs::write(&wm, facts).unwrap();
    (
        prog.to_str().unwrap().to_string(),
        wm.to_str().unwrap().to_string(),
    )
}

/// Acceptance: `--trace-perfetto` emits valid Chrome trace-event JSON —
/// parseable, complete events only, span ids unique, cycle→phase→shard
/// nesting correct, and one named track per worker lane at `--jobs 4`.
#[test]
fn trace_perfetto_schema_and_nesting() {
    let (prog, wm) = write_sweep_fixture();
    let trace = cli_dir("sweep.perfetto.json");
    let wal = cli_dir("sweep.perfetto.wal");
    let _ = std::fs::remove_file(&wal);
    let out = Command::new(bin())
        .args([
            "--jobs",
            "4",
            "--wal",
            wal.to_str().unwrap(),
            "--trace-perfetto",
            trace.to_str().unwrap(),
            "--wm",
            &wm,
            &prog,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("wrote Perfetto trace"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON ({}): {}", e, text));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(events.len() > 20, "suspiciously short trace: {}", text);

    // Collect spans: id → (name, parent, tid); check per-event schema.
    let mut spans = std::collections::HashMap::new();
    let mut track_tids = std::collections::BTreeSet::new();
    let mut span_tids = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
        match ph {
            "M" => {
                assert_eq!(ev.get("name").and_then(Json::as_str), Some("thread_name"));
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name label");
                assert_eq!(label, format!("lane {}", tid));
                assert!(track_tids.insert(tid), "duplicate track metadata: {}", tid);
            }
            "X" => {
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                let cat = ev.get("cat").and_then(Json::as_str).expect("cat");
                assert!(["logical", "physical"].contains(&cat), "cat {}", cat);
                assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "ts");
                assert!(ev.get("dur").and_then(Json::as_f64).is_some(), "dur");
                let args = ev.get("args").expect("args");
                let id = args.get("id").and_then(Json::as_u64).expect("id");
                let parent = args.get("parent").and_then(Json::as_u64).expect("parent");
                assert!(id > 0, "span ids start at 1");
                assert!(
                    spans.insert(id, (name.to_string(), parent, tid)).is_none(),
                    "duplicate span id {}",
                    id
                );
                span_tids.insert(tid);
            }
            other => panic!("unexpected event phase {:?}", other),
        }
    }

    // One named track per lane that recorded spans, 4 worker lanes under
    // --jobs 4 (the engine shares lane 0).
    assert_eq!(track_tids, span_tids, "every lane track is labeled");
    assert!(
        track_tids.len() >= 4,
        "expected one track per worker lane at --jobs 4, got {:?}",
        track_tids
    );

    // Nesting: cycles under the run; resolve/rhs/wal_commit under their
    // cycle; shard fan-out under a match span.
    let name_of = |id: u64| spans.get(&id).map(|(n, _, _)| n.as_str());
    let mut cycles = 0;
    let mut shard = 0;
    for (name, parent, _) in spans.values() {
        match name.as_str() {
            "cycle" => {
                cycles += 1;
                assert_eq!(name_of(*parent), Some("run"), "cycle must nest in run");
            }
            "resolve" | "rhs" | "wal_commit" => {
                assert_eq!(
                    name_of(*parent),
                    Some("cycle"),
                    "{} must nest in cycle",
                    name
                );
            }
            "shard_match" => {
                shard += 1;
                assert_eq!(
                    name_of(*parent),
                    Some("match"),
                    "shard_match must nest in match"
                );
            }
            "match" => {
                assert!(
                    *parent == 0 || name_of(*parent) == Some("rhs"),
                    "match must be top-level (load) or inside rhs, got {:?}",
                    name_of(*parent)
                );
            }
            "run" => assert_eq!(*parent, 0, "run is a root span"),
            "wal_append" | "wal_flush" | "wal_fsync" => {}
            other => panic!("unexpected span category {:?}", other),
        }
    }
    // 12 process-one firings + finish: at least 13 cycles.
    assert!(cycles >= 13, "expected >=13 cycles, got {}", cycles);
    assert!(shard > 0, "parallel backend must record shard spans");
    let _ = std::fs::remove_file(&wal);
}

/// `--span-stats` prints the per-category percentile table plus the
/// shard-imbalance line; `--stats` carries the WAL write counters; the
/// Prometheus export carries the imbalance gauge and WAL write counter.
#[test]
fn span_stats_and_new_metric_families() {
    let (prog, wm) = write_sweep_fixture();
    let wal = cli_dir("sweep.stats.wal");
    let _ = std::fs::remove_file(&wal);
    let prom = cli_dir("sweep.prom");
    let out = Command::new(bin())
        .args([
            "--jobs",
            "4",
            "--wal",
            wal.to_str().unwrap(),
            "--span-stats",
            "--stats",
            "--metrics-prom",
            prom.to_str().unwrap(),
            "--wm",
            &wm,
            &prog,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("; spans ("), "{}", stdout);
    for cat in ["cycle", "resolve", "rhs", "wal_commit", "shard_match"] {
        assert!(stdout.contains(cat), "missing {} in:\n{}", cat, stdout);
    }
    assert!(stdout.contains("p50us"), "{}", stdout);
    assert!(stdout.contains("; shard imbalance: "), "{}", stdout);
    assert!(stdout.contains("; wal: records="), "{}", stdout);
    assert!(stdout.contains("writes="), "{}", stdout);

    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        text.contains("# TYPE sorete_shard_imbalance_permille gauge"),
        "{}",
        text
    );
    assert!(
        text.contains("# TYPE sorete_wal_writes_total counter"),
        "{}",
        text
    );
    // Real samples, not just declarations.
    let sample = |family: &str| {
        text.lines()
            .find(|l| l.starts_with(family) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no sample for {}:\n{}", family, text))
    };
    assert!(sample("sorete_shard_imbalance_permille") >= 1000);
    assert!(sample("sorete_wal_writes_total") > 0);
    let _ = std::fs::remove_file(&wal);
}

/// The REPL `spans` command: first use arms the recorder, later calls
/// render the table.
#[test]
fn repl_spans_command() {
    let (prog, wm) = write_sweep_fixture();
    let mut child = Command::new(bin())
        .args(["--repl", "--wm", &wm, &prog])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "spans").unwrap();
        writeln!(stdin, "run").unwrap();
        writeln!(stdin, "spans").unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("; span recording enabled"), "{}", stdout);
    assert!(stdout.contains("category"), "{}", stdout);
    assert!(stdout.contains("cycle"), "{}", stdout);
    assert!(stdout.contains("rhs"), "{}", stdout);
}

// ---------------------------------------------------------------------------
// Flight recorder, crash bundles, and the offline inspector

#[test]
fn repl_explain_why_not_and_dump() {
    let mut child = Command::new(bin())
        .args(["--repl", &repo_file("programs/teams.ops")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "explain RemoveDups").unwrap();
        writeln!(stdin, "run").unwrap();
        writeln!(stdin, "why-not RemoveDups").unwrap();
        writeln!(stdin, "why-not no-such-rule").unwrap();
        writeln!(stdin, "dump").unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Live explain before the run: the duplicate pair is in the CS.
    assert!(stdout.contains("; explain RemoveDups — "), "{}", stdout);
    assert!(
        stdout.contains("instantiation(s) in the conflict set"),
        "{}",
        stdout
    );
    // After firing, why-not explains the now-empty CS.
    assert!(stdout.contains("; why-not RemoveDups — "), "{}", stdout);
    assert!(
        stdout.contains("no rule named `no-such-rule`"),
        "{}",
        stdout
    );
    // `dump` (no args) still prints working memory as a fact file.
    assert!(stdout.contains("(player ^name Ada ^team A)"), "{}", stdout);
}

#[test]
fn repl_dump_bundle_writes_an_inspectable_bundle() {
    let dir = cli_dir("repl-bundle");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = Command::new(bin())
        .args(["--repl", &repo_file("programs/teams.ops")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "make (player ^name Ada ^team A)").unwrap();
        writeln!(stdin, "run").unwrap();
        writeln!(stdin, "dump bundle {}", dir.display()).unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let bundle = stdout
        .lines()
        .find_map(|l| l.split("wrote crash bundle to ").nth(1))
        .unwrap_or_else(|| panic!("no bundle line: {}", stdout))
        .trim();
    // Manual dumps are stamped stop=manual, and both inspectors take them.
    let out = Command::new(bin())
        .args(["debug", bundle])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let debug_out = String::from_utf8_lossy(&out.stdout);
    assert!(debug_out.contains("stop=manual"), "{}", debug_out);
    let out = Command::new(bin()).args(["fsck", bundle]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("fsck: ok"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_explain_matches_the_live_flag_byte_for_byte() {
    let dir = cli_dir("debug-diff");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (prog, wm) = write_poison_fixture();
    for matcher in ["rete", "rete-scan", "treat", "naive"] {
        // Live: the abnormal run prints --explain from the event log and
        // drops a bundle on its way out.
        let out = Command::new(bin())
            .args(["--matcher", matcher, "--explain", "poison", "--crash-dir"])
            .arg(&dir)
            .args(["--wm", &wm, &prog])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(3));
        let live: String = String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.starts_with("; "))
            .map(|l| format!("{}\n", l))
            .collect();
        assert!(live.contains("explain poison"), "{}: {}", matcher, live);
        let stderr = String::from_utf8_lossy(&out.stderr);
        let bundle = stderr
            .lines()
            .find_map(|l| l.split("crash bundle: ").nth(1))
            .unwrap_or_else(|| panic!("{}: no bundle in {}", matcher, stderr))
            .trim()
            .to_string();
        // Offline: same rule, same renderer, same bytes.
        let out = Command::new(bin())
            .args(["debug", &bundle, "explain", "poison"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            live,
            "{}: offline explain diverged",
            matcher
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_usage_and_bad_bundles_are_typed() {
    // No bundle dir at all.
    let out = Command::new(bin()).arg("debug").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // A directory that is not a bundle.
    let dir = cli_dir("not-a-bundle");
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(bin()).arg("debug").arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("debug:"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // An unknown subcommand.
    let (prog, wm) = write_poison_fixture();
    let bdir = cli_dir("typed-bundle");
    let _ = std::fs::remove_dir_all(&bdir);
    std::fs::create_dir_all(&bdir).unwrap();
    let out = Command::new(bin())
        .args(["--crash-dir"])
        .arg(&bdir)
        .args(["--wm", &wm, &prog])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let bundle = std::fs::read_dir(&bdir)
        .unwrap()
        .flatten()
        .find(|e| e.file_name().to_string_lossy().starts_with("sorete-crash-"))
        .expect("bundle written")
        .path();
    let out = Command::new(bin())
        .args(["debug"])
        .arg(&bundle)
        .arg("frobnicate")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Perfetto re-emit from the bundle parses as a JSON array shell.
    let trace = cli_dir("bundle-trace.json");
    let out = Command::new(bin())
        .args(["debug"])
        .arg(&bundle)
        .arg("perfetto")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        text.starts_with('{') && text.contains("\"traceEvents\""),
        "{}",
        &text[..text.len().min(80)]
    );
    let _ = std::fs::remove_dir_all(&bdir);
}

#[test]
fn shards_flag_keeps_output_identical_and_exports_the_gauge() {
    let base = Command::new(bin())
        .args([
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .unwrap();
    assert!(base.status.success());
    for args in [
        vec!["--shards", "2"],
        vec!["--jobs", "2", "--shards", "4"],
        vec!["--jobs", "2", "--shards", "1"],
    ] {
        let out = Command::new(bin())
            .args(&args)
            .args([
                "--wm",
                &repo_file("programs/teams.wm"),
                &repo_file("programs/teams.ops"),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{:?}: {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
        // The logical run is invariant under partitioning.
        assert_eq!(out.stdout, base.stdout, "{:?}", args);
    }
    // The topology is observable: sorete_shards gauge in the exposition.
    let prom = cli_dir("shards.prom");
    let out = Command::new(bin())
        .args(["--jobs", "2", "--shards", "4", "--metrics-prom"])
        .arg(&prom)
        .args([
            "--wm",
            &repo_file("programs/teams.wm"),
            &repo_file("programs/teams.ops"),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(text.contains("sorete_shards 4"), "{}", text);
}
