//! Property tests for the relational substrate: executor operators versus
//! straightforward reference computations, and serializability of the
//! optimistic transaction layer.

use proptest::prelude::*;
use sorete::reldb::{dump, load, AggFun, ColRef, Database, Plan, Schema, Transaction};
use sorete_base::{Symbol, TimeTag, Value};
use std::collections::BTreeMap;

/// Decode one generated cell: the kind selector picks the `Value` variant,
/// the integer doubles as payload (for floats, reinterpreted as raw IEEE
/// bits so NaN / ±0.0 / subnormal patterns are all exercised).
fn cell(kind: u8, n: i64, s: &str) -> Value {
    match kind % 5 {
        0 => Value::Nil,
        1 => Value::Int(n),
        2 => Value::Float(f64::from_bits(n as u64)),
        3 => Value::sym(if s.is_empty() { "x" } else { s }),
        _ => Value::Tag(TimeTag::new(n.unsigned_abs())),
    }
}

fn setup(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_table(Schema::new("t", &["k", "v"])).unwrap();
    for &(k, v) in rows {
        db.insert("t", vec![Value::Int(k), Value::Int(v)]).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// GROUP BY with aggregates ≡ a BTreeMap reference implementation.
    #[test]
    fn group_by_matches_reference(rows in proptest::collection::vec((0i64..5, -10i64..10), 0..30)) {
        let db = setup(&rows);
        let rel = db.query(&Plan::GroupBy {
            input: Box::new(Plan::Scan("t".into())),
            keys: vec![ColRef::new("k")],
            aggs: vec![
                (AggFun::Count, ColRef::new("v")),
                (AggFun::Sum, ColRef::new("v")),
                (AggFun::Min, ColRef::new("v")),
                (AggFun::Max, ColRef::new("v")),
            ],
        }).unwrap();

        let mut reference: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for &(k, v) in &rows {
            reference.entry(k).or_default().push(v);
        }
        prop_assert_eq!(rel.rows.len(), reference.len());
        for (row, (k, vs)) in rel.rows.iter().zip(reference.iter()) {
            prop_assert_eq!(row[0], Value::Int(*k), "groups sorted by key");
            prop_assert_eq!(row[1], Value::Int(vs.len() as i64));
            prop_assert_eq!(row[2], Value::Int(vs.iter().sum::<i64>()));
            prop_assert_eq!(row[3], Value::Int(*vs.iter().min().unwrap()));
            prop_assert_eq!(row[4], Value::Int(*vs.iter().max().unwrap()));
        }
    }

    /// Hash equi-join ≡ nested-loop reference.
    #[test]
    fn join_matches_reference(
        left in proptest::collection::vec((0i64..4, 0i64..10), 0..15),
        right in proptest::collection::vec((0i64..4, 0i64..10), 0..15),
    ) {
        let mut db = Database::new();
        db.create_table(Schema::new("l", &["k", "a"])).unwrap();
        db.create_table(Schema::new("r", &["k", "b"])).unwrap();
        for &(k, a) in &left {
            db.insert("l", vec![Value::Int(k), Value::Int(a)]).unwrap();
        }
        for &(k, b) in &right {
            db.insert("r", vec![Value::Int(k), Value::Int(b)]).unwrap();
        }
        let rel = db.query(&Plan::Join {
            left: Box::new(Plan::Scan("l".into())),
            right: Box::new(Plan::Scan("r".into())),
            on: vec![(ColRef::new("l.k"), ColRef::new("r.k"))],
        }).unwrap();

        let mut expected: Vec<(i64, i64, i64, i64)> = Vec::new();
        for &(lk, a) in &left {
            for &(rk, b) in &right {
                if lk == rk {
                    expected.push((lk, a, rk, b));
                }
            }
        }
        let mut got: Vec<(i64, i64, i64, i64)> = rel.rows.iter().map(|r| {
            match (r[0], r[1], r[2], r[3]) {
                (Value::Int(a), Value::Int(b), Value::Int(c), Value::Int(d)) => (a, b, c, d),
                other => panic!("unexpected row {:?}", other),
            }
        }).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Optimistic transactions are serializable: the committed outcome of a
    /// batch of racing increment transactions equals running the committed
    /// subset serially (no lost updates, ever).
    #[test]
    fn no_lost_updates(
        n_rows in 1usize..4,
        increments in proptest::collection::vec((0usize..4, 1i64..5), 1..10),
    ) {
        let mut db = Database::new();
        db.create_table(Schema::new("acct", &["bal"])).unwrap();
        let mut ids = Vec::new();
        for _ in 0..n_rows {
            ids.push(db.insert("acct", vec![Value::Int(0)]).unwrap());
        }

        // Build all transactions against the same snapshot, then commit.
        let mut txs: Vec<(usize, i64, Transaction)> = Vec::new();
        for &(row, inc) in &increments {
            let id = ids[row % n_rows];
            let mut tx = db.begin();
            let cur = tx.read(&db, "acct", id).unwrap().unwrap();
            let Value::Int(bal) = cur[0] else { panic!() };
            tx.update(&db, "acct", id, "bal", Value::Int(bal + inc)).unwrap();
            txs.push((row % n_rows, inc, tx));
        }
        let mut committed: Vec<(usize, i64)> = Vec::new();
        for (row, inc, tx) in txs {
            if db.commit(tx).is_ok() {
                committed.push((row, inc));
            }
        }

        // Serial re-execution of the committed subset must give the same
        // balances (i.e. every committed increment is fully reflected).
        let mut expected = vec![0i64; n_rows];
        for (row, inc) in &committed {
            expected[*row] += inc;
        }
        for (i, id) in ids.iter().enumerate() {
            let bal = db.table_by_name("acct").unwrap().get(*id).unwrap()[0];
            prop_assert_eq!(bal, Value::Int(expected[i]), "row {}", i);
        }
        // At most one racing writer per row can commit.
        let mut per_row = vec![0usize; n_rows];
        for (row, _) in &committed {
            per_row[*row] += 1;
        }
        prop_assert!(per_row.iter().all(|&c| c <= 1), "{:?}", per_row);
    }

    /// The dump format round-trips: `load(dump(db))` re-renders the exact
    /// same dump — float bit patterns preserved, tab/newline/backslash in
    /// symbol text escaped and recovered, secondary indexes re-derived —
    /// including tables with tombstones (the reload compacts them, and a
    /// dump only lists live rows, so the texts still agree).
    #[test]
    fn dump_round_trips(
        rows in proptest::collection::vec(
            ((0u8..5, any::<i64>(), "[a-zA-Z0-9\\t\\n\\\\ .:-]{0,10}"),
             (0u8..5, any::<i64>(), "[\\t\\n\\\\]{0,4}"),
             (0u8..5, any::<i64>(), "[ -~]{0,8}")),
            0..15),
        doomed in proptest::collection::vec(0usize..64, 0..5),
    ) {
        let mut db = Database::new();
        db.create_table(Schema::new("t", &["a", "b", "c"])).unwrap();
        db.table_mut(Symbol::new("t")).unwrap().create_index(Symbol::new("b")).unwrap();
        let mut ids = Vec::new();
        for ((k0, n0, s0), (k1, n1, s1), (k2, n2, s2)) in &rows {
            let row = vec![cell(*k0, *n0, s0), cell(*k1, *n1, s1), cell(*k2, *n2, s2)];
            ids.push(db.insert("t", row).unwrap());
        }
        for d in &doomed {
            if !ids.is_empty() {
                // Double deletes error harmlessly; tombstones are the point.
                let _ = db.table_mut(Symbol::new("t")).unwrap().delete(ids[d % ids.len()]);
            }
        }
        let text = dump(&db);
        let back = load(&text).unwrap();
        prop_assert_eq!(dump(&back), text, "re-dump is byte-identical");
        let t = back.table_by_name("t").unwrap();
        prop_assert!(t.has_index(Symbol::new("b")), "secondary index re-derived");
        prop_assert_eq!(
            t.len(),
            db.table_by_name("t").unwrap().len(),
            "live row count survives"
        );
    }

    /// ORDER BY produces a permutation sorted by the requested key.
    #[test]
    fn order_by_sorts(rows in proptest::collection::vec((0i64..100, 0i64..100), 0..25)) {
        let db = setup(&rows);
        let rel = db.query(&Plan::OrderBy {
            input: Box::new(Plan::Scan("t".into())),
            keys: vec![(ColRef::new("v"), true)],
        }).unwrap();
        prop_assert_eq!(rel.rows.len(), rows.len());
        for pair in rel.rows.windows(2) {
            prop_assert!(pair[0][1] <= pair[1][1]);
        }
    }
}
