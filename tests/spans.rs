//! Span-layer invariants: the *logical* span tree (run → cycle →
//! resolve/rhs/wal_commit nesting plus the per-action match spans) is a
//! projection of the logical delta stream, so — like the trace events and
//! checkpoints pinned by `tests/parallel.rs` — it must be identical at
//! every `--jobs` level for every matcher kind. Physical spans
//! (`shard_match`, `wal_*`) describe host scheduling and are excluded by
//! [`sorete_base::logical_tree`].

use proptest::prelude::*;
use sorete::core::{MatcherKind, ProductionSystem};
use sorete_base::{logical_tree, span_stats, Value};

const KINDS: [MatcherKind; 4] = [
    MatcherKind::Rete,
    MatcherKind::ReteScan,
    MatcherKind::Treat,
    MatcherKind::Naive,
];

/// Same shape as the `tests/parallel.rs` workload: joins, negation, and
/// WM-mutating right-hand sides so firings feed back into the matcher.
const PROGRAM: &str = "(literalize a x y)(literalize b x y)
    (p pair (a ^x <v>) (b ^x <v> ^y <w>) (write pair <v>) (remove 2))
    (p solo (a ^x 3 ^y <w>) (remove 1))
    (p guard (b ^x <v>) -(a ^x <v> ^y <v>) (write g <v>))";

#[derive(Clone, Debug)]
enum Op {
    Insert { class: u8, x: i64, y: i64 },
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2, 0i64..4, 0i64..4).prop_map(|(class, x, y)| Op::Insert { class, x, y }),
        1 => (0usize..16).prop_map(Op::Remove),
    ]
}

/// Drive one spans-enabled engine through `ops`; return the logical tree.
fn drive(mut ps: ProductionSystem, ops: &[Op]) -> String {
    ps.load_program(PROGRAM).unwrap();
    ps.enable_spans();
    let mut live = Vec::new();
    for op in ops {
        match op {
            Op::Insert { class, x, y } => {
                let tag = ps
                    .make_str(
                        if *class == 0 { "a" } else { "b" },
                        &[("x", Value::Int(*x)), ("y", Value::Int(*y))],
                    )
                    .unwrap();
                live.push(tag);
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let tag = live.remove(i % live.len());
                if ps.wm().get(tag).is_some() {
                    ps.retract_wme(tag).unwrap();
                }
            }
        }
        let _ = ps.run(Some(4));
    }
    logical_tree(&ps.take_spans())
}

fn assert_tree_jobs_invariant(kind: MatcherKind, ops: &[Op]) {
    let base = drive(ProductionSystem::with_jobs(kind, 1), ops);
    for jobs in [2usize, 4] {
        let tree = drive(ProductionSystem::with_jobs(kind, jobs), ops);
        assert_eq!(
            tree, base,
            "{:?}: logical span tree at jobs={} diverged from jobs=1",
            kind, jobs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The logical span tree never depends on the worker count.
    #[test]
    fn logical_span_tree_is_jobs_invariant(
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        for kind in KINDS {
            assert_tree_jobs_invariant(kind, &ops);
        }
    }
}

/// Fixed inputs for the same invariant, plus shape assertions on the tree
/// itself: spans nest run → cycle → {resolve, rhs}, and match spans track
/// the WM operations.
#[test]
fn span_tree_regression_and_shape() {
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 1,
            x: 1,
            y: 2,
        },
        Op::Insert {
            class: 0,
            x: 3,
            y: 0,
        },
        Op::Insert {
            class: 1,
            x: 2,
            y: 2,
        },
        Op::Remove(1),
        Op::Insert {
            class: 0,
            x: 2,
            y: 2,
        },
        Op::Insert {
            class: 1,
            x: 3,
            y: 3,
        },
        Op::Remove(0),
    ];
    for kind in KINDS {
        assert_tree_jobs_invariant(kind, &ops);
    }
    let tree = drive(ProductionSystem::with_jobs(MatcherKind::Rete, 4), &ops);
    assert!(tree.contains("match x"), "tree:\n{}", tree);
    assert!(tree.contains("run x"), "tree:\n{}", tree);
    assert!(tree.contains("  cycle x"), "tree:\n{}", tree);
    assert!(tree.contains("    resolve x"), "tree:\n{}", tree);
    assert!(tree.contains("    rhs x"), "tree:\n{}", tree);
    // No physical categories may leak into the logical view.
    assert!(!tree.contains("shard_match"), "tree:\n{}", tree);
}

/// The span-stats summary is deterministic in the categories it reports
/// and counts only what was recorded.
#[test]
fn span_stats_reports_each_category_once() {
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 1,
            x: 1,
            y: 2,
        },
    ];
    let mut ps = ProductionSystem::with_jobs(MatcherKind::Rete, 2);
    ps.load_program(PROGRAM).unwrap();
    ps.enable_spans();
    for op in &ops {
        if let Op::Insert { class, x, y } = op {
            ps.make_str(
                if *class == 0 { "a" } else { "b" },
                &[("x", Value::Int(*x)), ("y", Value::Int(*y))],
            )
            .unwrap();
        }
        let _ = ps.run(Some(4));
    }
    let spans = ps.take_spans();
    let stats = span_stats(&spans);
    let mut cats: Vec<&str> = stats.iter().map(|s| s.category).collect();
    cats.sort_unstable();
    let mut deduped = cats.clone();
    deduped.dedup();
    assert_eq!(cats, deduped, "categories must aggregate uniquely");
    let total: u64 = stats.iter().map(|s| s.count).sum();
    assert_eq!(total, spans.len() as u64);
    assert!(stats.iter().any(|s| s.category == "match"));
    assert!(stats.iter().any(|s| s.category == "shard_match"));
}
