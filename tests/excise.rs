//! Excise (dynamic rule removal): a removed production's instantiations
//! leave the conflict set, it never matches again, shared network prefixes
//! survive for the rules that still use them — and the matchers agree with
//! the oracle afterwards.

use proptest::prelude::*;
use sorete::core::{MatcherKind, ProductionSystem};
use sorete::lang::{analyze_rule, parse_rule, Matcher};
use sorete::naive::NaiveMatcher;
use sorete::rete::ReteMatcher;
use sorete::treat::TreatMatcher;
use sorete_base::{ConflictItem, CsDelta, FxHashMap, InstKey, RuleId, Symbol, TimeTag, Value, Wme};
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn excised_rule_leaves_conflict_set_and_stays_quiet() {
    for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(
            "(literalize a x)
             (p loud (a ^x <v>) (write loud <v>) (remove 1))
             (p quiet (a ^x <v>) (write quiet <v>) (remove 1))",
        )
        .unwrap();
        ps.make_str("a", &[("x", Value::Int(1))]).unwrap();
        assert_eq!(ps.conflict_set_len(), 2, "{:?}", kind);
        ps.excise("loud").unwrap();
        assert_eq!(ps.conflict_set_len(), 1, "{:?}", kind);
        // New WMEs never reach the excised rule.
        ps.make_str("a", &[("x", Value::Int(2))]).unwrap();
        ps.run(Some(10));
        let out = ps.take_output();
        assert!(
            out.iter().all(|l| l.starts_with("quiet")),
            "{:?}: {:?}",
            kind,
            out
        );
        assert_eq!(out.len(), 2, "{:?}", kind);
        // Excising twice errors cleanly.
        assert!(ps.excise("loud").is_err());
    }
}

#[test]
fn excise_set_oriented_rule_drains_soi() {
    for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(
            "(literalize a x)
             (p watch { [a ^x <v>] <P> } :test ((count <P>) > 0) (write n (count <P>)))",
        )
        .unwrap();
        ps.make_str("a", &[("x", Value::Int(1))]).unwrap();
        ps.make_str("a", &[("x", Value::Int(2))]).unwrap();
        assert_eq!(ps.conflict_set_len(), 1, "{:?}", kind);
        ps.excise("watch").unwrap();
        assert_eq!(ps.conflict_set_len(), 0, "{:?}", kind);
        ps.make_str("a", &[("x", Value::Int(3))]).unwrap();
        assert_eq!(ps.conflict_set_len(), 0, "{:?}", kind);
    }
}

#[test]
fn excise_keeps_shared_prefix_alive() {
    // Two rules share their whole 2-CE prefix; excising one must not
    // disturb the other (the paper's shared-test economy).
    let mut m = ReteMatcher::new();
    let r1 = m.add_rule(Arc::new(
        analyze_rule(&parse_rule("(p r1 (a ^x <v>) (b ^x <v>) (halt))").unwrap()).unwrap(),
    ));
    let _r2 = m.add_rule(Arc::new(
        analyze_rule(&parse_rule("(p r2 (a ^x <v>) (b ^x <v>) (write hi))").unwrap()).unwrap(),
    ));
    let mk = |tag: u64, class: &str| {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            vec![(Symbol::new("x"), Value::Int(1))],
        )
    };
    m.insert_wme(&mk(1, "a"));
    m.insert_wme(&mk(2, "b"));
    let mut cs: FxHashMap<InstKey, ConflictItem> = FxHashMap::default();
    let apply = |m: &mut ReteMatcher, cs: &mut FxHashMap<InstKey, ConflictItem>| {
        for d in m.drain_deltas() {
            match d {
                CsDelta::Insert(i) => {
                    cs.insert(i.key.clone(), i);
                }
                CsDelta::Remove(k) => {
                    cs.remove(&k);
                }
                CsDelta::Retime(info) => {
                    if let Some(fresh) = m.materialize(&info.key) {
                        cs.insert(info.key.clone(), fresh);
                    }
                }
            }
        }
    };
    apply(&mut m, &mut cs);
    assert_eq!(cs.len(), 2);
    m.remove_rule(r1);
    apply(&mut m, &mut cs);
    assert_eq!(cs.len(), 1);
    assert!(cs.keys().all(|k| k.rule() != r1));
    // The survivor still matches fresh WMEs through the shared prefix.
    m.insert_wme(&mk(3, "b"));
    apply(&mut m, &mut cs);
    assert_eq!(cs.len(), 2, "r2 found (a1, b3) via the shared join chain");
}

// ------------------------- property: excise ≡ never-had-the-rule ---------

const RULES: &[&str] = &[
    "(p r0 (a ^x <v>) (b ^x <v>) (halt))",
    "(p r1 (a ^x <v>) -(b ^x <v>) (halt))",
    "(p r2 { [a ^x <v>] <P> } :scalar (<v>) :test ((count <P>) > 1) (set-remove <P>))",
];

type Canon = BTreeSet<(usize, BTreeSet<Vec<u64>>)>;

fn canon(m: &mut dyn Matcher, seen: &mut FxHashMap<InstKey, ConflictItem>) -> Canon {
    for d in m.drain_deltas() {
        match d {
            CsDelta::Insert(i) => {
                seen.insert(i.key.clone(), i);
            }
            CsDelta::Remove(k) => {
                seen.remove(&k);
            }
            CsDelta::Retime(info) => {
                if let Some(fresh) = m.materialize(&info.key) {
                    seen.insert(info.key.clone(), fresh);
                }
            }
        }
    }
    seen.values()
        .map(|i| {
            (
                i.key.rule().index(),
                i.rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn excise_matches_oracle(
        wmes in proptest::collection::vec((0u8..2, 0i64..3), 1..10),
        excise_at in 0usize..3,
    ) {
        let make = |kind: &str| -> Box<dyn Matcher> {
            match kind {
                "rete" => Box::new(ReteMatcher::new()),
                "treat" => Box::new(TreatMatcher::new()),
                _ => Box::new(NaiveMatcher::new()),
            }
        };
        for kind in ["rete", "treat", "naive"] {
            let mut m = make(kind);
            let mut oracle = NaiveMatcher::new();
            let mut ids = Vec::new();
            for src in RULES {
                let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
                ids.push(m.add_rule(r.clone()));
                oracle.add_rule(r);
            }
            let mut m_cs = FxHashMap::default();
            let mut o_cs = FxHashMap::default();
            for (i, &(c, x)) in wmes.iter().enumerate() {
                let w = Wme::new(
                    TimeTag::new(i as u64 + 1),
                    Symbol::new(if c == 0 { "a" } else { "b" }),
                    vec![(Symbol::new("x"), Value::Int(x))],
                );
                m.insert_wme(&w);
                oracle.insert_wme(&w);
            }
            m.remove_rule(ids[excise_at]);
            oracle.remove_rule(RuleId::new(excise_at));
            prop_assert_eq!(
                canon(m.as_mut(), &mut m_cs),
                canon(&mut oracle, &mut o_cs),
                "{} after excising rule {}",
                kind,
                excise_at
            );
        }
    }
}
