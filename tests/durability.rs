//! Durability layer integration tests: the crash-restart differentials.
//!
//! Three layers, three harnesses:
//!
//! 1. **reldb fault sweep** — a fixed `DurableDb` workload is re-run with
//!    every storage fault kind injected at *every* record index; after the
//!    simulated crash the reopened database must be byte-identical to the
//!    clean run's state at the same commit point.
//! 2. **engine crash/recovery differential** — a production-system run
//!    with a WAL attached is crashed at every log record; a fresh engine
//!    recovering from the log and running to completion must reach the
//!    exact final state (stats, working memory, conflict set) of a run
//!    that never crashed.
//! 3. **checkpoint/resume matcher portability** — a checkpoint cut
//!    mid-run on the Rete matcher must resume on every matcher (including
//!    S-node rules) with an identical conflict set, identical refraction
//!    behaviour, and an identical final state.

use sorete::core::{MatcherKind, ProductionSystem, StopReason};
use sorete::reldb::{DurableDb, IoFaultKind, IoFaultPlan, Schema, WalOptions};
use sorete_base::Value;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sorete-durability-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}", name, std::process::id()))
}

fn fresh(path: &Path) {
    let _ = std::fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// 1. reldb fault sweep

/// The sweep workload: every step is exactly one commit point, so the
/// clean run's dump after step `k` is the oracle for any crash whose
/// recovery reports `k` replayed commits.
type Step = fn(&mut DurableDb) -> Result<(), sorete::reldb::DbError>;

fn steps() -> Vec<Step> {
    vec![
        |d| d.create_table(Schema::new("emp", &["name", "sal"])),
        |d| d.create_index("emp", "sal"),
        |d| {
            d.insert("emp", vec![Value::sym("ann"), Value::Int(120)])
                .map(|_| ())
        },
        |d| {
            d.insert("emp", vec![Value::sym("bob"), Value::Int(80)])
                .map(|_| ())
        },
        |d| {
            d.insert("emp", vec![Value::sym("cat"), Value::Int(95)])
                .map(|_| ())
        },
        |d| d.update("emp", sorete::reldb::RowId::new(0), "sal", Value::Int(150)),
        |d| d.delete("emp", sorete::reldb::RowId::new(1)),
        |d| {
            // One multi-write optimistic transaction (atomic in the log).
            let mut tx = d.begin();
            tx.insert("emp", vec![Value::sym("dot"), Value::Int(70)]);
            tx.update(
                d.db(),
                "emp",
                sorete::reldb::RowId::new(2),
                "sal",
                Value::Int(99),
            )?;
            d.commit(tx)
        },
        |d| d.mark_cycle(b"cycle 1"),
    ]
}

#[test]
fn reldb_fault_sweep_recovers_to_last_commit_point_everywhere() {
    // Clean run: record the dump after every commit point.
    let (ckpt, wal) = (tmp("sweep-clean.ckpt"), tmp("sweep-clean.wal"));
    fresh(&ckpt);
    fresh(&wal);
    let mut snaps: Vec<String> = Vec::new();
    let total_records;
    {
        let (mut ddb, _) = DurableDb::open(&ckpt, &wal, WalOptions::default()).unwrap();
        snaps.push(sorete::reldb::dump(ddb.db()));
        for step in steps() {
            step(&mut ddb).unwrap();
            snaps.push(sorete::reldb::dump(ddb.db()));
        }
        total_records = ddb.wal_stats().records;
    }
    assert!(
        total_records >= 15,
        "workload writes {} records",
        total_records
    );

    let kinds = [
        IoFaultKind::Fail,
        IoFaultKind::ShortWrite,
        IoFaultKind::TornWrite,
        IoFaultKind::FsyncError,
    ];
    for kind in kinds {
        for at in 0..total_records {
            let (c2, w2) = (
                tmp(&format!("sweep-{:?}-{}.ckpt", kind, at)),
                tmp(&format!("sweep-{:?}-{}.wal", kind, at)),
            );
            fresh(&c2);
            fresh(&w2);
            // Crash run: stop at the first error, like a process that died.
            {
                let (mut ddb, _) = DurableDb::open(&c2, &w2, WalOptions::default()).unwrap();
                ddb.inject_fault(IoFaultPlan::nth(kind, at));
                for step in steps() {
                    if step(&mut ddb).is_err() {
                        break;
                    }
                }
            }
            // Restart: recovered state ≡ the clean run at the same commit
            // point, byte for byte.
            let (ddb, rep) = DurableDb::open(&c2, &w2, WalOptions::default()).unwrap();
            let k = rep.replayed_commits as usize;
            assert!(
                k < snaps.len(),
                "{:?}@{}: replayed {} commits, clean run has {}",
                kind,
                at,
                k,
                snaps.len() - 1
            );
            assert_eq!(
                sorete::reldb::dump(ddb.db()),
                snaps[k],
                "{:?}@{}: recovered dump diverges at commit {}",
                kind,
                at,
                k
            );
            fresh(&c2);
            fresh(&w2);
        }
    }
    fresh(&ckpt);
    fresh(&wal);
}

// ---------------------------------------------------------------------------
// 2. engine crash/recovery differential

/// A program mixing scalar cycles (modify = retract + assert per cycle)
/// with an S-node set rule and aggregates, ending in a halt.
const ENGINE_PROG: &str = "
    (literalize c n)
    (literalize lim max)
    (literalize done total)
    (p count (c ^n <n>) (lim ^max > <n>) (modify 1 ^n (<n> + 1)))
    (p finale { [c ^n 6] <P> } (make done ^total (count <P>)) (halt))
";

/// Seed the counting workload, tolerating WAL failures (the crash runs
/// inject faults that can hit the seeding commits themselves). Asserts
/// only the facts not already recovered from the log.
fn seed_engine(ps: &mut ProductionSystem) -> Result<(), sorete::core::CoreError> {
    let have = |ps: &ProductionSystem, class: &str| {
        ps.wm()
            .iter()
            .any(|w| w.class == sorete_base::Symbol::new(class))
    };
    if !have(ps, "c") {
        ps.assert_wme(
            sorete_base::Symbol::new("c"),
            vec![(sorete_base::Symbol::new("n"), Value::Int(0))],
        )?;
    }
    if !have(ps, "lim") {
        ps.assert_wme(
            sorete_base::Symbol::new("lim"),
            vec![(sorete_base::Symbol::new("max"), Value::Int(6))],
        )?;
    }
    Ok(())
}

/// Canonical view of a conflict set, independent of matcher internals and
/// SOI version counters.
type CanonItem = (usize, bool, BTreeSet<Vec<u64>>, Vec<String>);

fn canon(ps: &ProductionSystem) -> BTreeSet<CanonItem> {
    ps.conflict_items()
        .into_iter()
        .map(|i| {
            (
                i.key.rule().index(),
                i.key.is_soi(),
                i.rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect(),
                i.aggregates.iter().map(|v| v.to_string()).collect(),
            )
        })
        .collect()
}

fn wm_dump(ps: &ProductionSystem) -> Vec<String> {
    ps.wm().dump().iter().map(|w| w.to_string()).collect()
}

fn start_engine(wal: &Path) -> (ProductionSystem, sorete::core::WalReplayReport) {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(ENGINE_PROG).unwrap();
    let report = ps.attach_wal(wal, WalOptions::default()).unwrap();
    (ps, report)
}

#[test]
fn engine_crash_recovery_differential_at_every_record() {
    // Clean reference run.
    let wal = tmp("engine-clean.wal");
    fresh(&wal);
    let (clean_stats, clean_wm, clean_canon, total_records);
    {
        let (mut ps, _) = start_engine(&wal);
        seed_engine(&mut ps).unwrap();
        let outcome = ps.run(Some(100));
        assert_eq!(outcome.reason, StopReason::Halt);
        assert_eq!(outcome.fired, 7, "6 count cycles + finale");
        clean_stats = ps.stats().clone();
        clean_wm = wm_dump(&ps);
        clean_canon = canon(&ps);
        total_records = ps.wal_stats().unwrap().records;
    }
    fresh(&wal);
    assert!(total_records >= 20, "run writes {} records", total_records);

    let kinds = [
        IoFaultKind::Fail,
        IoFaultKind::ShortWrite,
        IoFaultKind::TornWrite,
        IoFaultKind::FsyncError,
    ];
    for kind in kinds {
        for at in 0..total_records {
            let w = tmp(&format!("engine-{:?}-{}.wal", kind, at));
            fresh(&w);
            // Crash run: the WAL failure surfaces as a run error (the firing
            // in flight rolled back — in-memory state never runs ahead of
            // the durable state).
            {
                let (mut ps, _) = start_engine(&w);
                assert!(ps.inject_wal_fault(IoFaultPlan::nth(kind, at)));
                if seed_engine(&mut ps).is_ok() {
                    let outcome = ps.run(Some(100));
                    assert!(
                        !matches!(outcome.reason, StopReason::Limit),
                        "{:?}@{}: run must end (halt or WAL error), got limit",
                        kind,
                        at
                    );
                }
            }
            // Restart: recover the committed prefix, re-seed whatever
            // fact commits the crash swallowed, then run to completion.
            let (mut ps, _report) = start_engine(&w);
            seed_engine(&mut ps).unwrap();
            let outcome = ps.run(Some(100));
            assert_eq!(
                outcome.reason,
                StopReason::Halt,
                "{:?}@{}: recovered run must reach the same halt",
                kind,
                at
            );
            assert_eq!(ps.stats(), &clean_stats, "{:?}@{}: stats diverge", kind, at);
            assert_eq!(wm_dump(&ps), clean_wm, "{:?}@{}: WM diverges", kind, at);
            assert_eq!(
                canon(&ps),
                clean_canon,
                "{:?}@{}: conflict set diverges",
                kind,
                at
            );
            fresh(&w);
        }
    }
}

#[test]
fn engine_wal_failure_rolls_back_the_firing_in_flight() {
    let w = tmp("engine-rollback.wal");
    fresh(&w);
    let (mut ps, _) = start_engine(&w);
    seed_engine(&mut ps).unwrap();
    let before_wm = wm_dump(&ps);
    // Poison the very next append: the first firing's commit must fail...
    assert!(ps.inject_wal_fault(IoFaultPlan::nth(IoFaultKind::ShortWrite, 4)));
    let outcome = ps.run(Some(100));
    assert!(
        matches!(outcome.reason, StopReason::Error(_)),
        "{:?}",
        outcome.reason
    );
    // ...and leave working memory exactly as it was before the firing
    // (the attempt still counts as a firing; `rolled_back` records the undo).
    assert_eq!(wm_dump(&ps), before_wm, "failed firing must be undone");
    assert_eq!(ps.stats().rolled_back, 1);
    fresh(&w);
}

// ---------------------------------------------------------------------------
// 3. checkpoint/resume across matchers

const MATCHERS: [MatcherKind; 4] = [
    MatcherKind::Rete,
    MatcherKind::ReteScan,
    MatcherKind::Treat,
    MatcherKind::Naive,
];

/// A program where fired instantiations stay in the conflict set (their
/// premises survive), so resumed refraction is observable: re-firing
/// would double the `write` count.
const REFRACT_PROG: &str = "
    (literalize a x)
    (literalize b x)
    (p note (a ^x <v>) (write noted <v>))
    (p pair (a ^x <v>) (b ^x <v>) (write paired <v>))
    (p tally { [a ^x <v>] <P> } :test ((count <P>) > 1) (write many (count <P>)))
";

fn seed_refract(ps: &mut ProductionSystem) {
    for (class, x) in [("a", 1), ("a", 2), ("b", 1), ("b", 2)] {
        ps.assert_wme(
            sorete_base::Symbol::new(class),
            vec![(sorete_base::Symbol::new("x"), Value::Int(x))],
        )
        .unwrap();
    }
}

#[test]
fn checkpoint_resumes_identically_on_every_matcher() {
    // Reference: run 3 cycles on Rete, checkpoint, then run to quiescence.
    let mut reference = ProductionSystem::new(MatcherKind::Rete);
    reference.load_program(REFRACT_PROG).unwrap();
    seed_refract(&mut reference);
    let outcome = reference.run(Some(3));
    assert_eq!(outcome.reason, StopReason::Limit);
    let _mid_writes = reference.take_output(); // drain the first 3 cycles
    let ckpt = reference.checkpoint_string();
    let mid_canon = canon(&reference);
    let final_outcome = reference.run(None);
    assert_eq!(final_outcome.reason, StopReason::Quiescence);
    let clean_tail = reference.take_output();
    let total_firings = 3 + final_outcome.fired;

    for kind in MATCHERS {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(REFRACT_PROG).unwrap();
        let report = ps.resume_from_str(&ckpt).unwrap();
        assert_eq!(report.wmes, 4);
        assert_eq!(report.cycle, 3);
        // `parallel-rete` when SORETE_JOBS shards the reference engine.
        assert!(
            report.matcher_was == "rete" || report.matcher_was == "parallel-rete",
            "{}",
            report.matcher_was
        );
        assert_eq!(
            canon(&ps),
            mid_canon,
            "{:?}: resumed conflict set diverges from the checkpoint",
            kind
        );
        // Refraction carried over: the resumed run fires exactly the
        // remaining instantiations, never the already-fired ones.
        let rest = ps.run(None);
        assert_eq!(rest.reason, StopReason::Quiescence, "{:?}", kind);
        assert_eq!(
            3 + rest.fired,
            total_firings,
            "{:?}: resumed run re-fired or skipped instantiations",
            kind
        );
        assert_eq!(
            ps.take_output(),
            clean_tail,
            "{:?}: resumed output diverges",
            kind
        );
        assert_eq!(ps.stats().firings, total_firings, "{:?}", kind);
    }
}

#[test]
fn checkpoint_resume_preserves_snode_state_and_versions() {
    // S-node heavy program: the set rule's SOI must survive the round trip
    // with its aggregate intact, and refraction must pin to the *rebuilt*
    // version (bulk replay renumbers SOI versions).
    let prog = "
        (literalize item s)
        (p sweep { [item ^s pending] <P> } (set-modify <P> ^s done))
        (p audit { [item ^s done] <Q> } :test ((count <Q>) >= 2) (write audited (count <Q>)))
    ";
    let mut live = ProductionSystem::new(MatcherKind::Rete);
    live.load_program(prog).unwrap();
    for _ in 0..3 {
        live.assert_wme(
            sorete_base::Symbol::new("item"),
            vec![(sorete_base::Symbol::new("s"), Value::sym("pending"))],
        )
        .unwrap();
    }
    let outcome = live.run(Some(1));
    assert_eq!(outcome.fired, 1, "sweep fired");
    let ckpt = live.checkpoint_string();
    let live_rest = live.run(None);
    assert_eq!(live_rest.reason, StopReason::Quiescence);
    let live_out = live.take_output();
    assert_eq!(live_out, vec!["audited 3"]);

    for kind in MATCHERS {
        let mut ps = ProductionSystem::new(kind);
        ps.load_program(prog).unwrap();
        ps.resume_from_str(&ckpt).unwrap();
        let rest = ps.run(None);
        assert_eq!(rest.reason, StopReason::Quiescence, "{:?}", kind);
        assert_eq!(rest.fired, live_rest.fired, "{:?}", kind);
        assert_eq!(ps.take_output(), live_out, "{:?}", kind);
    }
}

#[test]
fn checkpoint_render_is_stable_and_resume_guards_hold() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(REFRACT_PROG).unwrap();
    seed_refract(&mut ps);
    ps.run(Some(2));
    let ck = ps.checkpoint_string();
    // Canonical render: parse → re-render is byte-identical.
    let reparsed = sorete::core::Checkpoint::parse(&ck).unwrap();
    assert_eq!(reparsed.render(), ck);
    // Resume requires a fresh engine.
    let err = ps.resume_from_str(&ck).unwrap_err();
    assert!(
        err.to_string().contains("durability"),
        "resume into a live engine must fail: {}",
        err
    );
}

// ---------------------------------------------------------------------------
// WAL + checkpoint combined: rotate-on-checkpoint keeps the pair coherent.

#[test]
fn checkpoint_rotates_wal_and_the_pair_recovers() {
    let (wal, ck) = (tmp("pair.wal"), tmp("pair.ckpt"));
    fresh(&wal);
    fresh(&ck);
    let (clean_stats, clean_wm);
    {
        let (mut ps, _) = start_engine(&wal);
        seed_engine(&mut ps).unwrap();
        ps.run(Some(3));
        let records_before = ps.wal_stats().unwrap().records;
        assert!(records_before > 0);
        ps.checkpoint_to(&ck).unwrap();
        // Post-rotation the log restarts; later cycles land in the new log.
        ps.run(Some(100));
        clean_stats = ps.stats().clone();
        clean_wm = wm_dump(&ps);
    }
    // Recover: checkpoint base + WAL tail.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(ENGINE_PROG).unwrap();
    ps.resume_from_file(&ck).unwrap();
    let report = ps.attach_wal(&wal, WalOptions::default()).unwrap();
    assert!(report.replayed_cycles > 0, "post-checkpoint cycles replay");
    assert_eq!(ps.stats(), &clean_stats);
    assert_eq!(wm_dump(&ps), clean_wm);
    fresh(&wal);
    fresh(&ck);
}

#[test]
fn stale_wal_from_a_crash_before_rotation_is_discarded() {
    // The checkpoint crash window: the checkpoint file renames into place
    // but the process dies before the WAL rotation reaches disk. The log
    // still carries the *previous* generation's records — already baked
    // into the checkpoint — and replaying them on top would double-apply.
    let (wal, ck) = (tmp("stale.wal"), tmp("stale.ckpt"));
    fresh(&wal);
    fresh(&ck);
    let pre_rotation;
    {
        let (mut ps, _) = start_engine(&wal);
        seed_engine(&mut ps).unwrap();
        ps.run(Some(3));
        assert!(ps.wal_stats().unwrap().records > 0);
        pre_rotation = std::fs::read(&wal).unwrap();
        ps.checkpoint_to(&ck).unwrap();
    }
    // Oracle: a clean resume from the checkpoint, run to the halt.
    let (clean_stats, clean_wm, clean_canon);
    {
        let mut oracle = ProductionSystem::new(MatcherKind::Rete);
        oracle.load_program(ENGINE_PROG).unwrap();
        oracle.resume_from_file(&ck).unwrap();
        let out = oracle.run(Some(100));
        assert_eq!(out.reason, StopReason::Halt);
        clean_stats = oracle.stats().clone();
        clean_wm = wm_dump(&oracle);
        clean_canon = canon(&oracle);
    }
    // Wind the WAL back to its pre-rotation bytes: the crash left the old
    // generation on disk, one behind the checkpoint.
    std::fs::write(&wal, &pre_rotation).unwrap();
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(ENGINE_PROG).unwrap();
    ps.resume_from_file(&ck).unwrap();
    let report = ps.attach_wal(&wal, WalOptions::default()).unwrap();
    assert!(
        report.stale_records > 0,
        "the previous generation's records are stale, not replayable"
    );
    assert_eq!(report.replayed_ops, 0);
    assert_eq!(report.replayed_cycles, 0);
    let out = ps.run(Some(100));
    assert_eq!(out.reason, StopReason::Halt);
    assert_eq!(ps.stats(), &clean_stats, "stale replay double-applied");
    assert_eq!(wm_dump(&ps), clean_wm);
    assert_eq!(canon(&ps), clean_canon);
    fresh(&wal);
    fresh(&ck);
}

#[test]
fn rotated_wal_refuses_to_attach_without_its_checkpoint() {
    // A log rotated by a checkpoint only makes sense on top of that
    // checkpoint's state. Attaching it to a fresh engine (generation 0)
    // must be refused, not silently replayed against the wrong base.
    let (wal, ck) = (tmp("refuse.wal"), tmp("refuse.ckpt"));
    fresh(&wal);
    fresh(&ck);
    {
        let (mut ps, _) = start_engine(&wal);
        seed_engine(&mut ps).unwrap();
        ps.run(Some(2));
        ps.checkpoint_to(&ck).unwrap();
        ps.run(Some(2));
    }
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(ENGINE_PROG).unwrap();
    let err = ps.attach_wal(&wal, WalOptions::default()).unwrap_err();
    assert!(
        err.to_string().contains("does not pair"),
        "mismatched generations must refuse: {}",
        err
    );
    fresh(&wal);
    fresh(&ck);
}

#[test]
fn api_op_rolls_back_when_the_log_refuses_it() {
    // An API-level assert that the WAL refuses must leave no trace: no
    // WME, no matcher state, and the tag counter rewound so the retry
    // lands on the very same tag a never-faulted run would use.
    let (w, w2) = (tmp("api-rb.wal"), tmp("api-rb-clean.wal"));
    fresh(&w);
    fresh(&w2);
    let (mut ps, _) = start_engine(&w);
    assert!(ps.inject_wal_fault(IoFaultPlan::nth(IoFaultKind::Fail, 0)));
    let err = ps
        .assert_wme(
            sorete_base::Symbol::new("c"),
            vec![(sorete_base::Symbol::new("n"), Value::Int(0))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("injected"), "{}", err);
    assert_eq!(
        ps.wm().iter().count(),
        0,
        "refused assert must not leave a WME behind"
    );
    // The retry and the rest of the run match a never-faulted engine
    // exactly — tags included (wm_dump renders them).
    seed_engine(&mut ps).unwrap();
    let out = ps.run(Some(100));
    assert_eq!(out.reason, StopReason::Halt);
    let (mut oracle, _) = start_engine(&w2);
    seed_engine(&mut oracle).unwrap();
    let oracle_out = oracle.run(Some(100));
    assert_eq!(oracle_out.reason, StopReason::Halt);
    assert_eq!(ps.stats().firings, oracle.stats().firings);
    assert_eq!(wm_dump(&ps), wm_dump(&oracle));
    assert_eq!(canon(&ps), canon(&oracle));
    fresh(&w);
    fresh(&w2);
}
