//! Property tests: Rete (with S-nodes) and TREAT (with S-nodes) must agree
//! with the independent naive oracle on every conflict set reachable by
//! random insert/remove streams — for regular rules, negated CEs, and
//! set-oriented rules with aggregates.

use proptest::prelude::*;
use sorete::lang::{analyze_rule, parse_rule, Matcher};
use sorete::naive::NaiveMatcher;
use sorete::rete::ReteMatcher;
use sorete::treat::TreatMatcher;
use sorete_base::{ConflictItem, CsDelta, FxHashMap, InstKey, Symbol, TimeTag, Value, Wme};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A rule set exercising a particular feature mix.
const RULESET_REGULAR: &[&str] = &[
    "(p r1 (a ^x <v> ^y <w>) (b ^x <v>) (halt))",
    "(p r2 (a ^x <v>) (a ^y <w>) (b ^x <v> ^y > <w>) (halt))",
    "(p r3 (b ^y <w> ^x <> 2) (halt))",
];

const RULESET_NEGATED: &[&str] = &[
    "(p n1 (a ^x <v>) -(b ^x <v>) (halt))",
    "(p n2 (b ^x <v>) -(a ^x <v> ^y <v>) (halt))",
    "(p n3 -(a ^x 1) (b ^y <w>) (halt))",
];

const RULESET_SET: &[&str] = &[
    "(p s1 [a ^x <v>] (halt))",
    "(p s2 { [a ^x <v> ^y <w>] <P> } :scalar (<v>) :test ((count <P>) > 1) (set-remove <P>))",
    "(p s3 (b ^x <v>) [a ^x <v> ^y <w>]
        :test ((sum <w>) > 3 and (min <w>) >= 0) (halt))",
    "(p s4 { [b ^y <w>] <Q> } :test ((count <Q>) >= 2 and (avg <w>) > 1) (halt))",
];

/// One random working-memory operation.
#[derive(Clone, Debug)]
enum Op {
    /// Insert a WME of class `a` or `b` with small-domain x/y values.
    Insert { class: u8, x: i64, y: i64 },
    /// Remove the (i mod live)-th oldest live WME.
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2, 0i64..4, 0i64..4).prop_map(|(class, x, y)| Op::Insert { class, x, y }),
        1 => (0usize..16).prop_map(Op::Remove),
    ]
}

/// Canonical snapshot of a conflict set: rule → set of (row-set, aggregates).
type Canon = BTreeSet<(usize, BTreeSet<Vec<u64>>, Vec<String>)>;

struct Tracker {
    m: Box<dyn Matcher>,
    cs: FxHashMap<InstKey, ConflictItem>,
}

impl Tracker {
    fn new(mut m: Box<dyn Matcher>, rules: &[&str]) -> Tracker {
        for src in rules {
            let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
            m.add_rule(r);
        }
        let _ = m.drain_deltas();
        Tracker {
            m,
            cs: FxHashMap::default(),
        }
    }

    fn apply(&mut self) {
        for d in self.m.drain_deltas() {
            match d {
                CsDelta::Insert(item) => {
                    let prev = self.cs.insert(item.key.clone(), item);
                    assert!(
                        prev.is_none(),
                        "[{}] duplicate insert",
                        self.m.algorithm_name()
                    );
                }
                CsDelta::Remove(key) => {
                    let prev = self.cs.remove(&key);
                    assert!(
                        prev.is_some(),
                        "[{}] removing unknown entry",
                        self.m.algorithm_name()
                    );
                }
                CsDelta::Retime(info) => {
                    // A Retime may be followed by a Remove in the same
                    // batch (the SOI died mid-operation); materialize then
                    // sees nothing and the pending Remove cleans up.
                    if let Some(fresh) = self.m.materialize(&info.key) {
                        assert!(
                            fresh.version >= info.version,
                            "[{}]",
                            self.m.algorithm_name()
                        );
                        let prev = self.cs.insert(info.key.clone(), fresh);
                        assert!(
                            prev.is_some(),
                            "[{}] retime of absent entry",
                            self.m.algorithm_name()
                        );
                    }
                }
            }
        }
    }

    fn canon(&self) -> Canon {
        self.cs
            .values()
            .map(|item| {
                let rows: BTreeSet<Vec<u64>> = item
                    .rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect();
                let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
                (item.key.rule().index(), rows, aggs)
            })
            .collect()
    }
}

fn run_equivalence(rules: &[&str], ops: &[Op]) {
    let mut rete = Tracker::new(Box::new(ReteMatcher::new()), rules);
    let mut treat = Tracker::new(Box::new(TreatMatcher::new()), rules);
    let mut naive = Tracker::new(Box::new(NaiveMatcher::new()), rules);

    let mut live: Vec<Wme> = Vec::new();
    let mut next_tag = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Insert { class, x, y } => {
                next_tag += 1;
                let wme = Wme::new(
                    TimeTag::new(next_tag),
                    Symbol::new(if *class == 0 { "a" } else { "b" }),
                    vec![
                        (Symbol::new("x"), Value::Int(*x)),
                        (Symbol::new("y"), Value::Int(*y)),
                    ],
                );
                live.push(wme.clone());
                rete.m.insert_wme(&wme);
                treat.m.insert_wme(&wme);
                naive.m.insert_wme(&wme);
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let wme = live.remove(i % live.len());
                rete.m.remove_wme(&wme);
                treat.m.remove_wme(&wme);
                naive.m.remove_wme(&wme);
            }
        }
        rete.apply();
        treat.apply();
        naive.apply();
        let expected = naive.canon();
        prop_assert_eq_step(step, op, "rete", &rete.canon(), &expected);
        prop_assert_eq_step(step, op, "treat", &treat.canon(), &expected);
    }
}

fn prop_assert_eq_step(step: usize, op: &Op, who: &str, got: &Canon, expected: &Canon) {
    assert_eq!(
        got, expected,
        "\n{} diverged from the oracle after step {} ({:?})",
        who, step, op
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regular_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_equivalence(RULESET_REGULAR, &ops);
    }

    #[test]
    fn negated_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_equivalence(RULESET_NEGATED, &ops);
    }

    #[test]
    fn set_oriented_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_equivalence(RULESET_SET, &ops);
    }

    #[test]
    fn mixed_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        let mixed: Vec<&str> = RULESET_REGULAR
            .iter()
            .chain(RULESET_NEGATED)
            .chain(RULESET_SET)
            .copied()
            .collect();
        run_equivalence(&mixed, &ops);
    }
}

/// Deterministic regression inputs (kept out of proptest for clarity).
#[test]
fn same_class_double_ce_regression() {
    // One WME satisfying two CEs of the same rule simultaneously.
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 1,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 0,
            x: 1,
            y: 2,
        },
        Op::Remove(0),
        Op::Remove(0),
    ];
    run_equivalence(RULESET_REGULAR, &ops);
    run_equivalence(RULESET_SET, &ops);
}

#[test]
fn negation_unblock_regression() {
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        }, // a
        Op::Insert {
            class: 1,
            x: 1,
            y: 0,
        }, // b blocks n1
        Op::Remove(1), // unblock
        Op::Insert {
            class: 1,
            x: 1,
            y: 3,
        },
        Op::Remove(0),
    ];
    run_equivalence(RULESET_NEGATED, &ops);
}
