//! Property tests: Rete (with S-nodes) and TREAT (with S-nodes) must agree
//! with the independent naive oracle on every conflict set reachable by
//! random insert/remove streams — for regular rules, negated CEs, and
//! set-oriented rules with aggregates.
//!
//! The hash-indexed Rete is held to a stronger standard than conflict-set
//! equality: its `CsDelta` stream must be byte-identical (same deltas, same
//! order) to the scan Rete's at every step, and its indexes must survive a
//! rebuild-from-scratch comparison (`Matcher::validate`) at every step.

use proptest::prelude::*;
use sorete::core::{MatcherKind, ProductionSystem};
use sorete::lang::{analyze_rule, parse_rule, Matcher};
use sorete::naive::NaiveMatcher;
use sorete::rete::ReteMatcher;
use sorete::treat::TreatMatcher;
use sorete_base::{
    ConflictItem, CsDelta, FxHashMap, InstKey, Symbol, TimeTag, TraceEvent, Value, Wme,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A rule set exercising a particular feature mix.
const RULESET_REGULAR: &[&str] = &[
    "(p r1 (a ^x <v> ^y <w>) (b ^x <v>) (halt))",
    "(p r2 (a ^x <v>) (a ^y <w>) (b ^x <v> ^y > <w>) (halt))",
    "(p r3 (b ^y <w> ^x <> 2) (halt))",
];

const RULESET_NEGATED: &[&str] = &[
    "(p n1 (a ^x <v>) -(b ^x <v>) (halt))",
    "(p n2 (b ^x <v>) -(a ^x <v> ^y <v>) (halt))",
    "(p n3 -(a ^x 1) (b ^y <w>) (halt))",
];

const RULESET_SET: &[&str] = &[
    "(p s1 [a ^x <v>] (halt))",
    "(p s2 { [a ^x <v> ^y <w>] <P> } :scalar (<v>) :test ((count <P>) > 1) (set-remove <P>))",
    "(p s3 (b ^x <v>) [a ^x <v> ^y <w>]
        :test ((sum <w>) > 3 and (min <w>) >= 0) (halt))",
    "(p s4 { [b ^y <w>] <Q> } :test ((count <Q>) >= 2 and (avg <w>) > 1) (halt))",
];

/// One random working-memory operation.
#[derive(Clone, Debug)]
enum Op {
    /// Insert a WME of class `a` or `b` with small-domain x/y values.
    Insert { class: u8, x: i64, y: i64 },
    /// Remove the (i mod live)-th oldest live WME.
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2, 0i64..4, 0i64..4).prop_map(|(class, x, y)| Op::Insert { class, x, y }),
        1 => (0usize..16).prop_map(Op::Remove),
    ]
}

/// Canonical snapshot of a conflict set: rule → set of (row-set, aggregates).
type Canon = BTreeSet<(usize, BTreeSet<Vec<u64>>, Vec<String>)>;

struct Tracker {
    m: Box<dyn Matcher>,
    cs: FxHashMap<InstKey, ConflictItem>,
}

impl Tracker {
    fn new(mut m: Box<dyn Matcher>, rules: &[&str]) -> Tracker {
        for src in rules {
            let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
            m.add_rule(r);
        }
        let _ = m.drain_deltas();
        Tracker {
            m,
            cs: FxHashMap::default(),
        }
    }

    fn apply(&mut self) {
        let deltas = self.m.drain_deltas();
        self.apply_deltas(deltas);
    }

    fn apply_deltas(&mut self, deltas: Vec<CsDelta>) {
        for d in deltas {
            match d {
                CsDelta::Insert(item) => {
                    let prev = self.cs.insert(item.key.clone(), item);
                    assert!(
                        prev.is_none(),
                        "[{}] duplicate insert",
                        self.m.algorithm_name()
                    );
                }
                CsDelta::Remove(key) => {
                    let prev = self.cs.remove(&key);
                    assert!(
                        prev.is_some(),
                        "[{}] removing unknown entry",
                        self.m.algorithm_name()
                    );
                }
                CsDelta::Retime(info) => {
                    // A Retime may be followed by a Remove in the same
                    // batch (the SOI died mid-operation); materialize then
                    // sees nothing and the pending Remove cleans up.
                    if let Some(fresh) = self.m.materialize(&info.key) {
                        assert!(
                            fresh.version >= info.version,
                            "[{}]",
                            self.m.algorithm_name()
                        );
                        let prev = self.cs.insert(info.key.clone(), fresh);
                        assert!(
                            prev.is_some(),
                            "[{}] retime of absent entry",
                            self.m.algorithm_name()
                        );
                    }
                }
            }
        }
    }

    fn canon(&self) -> Canon {
        self.cs
            .values()
            .map(|item| {
                let rows: BTreeSet<Vec<u64>> = item
                    .rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect();
                let aggs: Vec<String> = item.aggregates.iter().map(|v| v.to_string()).collect();
                (item.key.rule().index(), rows, aggs)
            })
            .collect()
    }
}

fn run_equivalence(rules: &[&str], ops: &[Op]) {
    let mut rete = Tracker::new(Box::new(ReteMatcher::new()), rules);
    let mut scan = Tracker::new(Box::new(ReteMatcher::with_indexing(false)), rules);
    let mut treat = Tracker::new(Box::new(TreatMatcher::new()), rules);
    let mut naive = Tracker::new(Box::new(NaiveMatcher::new()), rules);

    let mut live: Vec<Wme> = Vec::new();
    let mut next_tag = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Insert { class, x, y } => {
                next_tag += 1;
                let wme = Wme::new(
                    TimeTag::new(next_tag),
                    Symbol::new(if *class == 0 { "a" } else { "b" }),
                    vec![
                        (Symbol::new("x"), Value::Int(*x)),
                        (Symbol::new("y"), Value::Int(*y)),
                    ],
                );
                live.push(wme.clone());
                rete.m.insert_wme(&wme);
                scan.m.insert_wme(&wme);
                treat.m.insert_wme(&wme);
                naive.m.insert_wme(&wme);
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let wme = live.remove(i % live.len());
                rete.m.remove_wme(&wme);
                scan.m.remove_wme(&wme);
                treat.m.remove_wme(&wme);
                naive.m.remove_wme(&wme);
            }
        }
        // Indexed vs scan Rete: byte-identical delta streams, and indexes
        // that survive a rebuild-from-scratch comparison, at every step.
        let rete_deltas = rete.m.drain_deltas();
        let scan_deltas = scan.m.drain_deltas();
        assert_eq!(
            format!("{:?}", rete_deltas),
            format!("{:?}", scan_deltas),
            "\nindexed rete diverged from scan rete after step {} ({:?})",
            step,
            op
        );
        rete.m.validate().unwrap_or_else(|e| {
            panic!(
                "index validation failed after step {} ({:?}): {}",
                step, op, e
            )
        });
        rete.apply_deltas(rete_deltas);
        scan.apply_deltas(scan_deltas);
        treat.apply();
        naive.apply();
        let expected = naive.canon();
        prop_assert_eq_step(step, op, "rete", &rete.canon(), &expected);
        prop_assert_eq_step(step, op, "rete-scan", &scan.canon(), &expected);
        prop_assert_eq_step(step, op, "treat", &treat.canon(), &expected);
    }
}

fn prop_assert_eq_step(step: usize, op: &Op, who: &str, got: &Canon, expected: &Canon) {
    assert_eq!(
        got, expected,
        "\n{} diverged from the oracle after step {} ({:?})",
        who, step, op
    );
}

// ---------------------------------------------------------------------------
// Logical event-stream equivalence (engine level).
//
// Every backend must tell the same story through the trace stream: the
// logical events (WM changes, conflict-set deltas, firings — timing and
// per-node physical events excluded) must agree. The indexed and scan Rete
// are held to *byte-identical* JSON streams; TREAT and naive are compared
// after canonicalization that absorbs legitimate emission-order freedom
// within one sync batch (delta order inside a batch, duplicate `time`
// tokens, SOI row order, version counters vs content hashes).
//
// The programs use a single rule each so conflict resolution never
// tie-breaks on delta *arrival* order, which is the one engine-level
// ordering legitimately different between backends.
// ---------------------------------------------------------------------------

const EVENT_PROG_TUPLE: &str = "(literalize a x y)(literalize b x y)
    (p pair (a ^x <v>) (b ^x <v> ^y <w>) (write pair <v>) (remove 2))";

const EVENT_PROG_NEGATED: &str = "(literalize a x y)(literalize b x y)
    (p guard (a ^x <v>) -(b ^x <v>) (write ok <v>) (remove 1))";

const EVENT_PROG_SET: &str = "(literalize a x y)(literalize b x y)
    (p dedupe { [a ^x <v> ^y <w>] <P> } :scalar (<v>)
       :test ((count <P>) > 1) (set-remove <P>))";

/// Drive one engine through `ops` (running to a small firing limit after
/// each), returning the logical half of its event stream.
fn logical_stream(kind: MatcherKind, program: &str, ops: &[Op]) -> Vec<TraceEvent> {
    let mut ps = ProductionSystem::new(kind);
    ps.set_event_log(true);
    ps.load_program(program).unwrap();
    let mut live: Vec<TimeTag> = Vec::new();
    for op in ops {
        match op {
            Op::Insert { class, x, y } => {
                let tag = ps
                    .make_str(
                        if *class == 0 { "a" } else { "b" },
                        &[("x", Value::Int(*x)), ("y", Value::Int(*y))],
                    )
                    .unwrap();
                live.push(tag);
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let tag = live.remove(i % live.len());
                // Firings may have retracted it already.
                if ps.wm().get(tag).is_some() {
                    ps.retract_wme(tag).unwrap();
                }
            }
        }
        let _ = ps.run(Some(4));
    }
    ps.trace_events()
        .into_iter()
        .filter(|e| e.is_logical())
        .collect()
}

/// Canonical form of a logical stream: conflict-set deltas within one sync
/// batch are sorted and deduplicated (`time` tokens reduced to rule+key,
/// SOI rows order-blinded); everything else keeps its order and content.
fn canonical_stream(stream: &[TraceEvent]) -> Vec<String> {
    let mut out = Vec::new();
    let mut batch: Vec<String> = Vec::new();
    fn flush(batch: &mut Vec<String>, out: &mut Vec<String>) {
        batch.sort();
        batch.dedup();
        out.append(batch);
    }
    for ev in stream {
        match ev {
            TraceEvent::CsInsert {
                rule,
                key,
                soi,
                rows,
                aggregates,
            } => {
                let mut rs = rows.clone();
                rs.sort();
                batch.push(format!(
                    "+ {} [{}] soi={} {:?} {:?}",
                    rule, key, soi, rs, aggregates
                ));
            }
            TraceEvent::CsRemove { rule, key, soi } => {
                batch.push(format!("- {} [{}] soi={}", rule, key, soi));
            }
            TraceEvent::CsRetime { rule, key, .. } => {
                batch.push(format!("~ {} [{}]", rule, key));
            }
            other => {
                flush(&mut batch, &mut out);
                out.push(match other {
                    TraceEvent::Fire { cycle, rule, rows } => {
                        let mut rs = rows.clone();
                        rs.sort();
                        format!("fire {} {} {:?}", cycle, rule, rs)
                    }
                    ev => ev.to_json(),
                });
            }
        }
    }
    flush(&mut batch, &mut out);
    out
}

fn run_event_equivalence(program: &str, ops: &[Op]) {
    let rete = logical_stream(MatcherKind::Rete, program, ops);
    let scan = logical_stream(MatcherKind::ReteScan, program, ops);
    let treat = logical_stream(MatcherKind::Treat, program, ops);
    let naive = logical_stream(MatcherKind::Naive, program, ops);

    // Indexing is a pure physical optimisation: the logical streams must
    // be byte-identical, not merely equivalent.
    let rete_json: Vec<String> = rete.iter().map(|e| e.to_json()).collect();
    let scan_json: Vec<String> = scan.iter().map(|e| e.to_json()).collect();
    assert_eq!(
        rete_json, scan_json,
        "indexed rete's logical stream diverged from scan rete's"
    );

    let expected = canonical_stream(&rete);
    assert_eq!(
        canonical_stream(&treat),
        expected,
        "treat's logical stream diverged from rete's"
    );
    assert_eq!(
        canonical_stream(&naive),
        expected,
        "naive's logical stream diverged from rete's"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regular_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_equivalence(RULESET_REGULAR, &ops);
    }

    #[test]
    fn negated_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_equivalence(RULESET_NEGATED, &ops);
    }

    #[test]
    fn set_oriented_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_equivalence(RULESET_SET, &ops);
    }

    #[test]
    fn mixed_rules_agree(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        let mixed: Vec<&str> = RULESET_REGULAR
            .iter()
            .chain(RULESET_NEGATED)
            .chain(RULESET_SET)
            .copied()
            .collect();
        run_equivalence(&mixed, &ops);
    }

    #[test]
    fn tuple_event_streams_agree(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        run_event_equivalence(EVENT_PROG_TUPLE, &ops);
    }

    #[test]
    fn negated_event_streams_agree(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        run_event_equivalence(EVENT_PROG_NEGATED, &ops);
    }

    #[test]
    fn set_oriented_event_streams_agree(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        run_event_equivalence(EVENT_PROG_SET, &ops);
    }
}

/// Drive a fixed SOI-heavy workload through a matcher.
fn drive_soi_workload(m: &mut dyn Matcher) {
    for src in RULESET_SET {
        m.add_rule(Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap()));
    }
    let mut live: Vec<Wme> = Vec::new();
    for i in 0..24u64 {
        if i % 5 == 4 && !live.is_empty() {
            let wme = live.remove(i as usize % live.len());
            m.remove_wme(&wme);
        } else {
            let wme = Wme::new(
                TimeTag::new(i + 1),
                Symbol::new(if i % 2 == 0 { "a" } else { "b" }),
                vec![
                    (Symbol::new("x"), Value::Int((i % 3) as i64)),
                    (Symbol::new("y"), Value::Int((i % 4) as i64)),
                ],
            );
            live.push(wme.clone());
            m.insert_wme(&wme);
        }
        let _ = m.drain_deltas();
    }
}

/// Satellite: `SoiStats` is the single source of the snode-related
/// `MatchStats` fields — the merged view a matcher reports must always
/// equal the sum of its per-S-node counters.
#[test]
fn soi_stats_never_diverge_from_match_stats() {
    let mut rete = ReteMatcher::new();
    drive_soi_workload(&mut rete);
    let (ms, ss) = (rete.stats(), rete.soi_stats());
    assert!(ss.activations > 0, "workload must exercise the S-nodes");
    assert_eq!(ms.snode_activations, ss.activations);
    assert_eq!(ms.aggregate_updates, ss.aggregate_updates);

    let mut treat = TreatMatcher::new();
    drive_soi_workload(&mut treat);
    let (ms, ss) = (treat.stats(), treat.soi_stats());
    assert!(ss.activations > 0, "workload must exercise the S-nodes");
    assert_eq!(ms.snode_activations, ss.activations);
    assert_eq!(ms.aggregate_updates, ss.aggregate_updates);
}

/// Deterministic regression inputs (kept out of proptest for clarity).
#[test]
fn same_class_double_ce_regression() {
    // One WME satisfying two CEs of the same rule simultaneously.
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 1,
            x: 1,
            y: 1,
        },
        Op::Insert {
            class: 0,
            x: 1,
            y: 2,
        },
        Op::Remove(0),
        Op::Remove(0),
    ];
    run_equivalence(RULESET_REGULAR, &ops);
    run_equivalence(RULESET_SET, &ops);
}

#[test]
fn negation_unblock_regression() {
    let ops = vec![
        Op::Insert {
            class: 0,
            x: 1,
            y: 1,
        }, // a
        Op::Insert {
            class: 1,
            x: 1,
            y: 0,
        }, // b blocks n1
        Op::Remove(1), // unblock
        Op::Insert {
            class: 1,
            x: 1,
            y: 3,
        },
        Op::Remove(0),
    ];
    run_equivalence(RULESET_NEGATED, &ops);
}

/// Excise + rollback-style re-insertion must leave the hash indexes exactly
/// consistent: after every mutation the indexed matcher must pass a
/// rebuild-from-scratch comparison (`validate`, i.e. re-probing after the
/// rollback sees exactly what a fresh build would), and its delta stream
/// must stay byte-identical to the scan matcher's.
#[test]
fn excise_and_rollback_keep_indexes_consistent() {
    let rules: Vec<&str> = RULESET_REGULAR
        .iter()
        .chain(RULESET_NEGATED)
        .copied()
        .collect();
    let mut idx = ReteMatcher::new();
    let mut scan = ReteMatcher::with_indexing(false);
    let mut ids = Vec::new();
    for src in &rules {
        let r = Arc::new(analyze_rule(&parse_rule(src).unwrap()).unwrap());
        ids.push(idx.add_rule(r.clone()));
        scan.add_rule(r);
    }
    let wme = |tag: u64, class: &str, x: i64, y: i64| {
        Wme::new(
            TimeTag::new(tag),
            Symbol::new(class),
            vec![
                (Symbol::new("x"), Value::Int(x)),
                (Symbol::new("y"), Value::Int(y)),
            ],
        )
    };
    fn check(idx: &mut ReteMatcher, scan: &mut ReteMatcher, what: &str) {
        assert_eq!(
            format!("{:?}", idx.drain_deltas()),
            format!("{:?}", scan.drain_deltas()),
            "delta streams diverged after {}",
            what
        );
        idx.validate()
            .unwrap_or_else(|e| panic!("index validation failed after {}: {}", what, e));
    }

    let w = [
        wme(1, "a", 1, 1),
        wme(2, "b", 1, 0),
        wme(3, "a", 1, 2),
        wme(4, "b", 2, 3),
    ];
    for wme in &w {
        idx.insert_wme(wme);
        scan.insert_wme(wme);
        check(&mut idx, &mut scan, "insert");
    }

    // Retraction, then excise, then rollback re-inserts the same TimeTag.
    idx.remove_wme(&w[1]);
    scan.remove_wme(&w[1]);
    check(&mut idx, &mut scan, "remove b^x=1");

    idx.remove_rule(ids[3]); // n1: (a ^x <v>) -(b ^x <v>)
    scan.remove_rule(ids[3]);
    check(&mut idx, &mut scan, "excise n1");

    idx.insert_wme(&w[1]);
    scan.insert_wme(&w[1]);
    check(&mut idx, &mut scan, "rollback re-insert of tag 2");

    idx.remove_wme(&w[3]);
    scan.remove_wme(&w[3]);
    check(&mut idx, &mut scan, "remove b^x=2");
    idx.insert_wme(&w[3]);
    scan.insert_wme(&w[3]);
    check(&mut idx, &mut scan, "rollback re-insert of tag 4");

    idx.remove_rule(ids[1]); // r2: three-CE join
    scan.remove_rule(ids[1]);
    check(&mut idx, &mut scan, "excise r2");
}
