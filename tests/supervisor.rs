//! Supervised-runtime integration tests: panic isolation, per-rule
//! circuit breakers, transient-I/O retry, budget-driven degradation, and
//! the process-level crash monkey.
//!
//! The in-process tests drive the same counter workload through injected
//! faults; the crash monkey (spawned via `CARGO_BIN_EXE_crash_monkey`)
//! adds real `SIGKILL`s: a child process dies mid-commit and the resumed
//! run must end byte-identical to an uninterrupted oracle.

use proptest::prelude::*;
use sorete::core::{
    BreakerPolicy, DegradationPolicy, FaultPlan, MatcherKind, ProductionSystem, RecoveryPolicy,
    RetryPolicy, StopReason, Supervisor, SupervisorConfig,
};
use sorete::reldb::{IoFaultKind, IoFaultPlan, WalOptions};
use sorete_base::Symbol;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sorete-supervisor-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}", name, std::process::id()))
}

/// Counter to 10: one modify per firing, quiescence at the end.
const COUNT_PROG: &str = "
    (literalize counter n)
    (p bump
      (counter ^n <x> < 10)
      -->
      (modify 1 ^n (compute <x> + 1)))
";

/// Counter plus a rule whose RHS always fails (division by zero) once the
/// counter reaches 5 — deterministic fodder for the circuit breaker.
const POISON_PROG: &str = "
    (literalize counter n)
    (p bump
      (counter ^n <x> < 5)
      -->
      (modify 1 ^n (compute <x> + 1)))
    (p poison
      (counter ^n {<x> 5})
      -->
      (modify 1 ^n (compute <x> / 0)))
";

fn counting_system(matcher: MatcherKind, prog: &str) -> ProductionSystem {
    let mut ps = ProductionSystem::new(matcher);
    ps.load_program(prog).unwrap();
    ps.assert_wme(
        Symbol::new("counter"),
        vec![(Symbol::new("n"), sorete_base::Value::Int(0))],
    )
    .unwrap();
    ps
}

fn counter_value(ps: &ProductionSystem) -> Option<sorete_base::Value> {
    ps.wm()
        .iter()
        .find(|w| w.class == Symbol::new("counter"))
        .map(|w| w.get(Symbol::new("n")))
}

// ---------------------------------------------------------------------------
// Panic isolation

#[test]
fn unsupervised_panic_surfaces_as_a_structured_stop_reason() {
    let mut ps = counting_system(MatcherKind::Rete, COUNT_PROG);
    ps.inject_fault(FaultPlan::nth(4).panicking());
    let outcome = ps.run(Some(100));
    match &outcome.reason {
        StopReason::Panicked { rule, message } => {
            assert_eq!(*rule, Symbol::new("bump"));
            assert!(message.contains("injected panic"), "{}", message);
        }
        other => panic!("expected Panicked, got {:?}", other),
    }
    // The fence caught the unwind: the engine is still usable.
    assert!(counter_value(&ps).is_some());
}

#[test]
fn supervised_panic_rolls_back_and_the_run_completes() {
    let mut ps = counting_system(MatcherKind::Rete, COUNT_PROG);
    ps.set_recovery_policy(RecoveryPolicy::Rollback);
    ps.enable_supervision(SupervisorConfig::default());
    ps.inject_fault(FaultPlan::nth(4).panicking());
    let outcome = ps.run(Some(100));
    assert_eq!(outcome.reason, StopReason::Quiescence, "panic was isolated");
    assert_eq!(counter_value(&ps), Some(sorete_base::Value::Int(10)));
    let sup = ps.supervisor_stats();
    assert_eq!(sup.panics_caught, 1);
    assert_eq!(sup.quarantines, 0, "a single panic is below the breaker");
    assert!(ps.quarantined_rules().is_empty());
}

// ---------------------------------------------------------------------------
// Circuit breakers / quarantine

#[test]
fn repeated_failures_quarantine_the_rule_on_every_matcher() {
    for matcher in [
        MatcherKind::Rete,
        MatcherKind::ReteScan,
        MatcherKind::Treat,
        MatcherKind::Naive,
    ] {
        let mut ps = counting_system(matcher, POISON_PROG);
        ps.set_recovery_policy(RecoveryPolicy::Rollback);
        ps.enable_supervision(SupervisorConfig {
            breaker: BreakerPolicy {
                max_failures: 2,
                window_cycles: 20,
            },
            ..SupervisorConfig::default()
        });
        let outcome = ps.run(Some(100));
        assert_eq!(
            outcome.reason,
            StopReason::Quarantined {
                rules: vec![Symbol::new("poison")]
            },
            "{:?}: the stalled run names its quarantined rules",
            matcher
        );
        assert_eq!(outcome.fired, 5, "{:?}: the 5 good firings stand", matcher);
        assert_eq!(ps.supervisor_stats().quarantines, 1, "{:?}", matcher);
        assert_eq!(
            ps.stats().rolled_back,
            2,
            "{:?}: both failures undone",
            matcher
        );
        // The failed firings rolled back completely: the counter still
        // holds the last good value.
        assert_eq!(counter_value(&ps), Some(sorete_base::Value::Int(5)));

        // Retraction-side regression: a quarantined rule's conflict-set
        // entries are excised from *selection*, not from the matcher, so
        // retracting the WME under them must cleanly drain the entries in
        // every matcher (no stale tokens, no phantom re-fire).
        let tag = ps
            .wm()
            .iter()
            .find(|w| w.class == Symbol::new("counter"))
            .map(|w| w.tag)
            .unwrap();
        ps.retract_wme(tag).unwrap();
        assert!(
            ps.conflict_items().is_empty(),
            "{:?}: retraction drained the quarantined entries",
            matcher
        );
        let after = ps.run(Some(10));
        assert_eq!(
            after.reason,
            StopReason::Quiescence,
            "{:?}: nothing quarantined remains fireable",
            matcher
        );
    }
}

#[test]
fn readmitted_rule_fails_again_and_requarantines() {
    let mut ps = counting_system(MatcherKind::Rete, POISON_PROG);
    ps.set_recovery_policy(RecoveryPolicy::Rollback);
    ps.enable_supervision(SupervisorConfig {
        breaker: BreakerPolicy {
            max_failures: 2,
            window_cycles: 20,
        },
        ..SupervisorConfig::default()
    });
    assert!(matches!(
        ps.run(Some(100)).reason,
        StopReason::Quarantined { .. }
    ));
    assert!(ps.readmit_rule("poison").unwrap());
    assert!(ps.quarantined_rules().is_empty());
    // Still broken: the breaker trips again on the fresh failures.
    assert!(matches!(
        ps.run(Some(100)).reason,
        StopReason::Quarantined { .. }
    ));
    let sup = ps.supervisor_stats();
    assert_eq!(sup.quarantines, 2);
    assert_eq!(sup.readmissions, 1);
}

// ---------------------------------------------------------------------------
// Transient durable-I/O retry

#[test]
fn transient_wal_faults_heal_under_retry() {
    let wal = tmp("transient-heal.wal");
    let _ = std::fs::remove_file(&wal);
    // Attach the WAL *before* seeding so the seed assert is logged too —
    // the fresh-replay check at the end needs the full lineage.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(COUNT_PROG).unwrap();
    ps.attach_wal(&wal, WalOptions::default()).unwrap();
    ps.assert_wme(
        Symbol::new("counter"),
        vec![(Symbol::new("n"), sorete_base::Value::Int(0))],
    )
    .unwrap();
    ps.enable_supervision(SupervisorConfig::default());
    // Two consecutive append failures starting at record 6: within the
    // default 4-attempt budget, so the run must heal without poisoning.
    assert!(ps.inject_wal_fault(IoFaultPlan::nth(IoFaultKind::Transient { fail_n: 2 }, 6)));
    let outcome = ps.run(Some(100));
    assert_eq!(outcome.reason, StopReason::Quiescence);
    assert_eq!(counter_value(&ps), Some(sorete_base::Value::Int(10)));
    let sup = ps.supervisor_stats();
    assert!(sup.io_retries >= 1, "retries recorded: {:?}", sup);
    let ws = ps.wal_stats().unwrap();
    assert!(ws.transient_errors >= 2, "{:?}", ws);

    // The healed log replays to the same final state — which also proves
    // the transient faults never poisoned it.
    let mut back = ProductionSystem::new(MatcherKind::Rete);
    back.load_program(COUNT_PROG).unwrap();
    back.attach_wal(&wal, WalOptions::default()).unwrap();
    assert_eq!(counter_value(&back), Some(sorete_base::Value::Int(10)));
}

#[test]
fn retry_exhaustion_surfaces_a_durability_error_without_quarantine() {
    let wal = tmp("transient-exhaust.wal");
    let _ = std::fs::remove_file(&wal);
    let mut ps = counting_system(MatcherKind::Rete, COUNT_PROG);
    ps.set_recovery_policy(RecoveryPolicy::Rollback);
    ps.attach_wal(&wal, WalOptions::default()).unwrap();
    ps.enable_supervision(SupervisorConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            base_micros: 10,
            cap_micros: 50,
            ..RetryPolicy::default()
        },
        ..SupervisorConfig::default()
    });
    // More failures than the whole retry budget can absorb.
    assert!(ps.inject_wal_fault(IoFaultPlan::nth(IoFaultKind::Transient { fail_n: 50 }, 4)));
    let outcome = ps.run(Some(100));
    assert!(
        matches!(
            &outcome.reason,
            StopReason::Error(sorete::core::CoreError::Durability(_))
        ),
        "exhausted retries stop the run: {:?}",
        outcome.reason
    );
    // Durability failures never feed the per-rule breakers.
    assert_eq!(ps.supervisor_stats().quarantines, 0);
    assert!(ps.quarantined_rules().is_empty());
}

// ---------------------------------------------------------------------------
// Budget-driven degradation

#[test]
fn soft_memory_budget_checkpoints_once_and_continues() {
    let ckpt = tmp("soft-degrade.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let mut ps = counting_system(MatcherKind::Rete, COUNT_PROG);
    ps.enable_supervision(SupervisorConfig {
        degradation: DegradationPolicy {
            soft_bytes: Some(1), // trips immediately
            ..DegradationPolicy::default()
        },
        checkpoint_path: Some(ckpt.clone()),
        ..SupervisorConfig::default()
    });
    let outcome = ps.run(Some(100));
    assert_eq!(outcome.reason, StopReason::Quiescence, "soft never stops");
    assert_eq!(counter_value(&ps), Some(sorete_base::Value::Int(10)));
    assert_eq!(ps.supervisor_stats().soft_degrades, 1, "warns exactly once");
    assert!(ckpt.exists(), "the soft trip cut a checkpoint");
}

#[test]
fn hard_memory_budget_halts_orderly_and_resume_continues() {
    let ckpt = tmp("hard-degrade.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let mut ps = counting_system(MatcherKind::Rete, COUNT_PROG);
    ps.enable_supervision(SupervisorConfig {
        degradation: DegradationPolicy {
            hard_bytes: Some(1), // trips after the first firing
            ..DegradationPolicy::default()
        },
        checkpoint_path: Some(ckpt.clone()),
        ..SupervisorConfig::default()
    });
    let outcome = ps.run(Some(100));
    assert!(
        matches!(outcome.reason, StopReason::ResourceExhausted(_)),
        "{:?}",
        outcome.reason
    );
    assert_eq!(ps.supervisor_stats().hard_degrades, 1);
    assert!(ckpt.exists(), "the hard halt cut a checkpoint first");

    // The orderly halt is resumable: a fresh engine (no budgets) picks up
    // from the checkpoint and finishes the job.
    let mut back = ProductionSystem::new(MatcherKind::Rete);
    back.load_program(COUNT_PROG).unwrap();
    back.resume_from_file(&ckpt).unwrap();
    let done = back.run(Some(100));
    assert_eq!(done.reason, StopReason::Quiescence);
    assert_eq!(counter_value(&back), Some(sorete_base::Value::Int(10)));
}

// ---------------------------------------------------------------------------
// Determinism properties (seeded)

proptest! {
    /// The jittered backoff schedule is a pure function of the policy: the
    /// same seed yields the same schedule, every delay respects the
    /// half-to-full band, and the cap binds.
    #[test]
    fn backoff_schedule_is_deterministic_and_banded(
        seed in any::<u64>(),
        max_attempts in 1u32..9,
    ) {
        let rp = RetryPolicy { seed, max_attempts, ..RetryPolicy::default() };
        let a = rp.schedule();
        let b = rp.schedule();
        prop_assert_eq!(&a, &b, "same policy, same schedule");
        prop_assert_eq!(a.len(), max_attempts as usize);
        let cap = rp.cap_micros.max(rp.base_micros);
        for (i, &d) in a.iter().enumerate() {
            let attempt = (i + 1) as u32;
            let exp = (attempt - 1).min(20);
            let raw = rp.base_micros.saturating_mul(1 << exp).min(cap);
            prop_assert!(d >= raw / 2 && d <= raw, "attempt {}: {} outside [{}, {}]", attempt, d, raw / 2, raw);
        }
    }

    /// Breaker transitions are a pure function of the failure-cycle
    /// sequence: two supervisors fed the same failures trip identically,
    /// and a trip needs `max_failures` failures inside the window.
    #[test]
    fn breaker_transitions_are_deterministic(
        strides in proptest::collection::vec(0u64..30, 1..20),
        max_failures in 1u32..5,
        window in 1u64..40,
    ) {
        let config = SupervisorConfig {
            breaker: BreakerPolicy { max_failures, window_cycles: window },
            ..SupervisorConfig::default()
        };
        let mut a = Supervisor::new(config.clone());
        let mut b = Supervisor::new(config);
        let rule = Symbol::new("r");
        let mut cycle = 0u64;
        let mut tripped_at: Option<usize> = None;
        for (i, stride) in strides.iter().enumerate() {
            cycle += stride;
            let ra = a.record_failure(rule, cycle);
            let rb = b.record_failure(rule, cycle);
            prop_assert_eq!(ra, rb, "divergent transition at step {}", i);
            prop_assert_eq!(a.is_tripped(rule), b.is_tripped(rule));
            if ra.is_some() && tripped_at.is_none() {
                tripped_at = Some(i);
                prop_assert!(
                    (i + 1) as u32 >= max_failures,
                    "tripped after {} failures with threshold {}",
                    i + 1,
                    max_failures
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The crash monkey, for real

#[test]
fn crash_monkey_kill_resume_matches_oracle() {
    let dir = std::env::temp_dir().join(format!("sorete-monkey-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for seed in 1u64..=3 {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_crash_monkey"))
            .arg(&dir)
            .arg(seed.to_string())
            .args(["2", "80"]) // 2 kills over an 80-cycle run
            .output()
            .expect("crash_monkey runs");
        assert!(
            out.status.success(),
            "seed {}: {}\n{}",
            seed,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("ok (state identical"), "{}", stdout);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Crash bundles at the process boundary: every abnormal exit leaves a
// black box, the typed exit code still tells the tier, and the recovery
// summary of the *next* run points back at the bundle.

fn sorete_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sorete")
}

/// Counter-to-poison fixture on disk for spawning the real binary.
fn poison_fixture(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let prog = dir.join("poison.ops");
    let wm = dir.join("poison.wm");
    std::fs::write(
        &prog,
        "(literalize counter n)
         (p bump
           (counter ^n <x> < 5)
           -->
           (modify 1 ^n (compute <x> + 1)))
         (p poison
           (counter ^n {<x> 5})
           -->
           (modify 1 ^n (compute <x> / 0)))
        ",
    )
    .unwrap();
    std::fs::write(&wm, "(counter ^n 0)\n").unwrap();
    (prog, wm)
}

#[test]
fn abnormal_exit_has_typed_code_and_bundle_path_in_stderr() {
    let dir = std::env::temp_dir().join(format!("sorete-sup-bundle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (prog, wm) = poison_fixture(&dir);

    // Exit 3 (run error), and the error line names the bundle.
    let out = std::process::Command::new(sorete_bin())
        .args(["--crash-dir"])
        .arg(&dir)
        .args(["--wm"])
        .arg(&wm)
        .arg(&prog)
        .output()
        .expect("sorete runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let bundle_path = stderr
        .lines()
        .find_map(|l| l.split("crash bundle: ").nth(1))
        .unwrap_or_else(|| panic!("no bundle path in stderr: {}", stderr))
        .trim()
        .to_string();
    assert!(
        std::path::Path::new(&bundle_path).join("MANIFEST").exists(),
        "{}",
        bundle_path
    );

    // The offline inspector parses what the dying process wrote.
    let out = std::process::Command::new(sorete_bin())
        .args(["debug", &bundle_path])
        .output()
        .expect("sorete debug runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crash bundle OK: stop=error"), "{}", stdout);
    assert!(stdout.contains("poison"), "{}", stdout);

    // Exit 6 (quarantine-stalled) is also abnormal and also bundles.
    let out = std::process::Command::new(sorete_bin())
        .args(["--supervise", "--quarantine-after", "1", "--crash-dir"])
        .arg(&dir)
        .args(["--wm"])
        .arg(&wm)
        .arg(&prog)
        .output()
        .expect("sorete runs");
    assert_eq!(
        out.status.code(),
        Some(6),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("crash bundle: "), "{}", stderr);

    // Flight recorder off: same exit code, no bundle note.
    let out = std::process::Command::new(sorete_bin())
        .args(["--flight-recorder", "off", "--crash-dir"])
        .arg(&dir)
        .args(["--wm"])
        .arg(&wm)
        .arg(&prog)
        .output()
        .expect("sorete runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("crash bundle: "),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_summary_names_the_previous_runs_bundle() {
    let dir = std::env::temp_dir().join(format!("sorete-sup-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (prog, wm) = poison_fixture(&dir);
    let wal = dir.join("run.wal");

    // First run dies abnormally next to its WAL — bundle lands in the
    // WAL's directory by default, no --crash-dir needed.
    let out = std::process::Command::new(sorete_bin())
        .args(["--wal"])
        .arg(&wal)
        .args(["--wm"])
        .arg(&wm)
        .arg(&prog)
        .output()
        .expect("sorete runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("crash bundle: "),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The restart's recovery summary points at that bundle.
    let out = std::process::Command::new(sorete_bin())
        .args(["--wal"])
        .arg(&wal)
        .arg(&prog)
        .output()
        .expect("sorete runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let recovery = stderr
        .lines()
        .find(|l| l.starts_with("; recovery: "))
        .unwrap_or_else(|| panic!("no recovery line: {}", stderr));
    assert!(
        recovery.contains("crash_bundle="),
        "recovery line lacks the bundle: {}",
        recovery
    );
    assert!(recovery.contains("sorete-crash-"), "{}", recovery);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_monkey_bundle_leg_validates_the_black_box() {
    let dir = std::env::temp_dir().join(format!("sorete-monkey-bundle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_crash_monkey"))
        .arg("--bundle")
        .arg(&dir)
        .output()
        .expect("crash_monkey runs");
    assert!(
        out.status.success(),
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bundle ok: "), "{}", stdout);
    // The advertised path parses with `sorete debug`.
    let listed = std::fs::read_to_string(dir.join("bundle-path")).unwrap();
    let out = std::process::Command::new(sorete_bin())
        .args(["debug", listed.trim(), "timeline"])
        .output()
        .expect("sorete debug runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("stop=panicked"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
