//! Flight-recorder integration tests: the always-on black box, crash
//! bundles on abnormal exits, and the offline inspector's fidelity.
//!
//! The differential tests are the heart: `explain` / `why-not` rendered
//! from a crash bundle must be byte-identical to the live engine's
//! output at the moment the bundle was cut, for every matcher.

use sorete::core::{CrashBundle, FaultPlan, MatcherKind, ProductionSystem, StopReason};
use sorete_base::{Symbol, Value};
use std::path::PathBuf;

const MATCHERS: [MatcherKind; 4] = [
    MatcherKind::Rete,
    MatcherKind::ReteScan,
    MatcherKind::Treat,
    MatcherKind::Naive,
];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sorete-flight-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Two-rule fixture: `compete` has a conflict-set entry, `phantom` never
/// matches (no `coach` WMEs exist), `blocked` loses its support when a
/// player is retracted.
const PROG: &str = "
    (literalize player name team)
    (literalize coach name)
    (p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
      (write <n1> vs <n2>))
    (p phantom (player ^name <n>) (coach ^name <n>)
      (write coached <n>))
";

fn seeded(kind: MatcherKind) -> ProductionSystem {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(PROG).unwrap();
    // Live `explain` reconstructs history from the event log; the bundle
    // side reads the flight ring. Differential runs need both on.
    ps.set_event_log(true);
    ps.make_str(
        "player",
        &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
    )
    .unwrap();
    ps.make_str(
        "player",
        &[("name", Value::sym("Sue")), ("team", Value::sym("B"))],
    )
    .unwrap();
    ps
}

/// Counter workload whose `poison` rule divides by zero at 5 — a
/// deterministic abnormal (`Error`) stop.
const POISON: &str = "
    (literalize counter n)
    (p bump
      (counter ^n <x> < 5)
      -->
      (modify 1 ^n (compute <x> + 1)))
    (p poison
      (counter ^n {<x> 5})
      -->
      (modify 1 ^n (compute <x> / 0)))
";

fn poisoned(kind: MatcherKind) -> ProductionSystem {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(POISON).unwrap();
    ps.assert_wme(
        Symbol::new("counter"),
        vec![(Symbol::new("n"), Value::Int(0))],
    )
    .unwrap();
    ps
}

// ---------------------------------------------------------------------------
// Differential fidelity: bundle explain / why-not == live output

#[test]
fn bundle_explain_matches_live_across_matchers() {
    for kind in MATCHERS {
        let mut ps = seeded(kind);
        let live = ps.explain("compete").unwrap();
        let dir = tmp(&format!("diff-explain-{:?}", kind));
        let bundle_dir = ps.dump_bundle(Some(&dir)).unwrap();
        let bundle = CrashBundle::load(&bundle_dir).unwrap();
        assert_eq!(
            bundle.explain("compete").unwrap(),
            live,
            "{:?}: bundle explain diverged from live",
            kind
        );
    }
}

#[test]
fn bundle_why_not_matches_live_across_matchers() {
    for kind in MATCHERS {
        let mut ps = seeded(kind);
        // `phantom` never matched: no coach WMEs at all.
        let live_never = ps.why_not("phantom").unwrap();
        assert!(
            live_never.contains("never matched"),
            "{:?}: {}",
            kind,
            live_never
        );
        // `compete` CAN fire — why-not must say so on both sides.
        let live_can = ps.why_not("compete").unwrap();
        assert!(
            live_can.contains("ARE in the conflict set"),
            "{:?}: {}",
            kind,
            live_can
        );
        let dir = tmp(&format!("diff-whynot-{:?}", kind));
        let bundle_dir = ps.dump_bundle(Some(&dir)).unwrap();
        let bundle = CrashBundle::load(&bundle_dir).unwrap();
        assert_eq!(bundle.why_not("phantom").unwrap(), live_never, "{:?}", kind);
        assert_eq!(bundle.why_not("compete").unwrap(), live_can, "{:?}", kind);
    }
}

#[test]
fn bundle_why_not_lost_match_matches_live_across_matchers() {
    for kind in MATCHERS {
        let mut ps = seeded(kind);
        // Retract Sue: `compete` loses its only instantiation.
        let sue = ps
            .wm()
            .iter()
            .find(|w| w.get(Symbol::new("name")) == Value::sym("Sue"))
            .map(|w| w.tag)
            .unwrap();
        ps.retract_wme(sue).unwrap();
        let live = ps.why_not("compete").unwrap();
        assert!(live.contains("lost match"), "{:?}: {}", kind, live);
        let dir = tmp(&format!("diff-lost-{:?}", kind));
        let bundle_dir = ps.dump_bundle(Some(&dir)).unwrap();
        let bundle = CrashBundle::load(&bundle_dir).unwrap();
        assert_eq!(bundle.why_not("compete").unwrap(), live, "{:?}", kind);
    }
}

// ---------------------------------------------------------------------------
// Abnormal exits always leave a valid bundle

#[test]
fn run_error_writes_a_valid_bundle() {
    for kind in MATCHERS {
        let dir = tmp(&format!("err-{:?}", kind));
        let mut ps = poisoned(kind);
        ps.set_crash_dir(&dir);
        let outcome = ps.run(Some(100));
        assert!(
            matches!(outcome.reason, StopReason::Error(_)),
            "{:?}: {:?}",
            kind,
            outcome.reason
        );
        let bundle_dir = ps
            .last_crash_bundle()
            .unwrap_or_else(|| panic!("{:?}: no bundle written", kind))
            .to_path_buf();
        let bundle = CrashBundle::load(&bundle_dir).unwrap();
        assert_eq!(bundle.get("stop"), Some("error"));
        assert!(!bundle.cycles.is_empty(), "{:?}: no cycle records", kind);
        assert!(!bundle.events.is_empty(), "{:?}: no events", kind);
        assert!(!bundle.rules.is_empty(), "{:?}: no rules", kind);
        // The fsck pass accepts it too.
        let summary = ProductionSystem::fsck_bundle(&bundle_dir).unwrap();
        assert!(summary.contains("crash bundle OK"), "{}", summary);
        // The timeline's last record is the failed poison cycle.
        let last = bundle.cycles.last().unwrap();
        assert!(!last.ok, "{:?}: last cycle should be the failure", kind);
        assert_eq!(last.rule.as_str(), "poison", "{:?}", kind);
    }
}

#[test]
fn panic_writes_a_bundle_with_stop_panicked() {
    let dir = tmp("panic");
    let mut ps = poisoned(MatcherKind::Rete);
    ps.set_crash_dir(&dir);
    ps.inject_fault(FaultPlan::nth(3).panicking());
    let outcome = ps.run(Some(100));
    assert!(matches!(outcome.reason, StopReason::Panicked { .. }));
    let bundle = CrashBundle::load(ps.last_crash_bundle().unwrap()).unwrap();
    assert_eq!(bundle.get("stop"), Some("panicked"));
    assert_eq!(
        bundle.get("reason").map(|r| r.contains("Panicked")),
        Some(true)
    );
}

#[test]
fn benign_stops_write_no_bundle() {
    let dir = tmp("benign");
    let mut ps = seeded(MatcherKind::Rete);
    ps.set_crash_dir(&dir);
    let outcome = ps.run(None);
    assert!(matches!(outcome.reason, StopReason::Quiescence));
    assert!(ps.last_crash_bundle().is_none());
}

#[test]
fn flight_off_disables_bundles_and_dump_errors() {
    let dir = tmp("off");
    let mut ps = poisoned(MatcherKind::Rete);
    ps.set_flight_recorder(0);
    ps.set_crash_dir(&dir);
    assert!(!ps.flight_enabled());
    let outcome = ps.run(Some(100));
    assert!(matches!(outcome.reason, StopReason::Error(_)));
    assert!(ps.last_crash_bundle().is_none());
    let err = ps.dump_bundle(Some(&dir)).unwrap_err().to_string();
    assert!(err.contains("flight recorder is off"), "{}", err);
}

// ---------------------------------------------------------------------------
// Ring semantics and manifest contents

#[test]
fn ring_keeps_the_last_records_under_eviction() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.set_flight_recorder(8);
    ps.load_program(
        "(literalize counter n)
         (p bump (counter ^n <x> < 40) --> (modify 1 ^n (compute <x> + 1)))",
    )
    .unwrap();
    ps.assert_wme(
        Symbol::new("counter"),
        vec![(Symbol::new("n"), Value::Int(0))],
    )
    .unwrap();
    ps.run(None);
    let counts = ps.flight().counts();
    assert!(counts.evicted > 0, "{:?}", counts);
    let cycles = ps.flight().cycles();
    assert!(cycles.len() <= 8, "{}", cycles.len());
    // Overwrite-oldest: what survives is the *tail* of the run.
    assert_eq!(cycles.last().unwrap().cycle, ps.cycle());
    let dir = tmp("evict");
    let bundle = CrashBundle::load(&ps.dump_bundle(Some(&dir)).unwrap()).unwrap();
    let evicted: u64 = bundle.get("evicted").unwrap().parse().unwrap();
    assert!(evicted > 0);
    assert_eq!(
        bundle.cycles.last().unwrap().cycle,
        cycles.last().unwrap().cycle
    );
}

#[test]
fn manifest_records_topology_and_invocation() {
    let dir = tmp("manifest");
    let mut ps = ProductionSystem::with_jobs_shards(MatcherKind::Treat, 2, 4);
    ps.load_program(POISON).unwrap();
    ps.set_invocation(vec!["sorete".into(), "--shards".into(), "4".into()]);
    ps.set_crash_dir(&dir);
    ps.assert_wme(
        Symbol::new("counter"),
        vec![(Symbol::new("n"), Value::Int(0))],
    )
    .unwrap();
    let outcome = ps.run(Some(100));
    assert!(outcome.reason.is_abnormal());
    let bundle = CrashBundle::load(ps.last_crash_bundle().unwrap()).unwrap();
    assert_eq!(bundle.get("shards"), Some("4"));
    assert_eq!(bundle.get("jobs"), Some("2"));
    assert_eq!(bundle.get("matcher"), Some("parallel-treat"));
    assert_eq!(bundle.get("argv"), Some("sorete --shards 4"));
    assert_eq!(ps.shards(), 4);
}

#[test]
fn repeated_dumps_get_distinct_directories() {
    let dir = tmp("collide");
    let mut ps = seeded(MatcherKind::Rete);
    let first = ps.dump_bundle(Some(&dir)).unwrap();
    let second = ps.dump_bundle(Some(&dir)).unwrap();
    assert_ne!(first, second);
    assert!(CrashBundle::load(&first).is_ok());
    assert!(CrashBundle::load(&second).is_ok());
}

#[test]
fn shard_count_is_exported_as_a_gauge() {
    let mut ps = ProductionSystem::with_jobs_shards(MatcherKind::Rete, 2, 6);
    ps.load_program(PROG).unwrap();
    ps.enable_metrics();
    ps.make_str(
        "player",
        &[("name", Value::sym("Jack")), ("team", Value::sym("A"))],
    )
    .unwrap();
    ps.run(None);
    ps.record_metrics_snapshot();
    let prom = ps.metrics_prometheus().unwrap();
    assert!(prom.contains("sorete_shards 6"), "{}", prom);
}
