//! Property tests for the language layer: printer ∘ parser round trips,
//! and whole-engine agreement between matchers on runnable programs.

use proptest::prelude::*;
use sorete::core::{MatcherKind, ProductionSystem};
use sorete::lang::{parse_rule, print_rule};
use sorete_base::{Symbol, Value};
use sorete_lang::ast::*;

// ------------------------------------------------------ AST generators

fn sym_pool(pool: &'static [&'static str]) -> impl Strategy<Value = Symbol> {
    (0..pool.len()).prop_map(move |i| Symbol::new(pool[i]))
}

fn class_sym() -> impl Strategy<Value = Symbol> {
    sym_pool(&["alpha", "beta", "gamma"])
}

fn attr_sym() -> impl Strategy<Value = Symbol> {
    sym_pool(&["x", "y", "z"])
}

fn var_sym() -> impl Strategy<Value = Symbol> {
    sym_pool(&["u", "v", "w"])
}

fn const_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-99i64..99).prop_map(Value::Int),
        prop_oneof![Just("red"), Just("green"), Just("blue")].prop_map(Value::sym),
        Just(Value::Nil),
    ]
}

fn pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::Eq),
        Just(Pred::Ne),
        Just(Pred::Lt),
        Just(Pred::Le),
        Just(Pred::Gt),
        Just(Pred::Ge)
    ]
}

fn test_term() -> impl Strategy<Value = TestTerm> {
    prop_oneof![
        3 => (pred(), const_value()).prop_map(|(p, v)| TestTerm::Pred(p, Operand::Const(v))),
        2 => var_sym().prop_map(|v| TestTerm::Pred(Pred::Eq, Operand::Var(v))),
        1 => proptest::collection::vec(const_value(), 1..3).prop_map(TestTerm::AnyOf),
    ]
}

fn cond_elem() -> impl Strategy<Value = CondElem> {
    (
        class_sym(),
        any::<bool>(),
        proptest::collection::vec(
            (attr_sym(), proptest::collection::vec(test_term(), 1..3)),
            1..3,
        ),
    )
        .prop_map(|(class, set_oriented, tests)| CondElem {
            class,
            negated: false,
            set_oriented,
            elem_var: None,
            tests: tests
                .into_iter()
                .map(|(attr, terms)| AttrTest { attr, terms })
                .collect(),
        })
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (class_sym(), attr_sym(), const_value()).prop_map(|(c, a, v)| Action::Make {
            class: c,
            slots: vec![(a, Expr::Const(v))]
        }),
        const_value().prop_map(|v| Action::Write(vec![Expr::Const(v)])),
        Just(Action::Halt),
    ]
}

fn rule() -> impl Strategy<Value = Rule> {
    (
        proptest::collection::vec(cond_elem(), 1..4),
        proptest::collection::vec(action(), 1..3),
    )
        .prop_map(|(lhs, rhs)| Rule {
            name: Symbol::new("generated"),
            lhs,
            scalar: vec![],
            tests: vec![],
            rhs,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print ∘ parse == identity on generated ASTs.
    #[test]
    fn printer_roundtrip(r in rule()) {
        let printed = print_rule(&r);
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("printed rule failed to reparse: {}\n{}", e, printed));
        prop_assert_eq!(&r, &reparsed, "printed form:\n{}", printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic — arbitrary input yields Ok or Err.
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = sorete::lang::parse_program(&src);
        let _ = sorete::lang::parse_rule(&src);
    }

    /// Token soup built from the language's own vocabulary parses or
    /// errors cleanly (denser coverage of parser states than raw ASCII).
    #[test]
    fn vocabulary_soup_never_panics(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("("), Just(")"), Just("["), Just("]"), Just("{"), Just("}"),
                Just("p"), Just("r"), Just("literalize"), Just("^a"), Just("<v>"),
                Just(":scalar"), Just(":test"), Just("-->"), Just("foreach"),
                Just("set-modify"), Just("count"), Just("=="), Just(">"), Just("42"),
                Just("make"), Just("remove"), Just("write"), Just("if"), Just("else"),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = sorete::lang::parse_program(&src);
    }
}

// ----------------------------------------- engine-level run equivalence

/// Programs that drive WM through makes/removes/modifies — all matchers
/// must converge to identical final WM and output.
const PROGRAMS: &[&str] = &[
    // Counter loop with arithmetic.
    "(literalize c n)
     (p tick (c ^n <n> ^n > 0) (write <n>) (modify 1 ^n (<n> - 1)))",
    // Set-oriented sweep, two classes.
    "(literalize item s)(literalize log t)
     (p sweep { [item ^s pending] <P> } (set-modify <P> ^s done) (make log ^t swept))",
    // Negation-guarded production chain.
    "(literalize a v)(literalize b v)
     (p derive (a ^v <x>) -(b ^v <x>) (make b ^v <x>))",
    // Aggregate-gated cleanup.
    "(literalize item k)
     (p dedup { [item ^k <k>] <P> } :scalar (<k>) :test ((count <P>) > 1)
        (bind <first> true)
        (foreach <P> descending
          (if (<first> == true) (bind <first> false) else (remove <P>))))",
];

fn seed_wm(ps: &mut ProductionSystem, seed: &[(u8, i64)]) {
    for &(class, v) in seed {
        match class % 4 {
            0 => {
                let _ = ps.make_str("c", &[("n", Value::Int(v.rem_euclid(5)))]);
            }
            1 => {
                let _ = ps.make_str(
                    "item",
                    &[("s", Value::sym(if v % 2 == 0 { "pending" } else { "done" }))],
                );
            }
            2 => {
                let _ = ps.make_str("a", &[("v", Value::Int(v.rem_euclid(3)))]);
            }
            _ => {
                let _ = ps.make_str("item", &[("k", Value::Int(v.rem_euclid(3)))]);
            }
        }
    }
}

fn final_state(kind: MatcherKind, program: &str, seed: &[(u8, i64)]) -> (Vec<String>, Vec<String>) {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(program).unwrap();
    seed_wm(&mut ps, seed);
    ps.run(Some(300));
    let mut wm: Vec<String> = ps
        .wm()
        .dump()
        .iter()
        .map(|w| {
            // Compare WMEs structurally without time tags (tag allocation
            // order differs only if firing order differs — which LEX makes
            // deterministic, but modify re-tagging could still vary).
            let slots: Vec<String> = w
                .slots()
                .iter()
                .map(|(a, v)| format!("^{} {}", a, v))
                .collect();
            format!("({} {})", w.class, slots.join(" "))
        })
        .collect();
    wm.sort();
    let mut out = ps.take_output();
    out.sort();
    (wm, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_converge_identically(
        pi in 0usize..4,
        seed in proptest::collection::vec((0u8..4, 0i64..10), 1..12),
    ) {
        let program = PROGRAMS[pi];
        let rete = final_state(MatcherKind::Rete, program, &seed);
        let treat = final_state(MatcherKind::Treat, program, &seed);
        let naive = final_state(MatcherKind::Naive, program, &seed);
        prop_assert_eq!(&rete, &treat, "rete vs treat on program {}", pi);
        prop_assert_eq!(&rete, &naive, "rete vs naive on program {}", pi);
    }
}
