//! Cross-system property test: the DIPS COND-table matcher (relational
//! substrate, §8) must derive exactly the same instantiations and SOI
//! groups as the in-memory naive matcher — two wholly different
//! implementations of the same semantics.

use proptest::prelude::*;
use sorete::dips::{DipsEngine, DipsMode};
use sorete::lang::{analyze_rule, parse_rule, Matcher};
use sorete::naive::NaiveMatcher;
use sorete_base::{InstKey, Symbol, TimeTag, Value, Wme};
use std::collections::BTreeSet;
use std::sync::Arc;

const PROGRAM: &str = "(p pair (a ^x <v>) (b ^x <v> ^y <w>) (write done))
     (p solo (a ^x <v> ^y > 1) (write solo))
     (p grp (a ^x <v>) [b ^x <v> ^y <w>] (write grp))";

#[derive(Clone, Debug)]
enum Op {
    Insert { class: u8, x: i64, y: i64 },
    Remove(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..2, 0i64..3, 0i64..4).prop_map(|(class, x, y)| Op::Insert { class, x, y }),
        1 => (0usize..12).prop_map(Op::Remove),
    ]
}

/// Canonical tuple instantiations: (rule, tags).
type TupleCanon = BTreeSet<(usize, Vec<u64>)>;
/// Canonical SOIs: (rule, sorted row set).
type SoiCanon = BTreeSet<(usize, BTreeSet<Vec<u64>>)>;

fn drive(ops: &[Op]) -> ((TupleCanon, SoiCanon), (TupleCanon, SoiCanon)) {
    let mut dips = DipsEngine::new(DipsMode::Set, PROGRAM).unwrap();
    let mut naive = NaiveMatcher::new();
    for rule in PROGRAM.split("(p ").skip(1) {
        let src = format!("(p {}", rule.trim());
        naive.add_rule(Arc::new(analyze_rule(&parse_rule(&src).unwrap()).unwrap()));
    }

    let mut live: Vec<(TimeTag, Wme)> = Vec::new();
    let mut next = 0u64;
    for o in ops {
        match o {
            Op::Insert { class, x, y } => {
                next += 1;
                let class_name = if *class == 0 { "a" } else { "b" };
                let tag = dips
                    .insert(class_name, &[("x", Value::Int(*x)), ("y", Value::Int(*y))])
                    .unwrap();
                assert_eq!(tag.raw(), next, "tag allocation stays in lockstep");
                let wme = Wme::new(
                    tag,
                    Symbol::new(class_name),
                    vec![
                        (Symbol::new("x"), Value::Int(*x)),
                        (Symbol::new("y"), Value::Int(*y)),
                    ],
                );
                naive.insert_wme(&wme);
                live.push((tag, wme));
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let (tag, wme) = live.remove(i % live.len());
                dips.remove(tag).unwrap();
                naive.remove_wme(&wme);
            }
        }
    }

    // DIPS canon.
    let d_tuples: TupleCanon = dips
        .instantiations()
        .into_iter()
        .map(|i| (i.rule, i.tags.iter().map(|t| t.raw()).collect()))
        .collect();
    // `sois()` reports singleton groups for regular rules too (the firing
    // layer treats them uniformly); compare only genuinely set-oriented
    // rules against the naive matcher's SOI items.
    let d_sois: SoiCanon = dips
        .sois()
        .into_iter()
        .filter(|s| dips.rules()[s.rule].is_set_oriented)
        .map(|s| {
            (
                s.rule,
                s.rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect(),
            )
        })
        .collect();

    // Naive canon (its conflict set holds tuple items for regular rules and
    // SOI items for set rules; recover both views).
    let _ = naive.drain_deltas();
    let mut n_tuples: TupleCanon = BTreeSet::new();
    let mut n_sois: SoiCanon = BTreeSet::new();
    let mut n_tuple_rows_for_set_rules: TupleCanon = BTreeSet::new();
    for item in naive.items() {
        match &item.key {
            InstKey::Tuple { rule, tags } => {
                n_tuples.insert((rule.index(), tags.iter().map(|t| t.raw()).collect()));
            }
            InstKey::Soi { rule, .. } => {
                let rows: BTreeSet<Vec<u64>> = item
                    .rows
                    .iter()
                    .map(|r| r.iter().map(|t| t.raw()).collect())
                    .collect();
                for row in &rows {
                    n_tuple_rows_for_set_rules.insert((rule.index(), row.clone()));
                }
                n_sois.insert((rule.index(), rows));
            }
        }
    }
    // DIPS `instantiations()` reports rows for *all* rules, set or not.
    n_tuples.extend(n_tuple_rows_for_set_rules);
    ((d_tuples, d_sois), (n_tuples, n_sois))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dips_matches_naive(ops in proptest::collection::vec(op(), 1..24)) {
        let ((d_tuples, d_sois), (n_tuples, n_sois)) = drive(&ops);
        prop_assert_eq!(d_tuples, n_tuples, "tuple instantiations diverge");
        prop_assert_eq!(d_sois, n_sois, "SOI groups diverge");
    }
}
