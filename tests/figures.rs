//! End-to-end reproduction of every figure in the paper, from source text
//! through the full engine. Experiment ids F1–F6 (see DESIGN.md).

use sorete::core::{MatcherKind, ProductionSystem, StopReason};
use sorete_base::{Symbol, Value};

const LIT: &str = "(literalize player name team)\n";

const FIGURE1_WM: &[(&str, &str)] = &[
    ("Jack", "A"),
    ("Janice", "A"),
    ("Sue", "B"),
    ("Jack", "B"),
    ("Sue", "B"),
];

fn engine(kind: MatcherKind, rules: &str) -> ProductionSystem {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(&format!("{}{}", LIT, rules))
        .expect("program loads");
    ps
}

fn load_players(ps: &mut ProductionSystem) {
    for (n, t) in FIGURE1_WM {
        ps.make_str(
            "player",
            &[("name", Value::sym(n)), ("team", Value::sym(t))],
        )
        .unwrap();
    }
}

const ALL: &[MatcherKind] = &[MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive];

// ------------------------------------------------------------------- F1

#[test]
fn f1_compete_conflict_set() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
               (write Player-A: <n1> Player-B: <n2>))",
        );
        load_players(&mut ps);
        // "6 Instantiations" — the cross product {Jack,Janice} × {3 B-rows}.
        assert_eq!(ps.conflict_set_len(), 6, "{:?}", kind);
        let items = ps.conflict_items();
        // Check the exact tag pairs of the paper's conflict set.
        let mut pairs: Vec<(u64, u64)> = items
            .iter()
            .map(|i| (i.rows[0][0].raw(), i.rows[0][1].raw()))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![(1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)],
            "{:?}",
            kind
        );
    }
}

// ------------------------------------------------------------------- F2

#[test]
fn f2_all_set_lhs_single_soi() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p compete1 [player ^name <n1> ^team A] [player ^name <n2> ^team B] (halt))",
        );
        load_players(&mut ps);
        assert_eq!(ps.conflict_set_len(), 1, "{:?}", kind);
        let item = &ps.conflict_items()[0];
        assert_eq!(
            item.rows.len(),
            6,
            "the instantiation contains the entire relation"
        );
        // The head row is the most recent combination (tags 2 and 5).
        let head: Vec<u64> = item.rows[0].iter().map(|t| t.raw()).collect();
        assert_eq!(head, vec![2, 5], "{:?}", kind);
    }
}

#[test]
fn f2_mixed_lhs_partitioned_by_regular_ce() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p compete2 [player ^name <n1> ^team A] (player ^name <n2> ^team B) (halt))",
        );
        load_players(&mut ps);
        // "3 Instantiations", one per team-B WME, each with both A players.
        assert_eq!(ps.conflict_set_len(), 3, "{:?}", kind);
        for item in ps.conflict_items() {
            assert_eq!(item.rows.len(), 2, "{:?}", kind);
            let b_tags: Vec<u64> = item.rows.iter().map(|r| r[1].raw()).collect();
            assert!(
                b_tags.iter().all(|&t| t == b_tags[0]),
                "same B row throughout"
            );
        }
    }
}

// ------------------------------------------------------------------- F4

#[test]
fn f4_group_by_team_iteration_trace() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p GroupByTeam [player ^team <t> ^name <n>]
               (foreach <t> (write <t>) (foreach <n> (write <n>))))",
        );
        load_players(&mut ps);
        let outcome = ps.run(None);
        assert_eq!(outcome.fired, 1, "{:?}: single instantiation", kind);
        // Paper's trace: outer <t>=B first (most recent), inner Sue then
        // Jack (value-based: duplicate Sue printed once); then <t>=A with
        // Janice then Jack.
        assert_eq!(
            ps.take_output(),
            vec!["B", "Sue", "Jack", "A", "Janice", "Jack"],
            "{:?}",
            kind
        );
    }
}

// ------------------------------------------------------------------- F5

#[test]
fn f5_switch_teams() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p SwitchTeams
               { [player ^team A] <ATeam> }
               { [player ^team B] <BTeam> }
               :test ((count <ATeam>) == (count <BTeam>))
               (set-modify <ATeam> ^team B)
               (set-modify <BTeam> ^team A)
               (halt))",
        );
        for (n, t) in [("Jack", "A"), ("Janice", "A"), ("Sue", "B"), ("Mike", "B")] {
            ps.make_str(
                "player",
                &[("name", Value::sym(n)), ("team", Value::sym(t))],
            )
            .unwrap();
        }
        let outcome = ps.run(Some(10));
        assert_eq!(
            outcome.fired, 1,
            "{:?}: the swap is one conceptual operation",
            kind
        );
        assert_eq!(outcome.reason, StopReason::Halt);
        let team_of = |name: &str| {
            ps.wm()
                .iter()
                .find(|w| w.get(Symbol::new("name")) == Value::sym(name))
                .unwrap()
                .get(Symbol::new("team"))
        };
        assert_eq!(team_of("Jack"), Value::sym("B"), "{:?}", kind);
        assert_eq!(team_of("Janice"), Value::sym("B"), "{:?}", kind);
        assert_eq!(team_of("Sue"), Value::sym("A"), "{:?}", kind);
        assert_eq!(team_of("Mike"), Value::sym("A"), "{:?}", kind);
    }
}

#[test]
fn f5_switch_teams_requires_equal_counts() {
    let mut ps = engine(
        MatcherKind::Rete,
        "(p SwitchTeams
           { [player ^team A] <ATeam> }
           { [player ^team B] <BTeam> }
           :test ((count <ATeam>) == (count <BTeam>))
           (set-modify <ATeam> ^team B)
           (set-modify <BTeam> ^team A))",
    );
    for (n, t) in [("Jack", "A"), ("Janice", "A"), ("Sue", "B")] {
        ps.make_str(
            "player",
            &[("name", Value::sym(n)), ("team", Value::sym(t))],
        )
        .unwrap();
    }
    assert_eq!(
        ps.conflict_set_len(),
        0,
        "2 vs 1: the aggregate test blocks the rule"
    );
    assert_eq!(ps.run(Some(5)).fired, 0);
}

#[test]
fn f5_group_by_a_hierarchical_decomposition() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p GroupByA [player ^name <n1> ^team A] [player ^name <n2> ^team B]
               (foreach <n1> (write <n1>) (foreach <n2> (write <n2>))))",
        );
        load_players(&mut ps);
        let outcome = ps.run(None);
        assert_eq!(outcome.fired, 1, "{:?}", kind);
        let out = ps.take_output();
        // Each A-player printed once, followed by the distinct B names.
        // Recency order: Jack(A) joined rows including tag-5 Sue are most
        // recent... the outer domain order is by row recency.
        assert_eq!(
            out.len(),
            2 + 2 * 2,
            "2 A-names, each with 2 distinct B-names: {:?}",
            out
        );
        // Every A name appears, and between A names the B names are Sue/Jack.
        assert!(out.contains(&"Jack".to_string()) && out.contains(&"Janice".to_string()));
        assert!(out.contains(&"Sue".to_string()));
    }
}

#[test]
fn f5_remove_dups_keeps_most_recent() {
    for &kind in ALL {
        let mut ps = engine(
            kind,
            "(p RemoveDups
               { [player ^name <n> ^team <t>] <P> }
               :scalar (<n> <t>)
               :test ((count <P>) > 1)
               (bind <First> true)
               (foreach <P> descending
                 (if (<First> == true) (bind <First> false) else (remove <P>))))",
        );
        load_players(&mut ps);
        let outcome = ps.run(Some(20));
        // One duplicated pair (Sue, B) → one instantiation, one firing.
        assert_eq!(outcome.fired, 1, "{:?}", kind);
        let tags: Vec<u64> = ps.wm().dump().iter().map(|w| w.tag.raw()).collect();
        assert_eq!(
            tags,
            vec![1, 2, 4, 5],
            "{:?}: tag 3 (older Sue/B) removed",
            kind
        );
    }
}

#[test]
fn f5_alternative_remove_dups_fires_unconditionally() {
    // The paper: "this rule cannot discern whether any duplicates exist,
    // thus its instantiation can fire unnecessarily".
    let mut with_dups = engine(
        MatcherKind::Rete,
        "(p AlternativeRemoveDups
           { [player ^name <n> ^team <t>] <P> }
           (foreach <n> (foreach <t>
             (bind <First> true)
             (foreach <P> descending
               (if (<First> == true) (bind <First> false) else (remove <P>))))))",
    );
    load_players(&mut with_dups);
    let o = with_dups.run(Some(20));
    assert!(o.fired >= 1);
    assert_eq!(with_dups.wm().len(), 4, "duplicates removed");

    // Without duplicates it *still* fires (unnecessarily).
    let mut no_dups = engine(
        MatcherKind::Rete,
        "(p AlternativeRemoveDups
           { [player ^name <n> ^team <t>] <P> }
           (foreach <n> (foreach <t>
             (bind <First> true)
             (foreach <P> descending
               (if (<First> == true) (bind <First> false) else (remove <P>))))))",
    );
    no_dups
        .make_str(
            "player",
            &[("name", Value::sym("Solo")), ("team", Value::sym("A"))],
        )
        .unwrap();
    assert_eq!(
        no_dups.conflict_set_len(),
        1,
        "fires even with nothing to remove"
    );

    // The :test-guarded RemoveDups does not.
    let mut guarded = engine(
        MatcherKind::Rete,
        "(p RemoveDups
           { [player ^name <n> ^team <t>] <P> }
           :scalar (<n> <t>)
           :test ((count <P>) > 1)
           (set-remove <P>))",
    );
    guarded
        .make_str(
            "player",
            &[("name", Value::sym("Solo")), ("team", Value::sym("A"))],
        )
        .unwrap();
    assert_eq!(guarded.conflict_set_len(), 0);
}

// ------------------------------------------------------------------- F3
// (The S-node algorithm itself is unit-tested exhaustively in sorete-soi;
// here we check its externally visible contract end to end.)

#[test]
fn f3_soi_refires_on_change_and_repositions() {
    let mut ps = engine(
        MatcherKind::Rete,
        "(p watch { [player ^team A] <P> } (write count-now (count <P>)))",
    );
    ps.make_str(
        "player",
        &[("name", Value::sym("a")), ("team", Value::sym("A"))],
    )
    .unwrap();
    assert_eq!(ps.run(None).fired, 1);
    ps.make_str(
        "player",
        &[("name", Value::sym("b")), ("team", Value::sym("A"))],
    )
    .unwrap();
    assert_eq!(ps.run(None).fired, 1, "time token re-armed the SOI");
    ps.make_str(
        "player",
        &[("name", Value::sym("c")), ("team", Value::sym("B"))],
    )
    .unwrap();
    assert_eq!(ps.run(None).fired, 0, "unrelated WME does not re-arm");
    assert_eq!(ps.take_output(), vec!["count-now 1", "count-now 2"]);
}

// ------------------------------------------------------------------- F6

#[test]
fn f6_dips_figure() {
    let fig = sorete::dips::figure6().expect("figure 6 builds");
    // The paper's groups: E-tuple 2 with W∈{1,3}; E-tuple 4 with W∈{1,3}.
    assert_eq!(fig.groups.len(), 2);
    let as_pairs: Vec<(u64, Vec<u64>)> = fig
        .groups
        .iter()
        .map(|g| {
            let e = match g.key[0] {
                Value::Tag(t) => t.raw(),
                ref other => panic!("unexpected key {:?}", other),
            };
            let mut ws: Vec<u64> = g.rows.iter().map(|r| r[1].raw()).collect();
            ws.sort();
            ws.dedup();
            (e, ws)
        })
        .collect();
    assert_eq!(as_pairs, vec![(2, vec![1, 3]), (4, vec![1, 3])]);
    // And via the SQL query: 4 rows in 2 groups.
    assert_eq!(fig.soi_relation.rows.len(), 4);
    let groups: Vec<i64> = fig
        .soi_relation
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(g) => g,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(groups, vec![1, 1, 2, 2]);
}

// ----------------------------------------------------- network rendering

/// The DOT export labels equality-indexed Join/Negative nodes with their
/// hash key, and omits the annotation when indexing is disabled.
#[test]
fn network_dot_annotates_indexed_joins() {
    let rules = "(p mates (player ^name <n1> ^team <t>) (player ^name <n2> ^team <t>) (halt))
         (p solo (player ^name <n> ^team <t>) -(player ^team <t> ^name <> <n>) (halt))";
    let mut ps = engine(MatcherKind::Rete, rules);
    load_players(&mut ps);
    let dot = ps.network_dot().expect("rete renders a network");
    assert!(
        dot.contains("[idx: ^team]"),
        "join/negative nodes annotated with their hash key:\n{}",
        dot
    );
    assert!(dot.contains("negative"), "{}", dot);

    let mut scan = engine(MatcherKind::ReteScan, rules);
    load_players(&mut scan);
    let scan_dot = scan.network_dot().expect("scan rete renders a network");
    assert!(
        !scan_dot.contains("[idx:"),
        "scan mode builds no indexes:\n{}",
        scan_dot
    );
}
