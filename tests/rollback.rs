//! Transactional firing semantics: fault injection at every action index,
//! rollback exactness, recovery policies, and resource guards.
//!
//! The central property (differential across all three matchers): if an
//! RHS action fails under `RecoveryPolicy::Rollback`, the engine's working
//! memory and conflict-set keys afterwards are *identical* to the
//! pre-firing snapshot — and after clearing the fault the run completes
//! with exactly the same working memory, conflict set, and output as a
//! run that never faulted.

use proptest::prelude::*;
use sorete::core::{
    CoreError, FaultPlan, GuardViolation, MatcherKind, ProductionSystem, RecoveryPolicy, RunGuards,
    StopReason,
};
use sorete_base::Value;
use std::time::Duration;

const KINDS: [MatcherKind; 3] = [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive];

const TEAMS_OPS: &str = include_str!("../programs/teams.ops");

fn teams_engine(kind: MatcherKind) -> ProductionSystem {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(TEAMS_OPS).unwrap();
    for (name, team) in [
        ("Jack", "A"),
        ("Janice", "A"),
        ("Sue", "B"),
        ("Jack", "B"),
        ("Sue", "B"),
    ] {
        ps.make_str(
            "player",
            &[("name", Value::sym(name)), ("team", Value::sym(team))],
        )
        .unwrap();
    }
    ps
}

fn payroll_engine(kind: MatcherKind) -> ProductionSystem {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(
        "(literalize dept id budget)
         (literalize emp name dept salary)
         (literalize finding dept kind amount)
         (p over-budget
           (dept ^id <d> ^budget <b>)
           [emp ^dept <d> ^salary <s>]
           :test ((avg <s>) > <b>)
           -->
           (write dept <d> over budget)
           (make finding ^dept <d> ^kind avg-over-budget ^amount (avg <s>)))
         (p too-many-heads
           (dept ^id <d>)
           { [emp ^dept <d>] <Staff> }
           :test ((count <Staff>) > 3)
           -->
           (make finding ^dept <d> ^kind overstaffed ^amount (count <Staff>)))
         (p salary-spread
           { [emp ^dept <d> ^salary <s>] <E> }
           :scalar (<d>)
           :test ((count <E>) > 1 and ((max <s>) - (min <s>)) > 50000)
           -->
           (make finding ^dept <d> ^kind wide-spread ^amount ((max <s>) - (min <s>))))",
    )
    .unwrap();
    for (id, budget) in [(10, 95_000), (20, 70_000)] {
        ps.make_str(
            "dept",
            &[("id", Value::Int(id)), ("budget", Value::Int(budget))],
        )
        .unwrap();
    }
    for (name, dept, sal) in [
        ("ann", 10, 120_000),
        ("bob", 10, 95_000),
        ("cat", 10, 60_000),
        ("dan", 10, 115_000),
        ("eve", 20, 65_000),
        ("fox", 20, 72_000),
    ] {
        ps.make_str(
            "emp",
            &[
                ("name", Value::sym(name)),
                ("dept", Value::Int(dept)),
                ("salary", Value::Int(sal)),
            ],
        )
        .unwrap();
    }
    ps
}

/// Observable engine state: working-memory contents (tag + class + slots)
/// and the conflict set's instantiation keys, both canonically ordered.
type Snapshot = (Vec<String>, Vec<String>);

fn snapshot(ps: &ProductionSystem) -> Snapshot {
    let wm: Vec<String> = ps.wm().dump().iter().map(|w| w.to_string()).collect();
    let mut cs: Vec<String> = ps
        .conflict_items()
        .iter()
        .map(|i| format!("{:?}", i.key))
        .collect();
    cs.sort();
    (wm, cs)
}

struct CleanRun {
    snapshot: Snapshot,
    output: Vec<String>,
    actions: u64,
}

fn clean_run(build: fn(MatcherKind) -> ProductionSystem, kind: MatcherKind) -> CleanRun {
    let mut ps = build(kind);
    let out = ps.run(None);
    assert!(
        matches!(out.reason, StopReason::Quiescence | StopReason::Halt),
        "clean run must finish normally, got {:?}",
        out.reason
    );
    CleanRun {
        snapshot: snapshot(&ps),
        output: ps.take_output(),
        actions: ps.stats().actions,
    }
}

/// Drive one engine with a fault at action `n` under Rollback: assert the
/// post-error state equals the immediate pre-firing snapshot, then clear
/// the fault and finish the run. Returns (faulted snapshot, final
/// snapshot, final output).
fn faulted_run(
    build: fn(MatcherKind) -> ProductionSystem,
    kind: MatcherKind,
    plan: FaultPlan,
) -> (Snapshot, Snapshot, Vec<String>) {
    let n = plan.target();
    let mut ps = build(kind);
    ps.inject_fault(plan);
    let mut steps = 0u32;
    let faulted = loop {
        steps += 1;
        assert!(steps < 10_000, "runaway step loop");
        let pre = snapshot(&ps);
        match ps.step() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("{:?}: fault at action {} never triggered", kind, n),
            Err(e) => {
                assert_eq!(e, CoreError::FaultInjected { action: n });
                let post = snapshot(&ps);
                assert_eq!(
                    pre, post,
                    "{:?}: rollback of a fault at action {} did not restore the pre-firing state",
                    kind, n
                );
                break post;
            }
        }
    };
    let plan = ps.take_fault().expect("plan still installed");
    assert!(plan.triggered());
    let out = ps.run(None);
    assert!(
        matches!(out.reason, StopReason::Quiescence | StopReason::Halt),
        "{:?}: resumed run must finish normally, got {:?}",
        kind,
        out.reason
    );
    (faulted, snapshot(&ps), ps.take_output())
}

/// Exhaustive fault sweep: fail every action index of the program, on
/// every matcher, and require (a) exact rollback, (b) identical faulted
/// state across matchers, (c) bit-identical completion after retry.
fn sweep(build: fn(MatcherKind) -> ProductionSystem) {
    let reference = clean_run(build, MatcherKind::Rete);
    assert!(reference.actions > 0);
    for kind in KINDS {
        let this = clean_run(build, kind);
        assert_eq!(
            this.snapshot, reference.snapshot,
            "{:?}: clean runs disagree",
            kind
        );
        assert_eq!(
            this.output, reference.output,
            "{:?}: clean outputs disagree",
            kind
        );
    }
    for n in 0..reference.actions {
        let mut faulted_states = Vec::new();
        for kind in KINDS {
            let (faulted, final_state, output) = faulted_run(build, kind, FaultPlan::nth(n));
            assert_eq!(
                final_state, reference.snapshot,
                "{:?}: retry after rollback of action {} diverged",
                kind, n
            );
            assert_eq!(
                output, reference.output,
                "{:?}: output after rollback of action {} diverged",
                kind, n
            );
            faulted_states.push(faulted);
        }
        assert!(
            faulted_states.windows(2).all(|w| w[0] == w[1]),
            "matchers disagree on the rolled-back state at action {}",
            n
        );
    }
}

#[test]
fn fault_at_every_action_rolls_back_exactly_teams() {
    sweep(teams_engine);
}

#[test]
fn fault_at_every_action_rolls_back_exactly_payroll() {
    sweep(payroll_engine);
}

/// Rollback must also leave the Rete hash-join indexes consistent: after a
/// fault is rolled back (which re-inserts retracted WMEs under their
/// original time tags), re-probing the indexes must see exactly what a
/// rebuild from scratch would.
#[test]
fn rollback_leaves_match_indexes_consistent() {
    for build in [teams_engine, payroll_engine] {
        let actions = clean_run(build, MatcherKind::Rete).actions;
        for n in 0..actions {
            let mut ps = build(MatcherKind::Rete);
            ps.inject_fault(FaultPlan::nth(n));
            loop {
                match ps.step() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("fault at action {} never triggered", n),
                    Err(_) => break,
                }
            }
            ps.validate_matcher()
                .unwrap_or_else(|e| panic!("after rollback of action {}: {}", n, e));
            ps.take_fault();
            ps.run(None);
            ps.validate_matcher()
                .unwrap_or_else(|e| panic!("after completing past action {}: {}", n, e));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded variant of the sweep: a splitmix-derived action index per
    /// case, differential across all three matchers.
    #[test]
    fn seeded_fault_injection_is_transactional(seed in any::<u64>()) {
        let reference = clean_run(teams_engine, MatcherKind::Rete);
        let plan = FaultPlan::seeded(seed, reference.actions);
        let mut faulted_states = Vec::new();
        for kind in KINDS {
            let (faulted, final_state, output) = faulted_run(teams_engine, kind, plan);
            prop_assert_eq!(&final_state, &reference.snapshot);
            prop_assert_eq!(&output, &reference.output);
            faulted_states.push(faulted);
        }
        prop_assert!(faulted_states.windows(2).all(|w| w[0] == w[1]));
    }
}

#[test]
fn rollback_restores_output_and_halt_flag() {
    // Fault the very last action of the run: everything written by the
    // aborted firing must vanish from the output, and re-running must
    // reproduce it.
    let reference = clean_run(teams_engine, MatcherKind::Rete);
    let mut ps = teams_engine(MatcherKind::Rete);
    ps.inject_fault(FaultPlan::nth(reference.actions - 1));
    let out = ps.run(None);
    assert!(matches!(
        out.reason,
        StopReason::Error(CoreError::FaultInjected { .. })
    ));
    assert!(
        !ps.halted(),
        "halt flag must be rolled back with the firing"
    );
    assert_eq!(ps.stats().rolled_back, 1);
    ps.take_fault();
    let out = ps.run(None);
    assert!(matches!(
        out.reason,
        StopReason::Quiescence | StopReason::Halt
    ));
    assert_eq!(snapshot(&ps), reference.snapshot);
    assert_eq!(ps.take_output(), reference.output);
}

#[test]
fn partial_modify_failure_is_rolled_back() {
    // `modify` with an undeclared attribute fails *after* its retract
    // half; rollback must resurrect the retracted WME.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize item x)
         (p bad (item ^x <v>) --> (modify 1 ^bogus 2))",
    )
    .unwrap();
    ps.make_str("item", &[("x", Value::Int(1))]).unwrap();
    let before = snapshot(&ps);
    let out = ps.run(None);
    match out.reason {
        StopReason::Error(CoreError::Base(_)) => {}
        r => panic!("expected an attribute error, got {:?}", r),
    }
    assert_eq!(snapshot(&ps), before);
    assert_eq!(ps.wm().len(), 1);
}

#[test]
fn skip_firing_continues_past_the_error() {
    for kind in KINDS {
        let mut ps = teams_engine(kind);
        ps.set_recovery_policy(RecoveryPolicy::SkipFiring);
        ps.inject_fault(FaultPlan::nth(0));
        let out = ps.run(None);
        assert!(
            matches!(out.reason, StopReason::Quiescence | StopReason::Halt),
            "{:?}: SkipFiring must finish the run, got {:?}",
            kind,
            out.reason
        );
        assert_eq!(ps.stats().rolled_back, 1);
        assert!(out.fired > 0, "other instantiations still fire");
    }
}

#[test]
fn abort_run_stops_with_the_error_and_no_rollback() {
    let mut ps = teams_engine(MatcherKind::Rete);
    ps.set_recovery_policy(RecoveryPolicy::AbortRun);
    ps.inject_fault(FaultPlan::nth(2));
    let out = ps.run(None);
    assert!(matches!(
        out.reason,
        StopReason::Error(CoreError::FaultInjected { action: 2 })
    ));
    assert_eq!(ps.stats().rolled_back, 0);
}

#[test]
fn guards_stop_unbounded_wm_growth() {
    // `grow` fires on every seed WME and makes another: never quiesces.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize seed n)
         (p grow (seed ^n 0) --> (make seed ^n 0))",
    )
    .unwrap();
    ps.make_str("seed", &[("n", Value::Int(0))]).unwrap();
    ps.set_guards(RunGuards {
        max_wm: Some(40),
        ..Default::default()
    });
    let out = ps.run(None);
    match out.reason {
        StopReason::ResourceExhausted(GuardViolation::WmSize { limit: 40, actual }) => {
            assert!(actual > 40);
        }
        r => panic!("expected WmSize violation, got {:?}", r),
    }
}

#[test]
fn guards_stop_stagnant_modify_loop() {
    // `spin` modifies its own trigger forever: WM size never changes.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize counter n)
         (p spin (counter ^n <n>) --> (modify 1 ^n (<n> + 1)))",
    )
    .unwrap();
    ps.make_str("counter", &[("n", Value::Int(0))]).unwrap();
    ps.set_guards(RunGuards {
        max_stagnant_firings: Some(8),
        ..Default::default()
    });
    let out = ps.run(None);
    match out.reason {
        StopReason::ResourceExhausted(GuardViolation::Stagnation { firings, .. }) => {
            assert_eq!(firings, 8);
        }
        r => panic!("expected Stagnation violation, got {:?}", r),
    }
    assert_eq!(ps.wm().len(), 1);
}

#[test]
fn guards_enforce_wall_clock() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize counter n)
         (p spin (counter ^n <n>) --> (modify 1 ^n (<n> + 1)))",
    )
    .unwrap();
    ps.make_str("counter", &[("n", Value::Int(0))]).unwrap();
    ps.set_guards(RunGuards {
        max_wall: Some(Duration::ZERO),
        ..Default::default()
    });
    let out = ps.run(None);
    assert!(matches!(
        out.reason,
        StopReason::ResourceExhausted(GuardViolation::WallClock { .. })
    ));
}

#[test]
fn dead_tag_actions_bump_skip_counter_and_trace() {
    // The second `remove 1` targets a tag the first already retracted.
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize item x)
         (p r (item ^x 1) --> (remove 1) (remove 1))",
    )
    .unwrap();
    ps.set_tracing(true);
    ps.make_str("item", &[("x", Value::Int(1))]).unwrap();
    let out = ps.run(None);
    assert!(matches!(out.reason, StopReason::Quiescence));
    assert_eq!(ps.stats().skipped_actions, 1);
    assert_eq!(ps.stats().removes, 1);
    let trace = ps.take_trace();
    assert!(
        trace.iter().any(|l| l.starts_with("SKIP remove")),
        "missing SKIP trace line in {:?}",
        trace
    );
}
