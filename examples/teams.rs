//! The paper, live: walks through Figures 1, 2, 4 and 5 with the exact
//! working memory from the paper (players Jack, Janice, Sue, Jack, Sue on
//! teams A and B) and prints what each construct produces.
//!
//! ```sh
//! cargo run --example teams
//! ```

use sorete::core::{MatcherKind, ProductionSystem};
use sorete_base::Value;

const LITERALIZE: &str = "(literalize player name team)\n";

const FIGURE1_WM: &[(&str, &str)] = &[
    ("Jack", "A"),
    ("Janice", "A"),
    ("Sue", "B"),
    ("Jack", "B"),
    ("Sue", "B"),
];

fn engine_with(rule: &str) -> ProductionSystem {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(&format!("{}{}", LITERALIZE, rule))
        .expect("program loads");
    for (n, t) in FIGURE1_WM {
        ps.make_str(
            "player",
            &[("name", Value::sym(n)), ("team", Value::sym(t))],
        )
        .expect("make player");
    }
    ps
}

fn main() {
    println!("=== Figure 1: tuple-oriented `compete` — 6 instantiations ===");
    let mut ps = engine_with(
        "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)
           (write Player-A: <n1> Player-B: <n2>))",
    );
    println!("conflict set size: {}", ps.conflict_set_len());
    ps.run(None);
    for line in ps.take_output() {
        println!("  {}", line);
    }

    println!(
        "\n=== Figure 2 (top): all-set LHS — ONE instantiation holding the whole relation ==="
    );
    let mut ps = engine_with(
        "(p compete1 [player ^name <n1> ^team A] [player ^name <n2> ^team B]
           (write one instantiation with (count <n1>) x (count <n2>) distinct names)
           )",
    );
    println!("conflict set size: {}", ps.conflict_set_len());
    let item = &ps.conflict_items()[0];
    println!("rows in the SOI: {}", item.rows.len());
    ps.run(None);
    for line in ps.take_output() {
        println!("  {}", line);
    }

    println!("\n=== Figure 2 (bottom): mixed LHS — partitioned by the regular CE ===");
    let ps2 =
        engine_with("(p compete2 [player ^name <n1> ^team A] (player ^name <n2> ^team B) (halt))");
    println!(
        "conflict set size: {} (one SOI per team-B WME, each aggregating both A players)",
        ps2.conflict_set_len()
    );

    println!("\n=== Figure 4: GroupByTeam — nested foreach over set-oriented PVs ===");
    let mut ps = engine_with(
        "(p GroupByTeam [player ^team <t> ^name <n>]
           (foreach <t> (write team: <t>) (foreach <n> (write ... <n>))))",
    );
    ps.run(None);
    for line in ps.take_output() {
        println!("  {}", line);
    }
    println!("  (duplicate Sue printed once: foreach over a PV is value-based)");

    println!("\n=== Figure 5: SwitchTeams — equal-cardinality swap in one firing ===");
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(&format!(
        "{}{}",
        LITERALIZE,
        "(p SwitchTeams
           { [player ^team A] <ATeam> }
           { [player ^team B] <BTeam> }
           :test ((count <ATeam>) == (count <BTeam>))
           (write swapping (count <ATeam>) vs (count <BTeam>))
           (set-modify <ATeam> ^team B)
           (set-modify <BTeam> ^team A)
           (halt))"
    ))
    .unwrap();
    for (n, t) in [("Jack", "A"), ("Janice", "A"), ("Sue", "B"), ("Mike", "B")] {
        ps.make_str(
            "player",
            &[("name", Value::sym(n)), ("team", Value::sym(t))],
        )
        .unwrap();
    }
    ps.run(Some(5));
    for line in ps.take_output() {
        println!("  {}", line);
    }
    for wme in ps.wm().dump() {
        println!("  {}", wme);
    }

    println!(
        "\n=== Figure 5: RemoveDups — deduplicate working memory in one firing per dup-group ==="
    );
    let mut ps = engine_with(
        "(p RemoveDups
           { [player ^name <n> ^team <t>] <P> }
           :scalar (<n> <t>)
           :test ((count <P>) > 1)
           (write removing duplicates of <n> on team <t>)
           (bind <First> true)
           (foreach <P> descending
             (if (<First> == true) (bind <First> false) else (remove <P>))))",
    );
    let outcome = ps.run(Some(20));
    println!("firings: {}", outcome.fired);
    for line in ps.take_output() {
        println!("  {}", line);
    }
    for wme in ps.wm().dump() {
        println!("  {}", wme);
    }
}
