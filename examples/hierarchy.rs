//! Hierarchical information processing (paper §7.1): a parts explosion.
//!
//! The paper argues that traversing a hierarchy in plain OPS5 "requires
//! several rules and extra state … as the structure is traversed", while
//! set-oriented constructs match all WMEs in one instantiation and
//! decompose hierarchically via `foreach`. It also notes transitive
//! closure "has not yet been investigated" — here we show both: a
//! one-firing hierarchical report with nested `foreach`, and transitive
//! closure computed by an (ordinary, but set-aware) derivation rule.
//!
//! ```sh
//! cargo run --example hierarchy
//! ```

use sorete::core::{MatcherKind, ProductionSystem};
use sorete_base::Value;

fn main() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize part parent child qty)
         (literalize reach from to)

         ; Transitive closure: derive reach edges until fixpoint.
         ; The negated CE keeps the rule from re-deriving known pairs, so
         ; the computation terminates at quiescence.
         (p reach-base (part ^parent <p> ^child <c>) -(reach ^from <p> ^to <c>)
           -->
           (make reach ^from <p> ^to <c>))
         (p reach-step (reach ^from <a> ^to <b>) (part ^parent <b> ^child <c>)
           -(reach ^from <a> ^to <c>)
           -->
           (make reach ^from <a> ^to <c>))

         ; One firing prints the whole two-level explosion, grouped.
         (p explode (probe ^root <r>)
           [part ^parent <r> ^child <sub> ^qty <q>]
           -->
           (remove 1)
           (write bill-of-materials for <r>)
           (foreach <sub> ascending (write ... <sub> x <q>)))

         ; Aggregate over the derived closure: how many parts does the
         ; root transitively contain?
         (p closure-size (probe2 ^root <r>)
           { [reach ^from <r> ^to <t>] <R> }
           -->
           (remove 1)
           (write <r> transitively contains (count <R>) parts))",
    )
    .expect("program loads");

    // A small assembly: car → {engine, chassis}; engine → {piston, valve};
    // chassis → {wheel}.
    let edges: &[(&str, &str, i64)] = &[
        ("car", "engine", 1),
        ("car", "chassis", 1),
        ("engine", "piston", 4),
        ("engine", "valve", 8),
        ("chassis", "wheel", 4),
    ];
    for (p, c, q) in edges {
        ps.make_str(
            "part",
            &[
                ("parent", Value::sym(p)),
                ("child", Value::sym(c)),
                ("qty", Value::Int(*q)),
            ],
        )
        .unwrap();
    }

    // Phase 1: closure to fixpoint.
    let closure = ps.run(Some(200));
    println!("; closure derived in {} firings", closure.fired);

    // Phase 2: hierarchical report (one firing).
    ps.make_str("probe", &[("root", Value::sym("engine"))])
        .unwrap();
    ps.run(Some(10));

    // Phase 3: aggregate over the closure (one firing).
    ps.make_str("probe2", &[("root", Value::sym("car"))])
        .unwrap();
    ps.run(Some(10));

    for line in ps.take_output() {
        println!("{}", line);
    }
    let stats = ps.stats();
    println!(
        "; {} total firings, {} makes — the closure is {} reach WMEs",
        stats.firings,
        stats.makes,
        ps.wm()
            .iter()
            .filter(|w| w.class.as_str() == "reach")
            .count()
    );
}
