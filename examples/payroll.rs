//! Domain scenario: payroll auditing with LHS aggregates.
//!
//! Second-order conditions ("departments whose average salary exceeds
//! budget", "departments with more than N employees") are exactly what
//! §4.2 adds to the language — without them an OPS5 program must maintain
//! counter WMEs by hand.
//!
//! ```sh
//! cargo run --example payroll
//! ```

use sorete::core::{MatcherKind, ProductionSystem, StopReason};
use sorete_base::Value;

fn main() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize dept id budget)
         (literalize emp name dept salary)
         (literalize finding dept kind amount)

         ; Aggregate test: average salary over budget.
         (p over-budget
           (dept ^id <d> ^budget <b>)
           [emp ^dept <d> ^salary <s>]
           :test ((avg <s>) > <b>)
           -->
           (make finding ^dept <d> ^kind avg-over-budget ^amount (avg <s>)))

         ; Aggregate test: headcount cap.
         (p too-many-heads
           (dept ^id <d>)
           { [emp ^dept <d>] <Staff> }
           :test ((count <Staff>) > 3)
           -->
           (make finding ^dept <d> ^kind overstaffed ^amount (count <Staff>)))

         ; Min/max spread report, grouped per department by :scalar.
         (p salary-spread
           { [emp ^dept <d> ^salary <s>] <E> }
           :scalar (<d>)
           :test ((count <E>) > 1 and ((max <s>) - (min <s>)) > 50000)
           -->
           (make finding ^dept <d> ^kind wide-spread ^amount ((max <s>) - (min <s>))))",
    )
    .expect("program loads");

    for (id, budget) in [(10, 95_000), (20, 70_000)] {
        ps.make_str(
            "dept",
            &[("id", Value::Int(id)), ("budget", Value::Int(budget))],
        )
        .unwrap();
    }
    let emps: &[(&str, i64, i64)] = &[
        ("ann", 10, 120_000),
        ("bob", 10, 95_000),
        ("cat", 10, 60_000),
        ("dan", 10, 115_000),
        ("eve", 20, 65_000),
        ("fox", 20, 72_000),
    ];
    for (name, dept, sal) in emps {
        ps.make_str(
            "emp",
            &[
                ("name", Value::sym(name)),
                ("dept", Value::Int(*dept)),
                ("salary", Value::Int(*sal)),
            ],
        )
        .unwrap();
    }

    let outcome = ps.run(Some(100));
    if let StopReason::Error(e) = &outcome.reason {
        eprintln!("run failed after {} firings: {}", outcome.fired, e);
    }
    println!("fired {} rules ({:?})", outcome.fired, outcome.reason);
    println!("\nfindings:");
    for wme in ps.wm().dump() {
        if wme.class.as_str() == "finding" {
            println!("  {}", wme);
        }
    }
    let stats = ps.stats();
    println!(
        "\n{} firings, {} makes; incremental aggregate updates: {}",
        stats.firings,
        stats.makes,
        ps.match_stats().aggregate_updates
    );
}
