//! Quickstart: load a program with both regular and set-oriented rules,
//! assert facts, run to quiescence, inspect output and statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sorete::core::{MatcherKind, ProductionSystem, StopReason};
use sorete_base::Value;

fn main() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(
        "(literalize order id qty status)
         (literalize alert text)

         ; Regular (tuple-oriented) rule: one firing per matching order.
         (p flag-big-order
           (order ^id <id> ^qty > 100 ^status open)
           -->
           (make alert ^text <id>)
           (modify 1 ^status flagged))

         ; Set-oriented rule: a single firing closes *all* flagged orders
         ; once there are at least three of them.
         (p close-flagged
           { [order ^status flagged] <Flagged> }
           :test ((count <Flagged>) >= 3)
           -->
           (write closing (count <Flagged>) orders)
           (set-modify <Flagged> ^status closed))",
    )
    .expect("program loads");

    for (id, qty) in [(1, 250), (2, 50), (3, 180), (4, 920), (5, 75)] {
        ps.make_str(
            "order",
            &[
                ("id", Value::Int(id)),
                ("qty", Value::Int(qty)),
                ("status", Value::sym("open")),
            ],
        )
        .expect("make order");
    }

    let outcome = ps.run(Some(100));
    if let StopReason::Error(e) = &outcome.reason {
        eprintln!("run failed after {} firings: {}", outcome.fired, e);
    }
    println!("fired {} rules ({:?})", outcome.fired, outcome.reason);
    for line in ps.take_output() {
        println!("write> {}", line);
    }

    println!("\nfinal working memory:");
    for wme in ps.wm().dump() {
        println!("  {}", wme);
    }

    let stats = ps.stats();
    println!(
        "\nstats: firings={} actions={} (avg {:.1} actions/firing) makes={} modifies={}",
        stats.firings,
        stats.actions,
        stats.actions_per_firing(),
        stats.makes,
        stats.modifies,
    );
    println!("match: {}", ps.match_stats());
}
