//! Warehouse order allocation — the database-programming use case the
//! paper's introduction motivates: "operations on entire relations can now
//! be clearly specified".
//!
//! An order has many line items. The set-oriented `allocate` rule matches
//! *all* line items of an order at once, checks the order's total quantity
//! against available stock with a `sum` aggregate, and allocates every
//! line in one firing — no marking scheme, no per-line control rules.
//!
//! ```sh
//! cargo run --example warehouse
//! ```

use sorete::core::{MatcherKind, ProductionSystem, StopReason};
use sorete_base::{Symbol, Value};

const PROGRAM: &str = "(literalize order id status)
    (literalize line order sku qty status)
    (literalize stock sku on-hand)
    (literalize shipment order lines units)

    ; Allocate a whole order in one firing when *every* line fits stock
    ; for its SKU... simplified to a single-SKU check per order here:
    ; all lines of the order are aggregated; the total must fit the
    ; smallest stock of any referenced SKU is modelled by per-SKU rules
    ; below. First: flag orders whose line total exceeds global capacity.
    (p allocate-order
      { (order ^id <o> ^status open) <O> }
      { [line ^order <o> ^qty <q>] <Lines> }
      :test ((sum <q>) <= 100)
      -->
      (write allocating order <o> with (count <Lines>) lines totalling (sum <q>) units)
      (set-modify <Lines> ^status allocated)
      (modify <O> ^status allocated)
      (make shipment ^order <o> ^lines (count <Lines>) ^units (sum <q>)))

    ; Orders too large to allocate at once are rejected in one firing too.
    (p reject-order
      { (order ^id <o> ^status open) <O> }
      { [line ^order <o> ^qty <q>] <Lines> }
      :test ((sum <q>) > 100)
      -->
      (write rejecting order <o> .. (sum <q>) units exceed capacity)
      (set-modify <Lines> ^status rejected)
      (modify <O> ^status rejected))

    ; Stock decrement per allocated SKU group (value-partitioned by :scalar).
    (p decrement-stock
      (stock ^sku <s> ^on-hand <h>)
      { [line ^sku <s> ^status allocated ^qty <q>] <L> }
      -->
      (modify 1 ^on-hand (<h> - (sum <q>)))
      (set-modify <L> ^status shipped))";

fn main() {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROGRAM).expect("program loads");

    for (sku, on_hand) in [("widget", 500), ("gadget", 300)] {
        ps.make_str(
            "stock",
            &[("sku", Value::sym(sku)), ("on-hand", Value::Int(on_hand))],
        )
        .unwrap();
    }
    // Order 1: 3 small lines (fits). Order 2: one huge line (rejected).
    ps.make_str(
        "order",
        &[("id", Value::Int(1)), ("status", Value::sym("open"))],
    )
    .unwrap();
    for (sku, qty) in [("widget", 30), ("widget", 20), ("gadget", 25)] {
        ps.make_str(
            "line",
            &[
                ("order", Value::Int(1)),
                ("sku", Value::sym(sku)),
                ("qty", Value::Int(qty)),
                ("status", Value::sym("new")),
            ],
        )
        .unwrap();
    }
    ps.make_str(
        "order",
        &[("id", Value::Int(2)), ("status", Value::sym("open"))],
    )
    .unwrap();
    ps.make_str(
        "line",
        &[
            ("order", Value::Int(2)),
            ("sku", Value::sym("widget")),
            ("qty", Value::Int(400)),
            ("status", Value::sym("new")),
        ],
    )
    .unwrap();

    let outcome = ps.run(Some(50));
    if let StopReason::Error(e) = &outcome.reason {
        eprintln!("run failed after {} firings: {}", outcome.fired, e);
    }
    for line in ps.take_output() {
        println!("{}", line);
    }
    println!("; {} firings ({:?})", outcome.fired, outcome.reason);
    for w in ps.wm().dump() {
        if matches!(w.class.as_str(), "stock" | "shipment" | "order") {
            println!("; {}", w);
        }
    }
    let widget = ps
        .wm()
        .iter()
        .find(|w| w.class.as_str() == "stock" && w.get(Symbol::new("sku")) == Value::sym("widget"))
        .unwrap();
    assert_eq!(
        widget.get(Symbol::new("on-hand")),
        Value::Int(450),
        "500 - 50 allocated widgets"
    );
}
