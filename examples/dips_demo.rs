//! The database half of the paper (§8): DIPS COND tables, the Figure 6
//! SOI retrieval, and the parallel-firing conflict experiment.
//!
//! ```sh
//! cargo run --example dips_demo
//! ```

use sorete::dips::{figure6, parallel_cycle, DipsEngine, DipsMode};
use sorete_base::Value;

fn main() {
    println!("=== Figure 6: set-oriented DIPS ===\n");
    let fig = figure6().expect("figure 6 builds");
    println!("COND-E:\n{}", fig.cond_e);
    println!("COND-W:\n{}", fig.cond_w);
    println!("Query to retrieve SOIs:\n  {}\n", fig.query);
    println!("Relation containing SOIs:\n{}", fig.soi_relation.render());
    for soi in &fig.groups {
        println!(
            "SOI key {:?}: rows {:?}",
            soi.key,
            soi.rows
                .iter()
                .map(|r| r.iter().map(|t| t.raw()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
    }

    println!("\n=== §8.1 pathology: concurrent tuple-oriented firings conflict ===\n");
    let prog_tuple = "(p drain (flag ^on t) (item ^s pending)
                        (modify 1 ^on t) (remove 2))";
    let mut tuple = DipsEngine::new(DipsMode::Tuple, prog_tuple).unwrap();
    tuple.insert("flag", &[("on", Value::sym("t"))]).unwrap();
    for _ in 0..8 {
        tuple
            .insert("item", &[("s", Value::sym("pending"))])
            .unwrap();
    }
    let mut cycles = 0;
    loop {
        let r = parallel_cycle(&mut tuple).unwrap();
        if r.attempted == 0 {
            break;
        }
        cycles += 1;
        println!(
            "tuple cycle {}: attempted={} committed={} aborted={}",
            cycles, r.attempted, r.committed, r.aborted
        );
        if cycles > 20 {
            break;
        }
    }
    println!(
        "tuple-oriented DIPS: {} commits, {} aborts overall\n",
        tuple.db.commit_count(),
        tuple.db.abort_count()
    );

    println!("=== §8.2 fix: one set-oriented firing, no conflicts ===\n");
    let prog_set = "(p drain (flag ^on t) { [item ^s pending] <P> }
                      (modify 1 ^on t) (set-remove <P>))";
    let mut set = DipsEngine::new(DipsMode::Set, prog_set).unwrap();
    set.insert("flag", &[("on", Value::sym("t"))]).unwrap();
    for _ in 0..8 {
        set.insert("item", &[("s", Value::sym("pending"))]).unwrap();
    }
    let r = parallel_cycle(&mut set).unwrap();
    println!(
        "set cycle 1: attempted={} committed={} aborted={}",
        r.attempted, r.committed, r.aborted
    );
    println!(
        "set-oriented DIPS: {} commits, {} aborts overall",
        set.db.commit_count(),
        set.db.abort_count()
    );
}
