//! Run the same program on all three match algorithms (Rete + S-nodes,
//! TREAT + S-nodes, naive oracle) and compare their work counters —
//! demonstrating that the matchers are interchangeable behind one trait
//! and that the S-node extension is matcher-agnostic (§5).
//!
//! ```sh
//! cargo run --example matchers
//! ```

use sorete::core::{MatcherKind, ProductionSystem, StopReason};
use sorete_base::Value;

const PROGRAM: &str = "(literalize task id dur state)
    (literalize summary n total)

    (p start (task ^id <i> ^state queued)
      (modify 1 ^state running))

    (p summarize (probe ^at t) { [task ^dur <d> ^state running] <T> }
      :test ((count <T>) > 0)
      (remove 1)
      (make summary ^n (count <T>) ^total (sum <d>)))";

fn run(kind: MatcherKind) {
    let mut ps = ProductionSystem::new(kind);
    ps.load_program(PROGRAM).expect("program loads");
    for i in 0..30i64 {
        ps.make_str(
            "task",
            &[
                ("id", Value::Int(i)),
                ("dur", Value::Int(10 + i)),
                ("state", Value::sym("queued")),
            ],
        )
        .unwrap();
    }
    // Start every task first, then probe for the summary.
    let started = ps.run(Some(100));
    ps.make_str("probe", &[("at", Value::sym("t"))]).unwrap();
    let outcome = ps.run(Some(200));
    let outcome = sorete::core::RunOutcome {
        fired: outcome.fired + started.fired,
        ..outcome
    };
    let summary = ps
        .wm()
        .dump()
        .into_iter()
        .find(|w| w.class.as_str() == "summary")
        .map(|w| format!("{}", w))
        .unwrap_or_else(|| "<none>".into());
    if let StopReason::Error(e) = &outcome.reason {
        eprintln!("run failed after {} firings: {}", outcome.fired, e);
    }
    println!("--- {} ---", ps.matcher_name());
    println!("  fired: {} ({:?})", outcome.fired, outcome.reason);
    println!("  summary wme: {}", summary);
    println!("  match work: {}", ps.match_stats());
}

fn main() {
    for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::Naive] {
        run(kind);
    }
    println!("\nAll three produce the same summary; the counters show the cost differences.");
}
