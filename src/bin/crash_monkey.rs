//! Process-level crash monkey: SIGKILL a WAL'd engine mid-run, resume it,
//! and demand the recovered run end byte-identical to one that never died.
//!
//! Three modes in one binary:
//!
//! - **Child** (`crash_monkey --child <wal> <cycles>`): attaches the WAL
//!   (recovering whatever a previous incarnation committed), seeds the
//!   counter workload if working memory is empty, then single-steps to
//!   quiescence with `group_commit = 1`, printing `cycle <n>` after every
//!   committed firing so the driver can watch real durable progress. On
//!   quiescence it writes the canonical checkpoint render to
//!   `<wal>.state` and exits 0.
//!
//! - **Driver** (`crash_monkey <workdir> <seed> [kills]`): first runs the
//!   same workload in-process, uninterrupted, as the oracle. Then it
//!   spawns child processes against a second WAL and `SIGKILL`s each one
//!   at a seeded pseudo-random cycle — a *real* process death, not a
//!   simulated I/O error: no destructors, no flushes, whatever the WAL
//!   tail looks like is what recovery gets. After the configured number
//!   of kills it lets the final child run to completion and asserts the
//!   monkey state file equals the oracle state file byte for byte.
//!
//! - **Bundle** (`crash_monkey --bundle <workdir>`): drives a rule panic
//!   through an unsupervised engine, asserts the abnormal exit left a
//!   valid crash bundle in `<workdir>`, re-loads it through the bundle
//!   parser (the same code `sorete debug` runs on), and writes the bundle
//!   path to `<workdir>/bundle-path` so a CI step can point `sorete
//!   debug` at it.
//!
//! Exit codes: 0 on success, 1 on divergence or a child that failed for
//! any reason other than being killed, 2 on usage errors.

use sorete::core::{MatcherKind, ProductionSystem};
use sorete::reldb::WalOptions;
use sorete_base::{Symbol, Value};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// The workload: a counter climbing to `cycles` by one `modify` per
/// firing. Every firing is one commit point (group commit 1), so a kill
/// can land between any two cycles.
const PROG: &str = "
    (literalize counter n)
    (literalize lim max)
    (p bump
      (counter ^n <x>)
      (lim ^max > <x>)
      -->
      (modify 1 ^n (compute <x> + 1)))
";

fn build(wal: &Path, cycles: i64) -> (ProductionSystem, u64) {
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROG).expect("workload parses");
    let report = ps
        .attach_wal(wal, WalOptions { group_commit: 1 })
        .expect("wal attaches");
    // Seed only what recovery did not restore: a resumed child must not
    // double-assert (the asserts themselves are WAL-committed).
    let have =
        |ps: &ProductionSystem, class: &str| ps.wm().iter().any(|w| w.class == Symbol::new(class));
    if !have(&ps, "counter") {
        ps.assert_wme(
            Symbol::new("counter"),
            vec![(Symbol::new("n"), Value::Int(0))],
        )
        .expect("seed counter");
    }
    if !have(&ps, "lim") {
        ps.assert_wme(
            Symbol::new("lim"),
            vec![(Symbol::new("max"), Value::Int(cycles))],
        )
        .expect("seed limit");
    }
    (ps, report.replayed_cycles)
}

/// Run the workload to quiescence and write the canonical final state
/// next to the WAL. When `progress` is set (the spawned child), emit
/// `cycle <n>` per committed firing so the driver can aim its kills.
fn child(wal: &Path, cycles: i64, progress: bool) -> Result<(), String> {
    let (mut ps, _) = build(wal, cycles);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if progress {
        let _ = writeln!(out, "start cycle={}", ps.cycle());
        let _ = out.flush();
    }
    loop {
        match ps.step() {
            Ok(Some(_)) => {
                if progress {
                    let _ = writeln!(out, "cycle {}", ps.cycle());
                    let _ = out.flush();
                }
            }
            Ok(None) => break,
            Err(e) => return Err(format!("child step failed: {}", e)),
        }
    }
    let state = ps.checkpoint_string();
    let path = state_path(wal);
    std::fs::write(&path, state).map_err(|e| format!("{}: {}", path.display(), e))?;
    if progress {
        let _ = writeln!(out, "done cycle={}", ps.cycle());
    }
    Ok(())
}

fn state_path(wal: &Path) -> PathBuf {
    let mut p = wal.as_os_str().to_owned();
    p.push(".state");
    PathBuf::from(p)
}

/// Same splitmix64 the supervisor uses for retry jitter: deterministic
/// kill points from the seed alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn driver(workdir: &Path, seed: u64, kills: u32, cycles: i64) -> Result<(), String> {
    std::fs::create_dir_all(workdir).map_err(|e| format!("{}: {}", workdir.display(), e))?;
    let oracle_wal = workdir.join(format!("oracle-{}.wal", seed));
    let monkey_wal = workdir.join(format!("monkey-{}.wal", seed));
    for p in [&oracle_wal, &monkey_wal] {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(state_path(p));
    }

    // Oracle: the uninterrupted run, in-process.
    child(&oracle_wal, cycles, false)?;
    let oracle_state =
        std::fs::read(state_path(&oracle_wal)).map_err(|e| format!("oracle state: {}", e))?;

    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut killed = 0u32;
    let mut round = 0u64;
    loop {
        round += 1;
        let mut cmd = Command::new(&exe);
        cmd.arg("--child")
            .arg(&monkey_wal)
            .arg(cycles.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut proc = cmd.spawn().map_err(|e| format!("spawn child: {}", e))?;
        let reader = BufReader::new(proc.stdout.take().expect("child stdout piped"));

        // Pick the kill point relative to where this incarnation resumed:
        // a bounded random stride forward, so kills land all over the run.
        let mut target: Option<u64> = None;
        let mut want_kill = killed < kills;
        for line in reader.lines() {
            let line = line.map_err(|e| format!("read child: {}", e))?;
            let cycle = line
                .rsplit(['=', ' '])
                .next()
                .and_then(|n| n.parse::<u64>().ok());
            let Some(cycle) = cycle else { continue };
            if line.starts_with("start ") {
                let stride = 1 + splitmix64(seed ^ (round << 32) ^ killed as u64) % 37;
                target = Some(cycle + stride);
                continue;
            }
            if want_kill && target.is_some_and(|t| cycle >= t) {
                proc.kill().map_err(|e| format!("kill child: {}", e))?;
                killed += 1;
                want_kill = false;
                eprintln!(
                    "crash-monkey: seed={} kill #{} at cycle {}",
                    seed, killed, cycle
                );
                // Keep draining: the pipe may hold lines printed pre-kill.
            }
        }
        let status = proc.wait().map_err(|e| format!("wait child: {}", e))?;
        if status.success() {
            if want_kill || killed < kills {
                eprintln!(
                    "crash-monkey: seed={} run finished before kill #{} landed",
                    seed,
                    killed + 1
                );
            }
            break;
        }
        if want_kill {
            // The child died without us killing it: a real failure.
            return Err(format!("child died unprompted: {}", status));
        }
    }

    let monkey_state =
        std::fs::read(state_path(&monkey_wal)).map_err(|e| format!("monkey state: {}", e))?;
    if monkey_state != oracle_state {
        return Err(format!(
            "seed {}: recovered state diverges from oracle ({} vs {} bytes) — see {} / {}",
            seed,
            monkey_state.len(),
            oracle_state.len(),
            state_path(&monkey_wal).display(),
            state_path(&oracle_wal).display()
        ));
    }
    println!(
        "crash-monkey: seed={} kills={} cycles={} ok (state identical, {} bytes)",
        seed,
        killed,
        cycles,
        oracle_state.len()
    );
    Ok(())
}

/// `--bundle <workdir>`: panic a run on purpose, then hold the resulting
/// crash bundle to the same bar `sorete debug` and `sorete fsck` apply.
fn bundle_leg(workdir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(workdir).map_err(|e| format!("{}: {}", workdir.display(), e))?;
    let mut ps = ProductionSystem::new(MatcherKind::Rete);
    ps.load_program(PROG).expect("workload parses");
    ps.set_crash_dir(workdir);
    ps.set_invocation(std::env::args().collect());
    ps.assert_wme(
        Symbol::new("counter"),
        vec![(Symbol::new("n"), Value::Int(0))],
    )
    .expect("seed counter");
    ps.assert_wme(
        Symbol::new("lim"),
        vec![(Symbol::new("max"), Value::Int(50))],
    )
    .expect("seed limit");
    // An unsupervised panic mid-run: the flight recorder's rings are the
    // only record of what led up to it.
    ps.inject_fault(sorete::core::FaultPlan::nth(7).panicking());
    let outcome = ps.run(Some(100));
    if !outcome.reason.is_abnormal() {
        return Err(format!(
            "expected an abnormal stop, got {:?}",
            outcome.reason
        ));
    }
    let bundle_dir = ps
        .last_crash_bundle()
        .ok_or("abnormal exit wrote no crash bundle")?
        .to_path_buf();
    // Load it back through the same parser `sorete debug` uses, and run
    // the full fsck validation pass on top.
    let bundle = sorete::core::CrashBundle::load(&bundle_dir)
        .map_err(|e| format!("{}: {}", bundle_dir.display(), e))?;
    if bundle.cycles.is_empty() || bundle.events.is_empty() {
        return Err(format!(
            "{}: bundle recorded {} cycle(s) and {} event(s) — black box is empty",
            bundle_dir.display(),
            bundle.cycles.len(),
            bundle.events.len()
        ));
    }
    let summary = ProductionSystem::fsck_bundle(&bundle_dir)
        .map_err(|e| format!("fsck {}: {}", bundle_dir.display(), e))?;
    bundle
        .explain("bump")
        .map_err(|e| format!("bundle explain: {}", e))?;
    let path_file = workdir.join("bundle-path");
    std::fs::write(&path_file, format!("{}\n", bundle_dir.display()))
        .map_err(|e| format!("{}: {}", path_file.display(), e))?;
    println!("crash-monkey: {}", summary);
    println!("crash-monkey: bundle ok: {}", bundle_dir.display());
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--child") => match &args[1..] {
            [wal, cycles] => match cycles.parse::<i64>() {
                Ok(n) => child(Path::new(wal), n, true),
                Err(_) => Err(format!("bad cycle count {}", cycles)),
            },
            _ => {
                eprintln!("usage: crash_monkey --child <wal> <cycles>");
                return std::process::ExitCode::from(2);
            }
        },
        Some("--bundle") => match &args[1..] {
            [dir] => bundle_leg(Path::new(dir)),
            _ => {
                eprintln!("usage: crash_monkey --bundle <workdir>");
                return std::process::ExitCode::from(2);
            }
        },
        Some(dir) => {
            let seed = args.get(1).and_then(|s| s.parse().ok());
            let kills = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
            let cycles = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200);
            match seed {
                Some(seed) => driver(Path::new(dir), seed, kills, cycles),
                None => {
                    eprintln!("usage: crash_monkey <workdir> <seed> [kills] [cycles]");
                    return std::process::ExitCode::from(2);
                }
            }
        }
        None => {
            eprintln!("usage: crash_monkey <workdir> <seed> [kills] [cycles] | crash_monkey --child <wal> <cycles> | crash_monkey --bundle <workdir>");
            return std::process::ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crash-monkey: {}", msg);
            std::process::ExitCode::FAILURE
        }
    }
}
