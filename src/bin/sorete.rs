//! `sorete` — command-line interpreter for set-oriented production
//! systems.
//!
//! ```text
//! sorete [OPTIONS] <program.ops>...
//! sorete serve [server options]       run the sorete-server daemon
//! sorete fsck <wal-or-bundle> [checkpoint]
//! sorete debug <bundle> [timeline|rules|perfetto <out>|explain <rule>|why-not <rule>]
//!
//! OPTIONS:
//!   --matcher rete|rete-scan|treat|naive   match algorithm (default: rete)
//!   --strategy lex|mea           conflict resolution (default: lex)
//!   --wm <facts.wm>              assert facts from a file before running
//!   --limit <N>                  stop after N firings
//!   --trace                      print rule firings
//!   --trace-json <file>          stream trace events to a JSONL file
//!   --trace-perfetto <file>      write execution spans as Chrome
//!                                trace-event JSON (loads in Perfetto /
//!                                chrome://tracing; one track per lane)
//!   --span-stats                 per-category span summary (p50/p95/max)
//!                                and shard-imbalance ratio at the end
//!   --metrics-json <file>        stream per-cycle metric snapshots (JSONL)
//!   --metrics-prom <file>        Prometheus text exposition at the end
//!   --watch <N>                  re-render a live metrics table every N cycles
//!   --profile                    per-node match profile at the end
//!   --explain <rule>             explain the rule's conflict-set entries
//!   --stats                      print run + match statistics at the end
//!   --dot <file>                 write the Rete network as Graphviz DOT
//!                                (heat-annotated under --profile)
//!   --wal <file>                 write-ahead log; recovers committed state
//!                                from an existing log before running
//!   --group-commit <N>           fsync the WAL every N commits (default: 1)
//!   --resume <ckpt>              restore a checkpoint before attaching the WAL
//!   --checkpoint <file>          checkpoint destination (default: <wal>.ckpt)
//!   --checkpoint-every <N>       checkpoint (and rotate the WAL) every N firings
//!   --supervise                  panic isolation + retry/backoff + quarantine
//!   --recovery abort|skip|rollback  failed-firing policy (default: abort)
//!   --quarantine-after <N>       breaker: failures before quarantine (default 3)
//!   --quarantine-window <N>      breaker window in cycles (default 20)
//!   --io-retries <N>             transient durable-I/O retry attempts (default 4)
//!   --soft-mem <BYTES>           soft memory budget: checkpoint + warn
//!   --hard-mem <BYTES>           hard memory budget: orderly halt-with-checkpoint
//!   --soft-wall-ms <N>           soft wall-clock budget (milliseconds)
//!   --jobs <N>                   match on N worker threads over the
//!                                rule-partitioned parallel backend
//!                                (0 = all hardware threads; also
//!                                settable via SORETE_JOBS)
//!   --shards <N>                 match-network partition count for the
//!                                parallel backend (default: 8; exported
//!                                as the sorete_shards gauge)
//!   --flight-recorder <N|off>    flight-recorder ring capacity (default:
//!                                4096 entries per ring, always on;
//!                                `off` disables the black box)
//!   --crash-dir <dir>            where crash bundles land (default: the
//!                                WAL's directory, else the cwd)
//!   --crash-keep <N>             keep only the newest N crash bundles in
//!                                the crash dir, pruned oldest-first at
//!                                bundle-write time (default: 8; also
//!                                settable via SORETE_CRASH_KEEP; 0 keeps
//!                                everything)
//!   --repl                       interactive session after loading
//! ```
//!
//! The flight recorder is an always-on black box: fixed-capacity rings of
//! logical trace events, closed spans, and per-cycle records. Any abnormal
//! exit (panic, quarantine stall, resource exhaustion, run error) drains
//! the rings into a `sorete-crash-<gen>-<cycle>/` bundle directory that
//! `sorete debug` inspects offline and `sorete fsck` validates.
//!
//! `sorete fsck <wal> [checkpoint]` validates a log offline — CRC framing,
//! commit points, generation pairing against the checkpoint — read-only,
//! with one `fsck:` diagnostic line per finding. Pointed at a crash-bundle
//! directory instead, it validates the bundle.
//!
//! Exit codes: `0` success · `2` usage/parse errors · `3` run errors
//! (RHS failures, caught panics) · `4` resource exhausted (guards or hard
//! degradation budgets) · `5` durability errors (WAL, checkpoint, fsck
//! failures) · `6` quarantine-exhausted (only quarantined work remained) ·
//! `7` interrupted (SIGTERM/SIGINT graceful shutdown: the run stopped at a
//! firing boundary and checkpointed where configured — orchestrators can
//! tell "asked to stop, stopped cleanly" from failure).
//!
//! A facts file holds one WME per s-expression: `(player ^name Jack ^team A)`.
//! The REPL accepts `run [n]`, `step`, `make (class ^a v …)`, `remove <tag>`,
//! `excise <rule>`, `explain <rule>`, `why-not <rule>`, `profile`, `wm`,
//! `dump [file]`, `dump bundle [dir]`, `cs`, `stats`, `metrics`, `spans`,
//! `watch [n]`, `checkpoint [file]`, `recover <ckpt>`, `quarantine <rule>`,
//! `readmit <rule>`, `help`, `quit`.

use sorete::core::{
    BreakerPolicy, DegradationPolicy, MatcherKind, ProductionSystem, RetryPolicy, Strategy,
    SupervisorConfig,
};
use sorete::reldb::WalOptions;
use sorete_base::{JsonlSink, NetProfile, SnapshotWriter, Symbol, Value};
use sorete_lang::token::{tokenize, TokKind};
use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// Exit code 0 is success (`ExitCode::SUCCESS`); the named codes below are
// the failure tiers, documented in the module header and asserted by
// `tests/cli.rs`.
/// Usage errors and parse failures (arguments, programs, fact files).
const EXIT_USAGE: u8 = 2;
/// The run stopped on an error (RHS failure, caught panic).
const EXIT_RUN: u8 = 3;
/// A resource guard or hard degradation budget ended the run.
const EXIT_RESOURCE: u8 = 4;
/// Durability failure: WAL attach/append, poisoned log, checkpoint I/O,
/// or an fsck that found the log/checkpoint pair unusable.
const EXIT_DURABILITY: u8 = 5;
/// The run stalled with every remaining fireable instantiation behind
/// quarantined rules.
const EXIT_QUARANTINE: u8 = 6;
/// SIGTERM/SIGINT graceful shutdown: the run stopped at a firing boundary
/// (and checkpointed where configured) because the operator asked it to.
const EXIT_INTERRUPTED: u8 = 7;

/// A CLI failure: the process exit code plus the message for stderr.
type Failure = (u8, String);

#[derive(Debug)]
struct Options {
    matcher: MatcherKind,
    strategy: Strategy,
    wm_files: Vec<String>,
    programs: Vec<String>,
    limit: Option<u64>,
    trace: bool,
    trace_json: Option<String>,
    trace_perfetto: Option<String>,
    span_stats: bool,
    metrics_json: Option<String>,
    metrics_prom: Option<String>,
    watch: Option<u64>,
    profile: bool,
    explain: Option<String>,
    stats: bool,
    repl: bool,
    dot: Option<String>,
    wal: Option<String>,
    group_commit: u32,
    resume: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: Option<u64>,
    supervise: bool,
    recovery: Option<sorete::core::RecoveryPolicy>,
    quarantine_after: Option<u32>,
    quarantine_window: Option<u64>,
    io_retries: Option<u32>,
    soft_mem: Option<u64>,
    hard_mem: Option<u64>,
    soft_wall_ms: Option<u64>,
    /// `--jobs N`: drive the partitioned parallel matcher with N worker
    /// lanes (0 = all hardware threads). `None` defers to `SORETE_JOBS`,
    /// falling back to the classic single-threaded backend.
    jobs: Option<usize>,
    /// `--shards N`: match-network partition count for the parallel
    /// backend. `None` keeps the default (8); a value without `--jobs`
    /// still selects the parallel backend (one lane unless `SORETE_JOBS`).
    shards: Option<usize>,
    /// `--flight-recorder N|off`: per-ring flight-recorder capacity.
    /// `None` keeps the always-on default; `Some(0)` (spelled `off`)
    /// disables the black box entirely.
    flight: Option<usize>,
    /// `--crash-dir DIR`: where abnormal exits drop their crash bundle.
    crash_dir: Option<String>,
    /// `--crash-keep N`: retention cap for crash bundles (newest N kept,
    /// pruned oldest-first at bundle-write time). `None` defers to
    /// `SORETE_CRASH_KEEP`, falling back to the default of 8.
    crash_keep: Option<usize>,
}

fn usage() -> &'static str {
    "usage: sorete [--matcher rete|rete-scan|treat|naive] [--strategy lex|mea] \
     [--wm facts.wm] [--limit N] [--trace] [--trace-json file] \
     [--trace-perfetto file] [--span-stats] \
     [--metrics-json file] [--metrics-prom file] [--watch N] [--profile] \
     [--explain rule] [--stats] [--wal file] [--group-commit N] \
     [--resume ckpt] [--checkpoint file] [--checkpoint-every N] \
     [--supervise] [--recovery abort|skip|rollback] [--quarantine-after N] \
     [--quarantine-window N] [--io-retries N] [--soft-mem BYTES] \
     [--hard-mem BYTES] [--soft-wall-ms N] [--jobs N] [--shards N] \
     [--flight-recorder N|off] [--crash-dir dir] [--crash-keep N] [--repl] \
     program.ops... \
     | sorete serve [server options] \
     | sorete fsck <wal-or-bundle> [ckpt] \
     | sorete debug <bundle> [timeline|rules|perfetto <out>|explain <rule>|why-not <rule>]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        matcher: MatcherKind::Rete,
        strategy: Strategy::Lex,
        wm_files: Vec::new(),
        programs: Vec::new(),
        limit: None,
        trace: false,
        trace_json: None,
        trace_perfetto: None,
        span_stats: false,
        metrics_json: None,
        metrics_prom: None,
        watch: None,
        profile: false,
        explain: None,
        stats: false,
        repl: false,
        dot: None,
        wal: None,
        group_commit: 1,
        resume: None,
        checkpoint: None,
        checkpoint_every: None,
        supervise: false,
        recovery: None,
        quarantine_after: None,
        quarantine_window: None,
        io_retries: None,
        soft_mem: None,
        hard_mem: None,
        soft_wall_ms: None,
        jobs: None,
        shards: None,
        flight: None,
        crash_dir: None,
        crash_keep: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--matcher" => {
                opts.matcher = match it.next().map(String::as_str) {
                    Some("rete") => MatcherKind::Rete,
                    Some("rete-scan") => MatcherKind::ReteScan,
                    Some("treat") => MatcherKind::Treat,
                    Some("naive") => MatcherKind::Naive,
                    other => return Err(format!("bad --matcher {:?}", other)),
                };
            }
            "--strategy" => {
                opts.strategy = match it.next().map(String::as_str) {
                    Some("lex") => Strategy::Lex,
                    Some("mea") => Strategy::Mea,
                    other => return Err(format!("bad --strategy {:?}", other)),
                };
            }
            "--wm" => match it.next() {
                Some(f) => opts.wm_files.push(f.clone()),
                None => return Err("--wm needs a file".into()),
            },
            "--limit" => {
                opts.limit = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--limit needs a number")?,
                );
            }
            "--dot" => match it.next() {
                Some(f) => opts.dot = Some(f.clone()),
                None => return Err("--dot needs a file".into()),
            },
            "--trace" => opts.trace = true,
            "--trace-json" => match it.next() {
                Some(f) => opts.trace_json = Some(f.clone()),
                None => return Err("--trace-json needs a file".into()),
            },
            "--trace-perfetto" => match it.next() {
                Some(f) => opts.trace_perfetto = Some(f.clone()),
                None => return Err("--trace-perfetto needs a file".into()),
            },
            "--span-stats" => opts.span_stats = true,
            "--metrics-json" => match it.next() {
                Some(f) => opts.metrics_json = Some(f.clone()),
                None => return Err("--metrics-json needs a file".into()),
            },
            "--metrics-prom" => match it.next() {
                Some(f) => opts.metrics_prom = Some(f.clone()),
                None => return Err("--metrics-prom needs a file".into()),
            },
            "--watch" => {
                opts.watch = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--watch needs a positive number of cycles")?,
                );
            }
            "--profile" => opts.profile = true,
            "--explain" => match it.next() {
                Some(r) => opts.explain = Some(r.clone()),
                None => return Err("--explain needs a rule name".into()),
            },
            "--stats" => opts.stats = true,
            "--wal" => match it.next() {
                Some(f) => opts.wal = Some(f.clone()),
                None => return Err("--wal needs a file".into()),
            },
            "--group-commit" => {
                opts.group_commit = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--group-commit needs a positive number of commits")?;
            }
            "--resume" => match it.next() {
                Some(f) => opts.resume = Some(f.clone()),
                None => return Err("--resume needs a checkpoint file".into()),
            },
            "--checkpoint" => match it.next() {
                Some(f) => opts.checkpoint = Some(f.clone()),
                None => return Err("--checkpoint needs a file".into()),
            },
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--checkpoint-every needs a positive number of firings")?,
                );
            }
            "--supervise" => opts.supervise = true,
            "--recovery" => {
                opts.recovery = Some(match it.next().map(String::as_str) {
                    Some("abort") => sorete::core::RecoveryPolicy::AbortRun,
                    Some("skip") => sorete::core::RecoveryPolicy::SkipFiring,
                    Some("rollback") => sorete::core::RecoveryPolicy::Rollback,
                    _ => return Err("--recovery needs abort, skip, or rollback".into()),
                })
            }
            "--quarantine-after" => {
                opts.quarantine_after = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--quarantine-after needs a positive number of failures")?,
                );
                opts.supervise = true;
            }
            "--quarantine-window" => {
                opts.quarantine_window = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--quarantine-window needs a positive number of cycles")?,
                );
                opts.supervise = true;
            }
            "--io-retries" => {
                opts.io_retries = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--io-retries needs a number of attempts")?,
                );
                opts.supervise = true;
            }
            "--soft-mem" => {
                opts.soft_mem = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--soft-mem needs a byte budget")?,
                );
                opts.supervise = true;
            }
            "--hard-mem" => {
                opts.hard_mem = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--hard-mem needs a byte budget")?,
                );
                opts.supervise = true;
            }
            "--soft-wall-ms" => {
                opts.soft_wall_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--soft-wall-ms needs a number of milliseconds")?,
                );
                opts.supervise = true;
            }
            "--jobs" => {
                opts.jobs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--jobs needs a worker count (0 = all hardware threads)")?,
                );
            }
            "--shards" => {
                opts.shards = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--shards needs a positive partition count")?,
                );
            }
            "--flight-recorder" => {
                opts.flight = Some(match it.next().map(String::as_str) {
                    Some("off") | Some("0") => 0,
                    Some(s) => s
                        .parse()
                        .map_err(|_| "--flight-recorder needs a ring capacity or `off`")?,
                    None => return Err("--flight-recorder needs a ring capacity or `off`".into()),
                });
            }
            "--crash-dir" => match it.next() {
                Some(d) => opts.crash_dir = Some(d.clone()),
                None => return Err("--crash-dir needs a directory".into()),
            },
            "--crash-keep" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.crash_keep = Some(n),
                other => return Err(format!("bad --crash-keep {:?}", other)),
            },
            "--repl" => opts.repl = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option {}", other)),
            file => opts.programs.push(file.to_string()),
        }
    }
    if opts.programs.is_empty() && !opts.repl {
        return Err(usage().to_string());
    }
    if opts.checkpoint_every.is_some() && opts.checkpoint.is_none() && opts.wal.is_none() {
        return Err(
            "--checkpoint-every needs --checkpoint or --wal (for the <wal>.ckpt default)".into(),
        );
    }
    Ok(opts)
}

/// A parsed fact: class plus slots.
type Fact = (Symbol, Vec<(Symbol, Value)>);

/// Parse a facts file: any number of `(class ^attr value ...)` forms.
fn parse_facts(src: &str) -> Result<Vec<Fact>, String> {
    let toks = tokenize(src).map_err(|e| e.to_string())?;
    let mut facts = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokKind::LParen {
            return Err(format!("line {}: expected `(`", toks[i].line));
        }
        i += 1;
        let class = match &toks.get(i).map(|t| &t.kind) {
            Some(TokKind::Sym(s)) => Symbol::new(s),
            _ => return Err("expected a class name after `(`".into()),
        };
        i += 1;
        let mut slots = Vec::new();
        loop {
            match toks.get(i).map(|t| &t.kind) {
                Some(TokKind::RParen) => {
                    i += 1;
                    break;
                }
                Some(TokKind::Attr(a)) => {
                    let attr = Symbol::new(a);
                    i += 1;
                    let value = match toks.get(i).map(|t| &t.kind) {
                        Some(TokKind::Sym(s)) if s == "nil" => Value::Nil,
                        Some(TokKind::Sym(s)) => Value::sym(s),
                        Some(TokKind::Int(n)) => Value::Int(*n),
                        Some(TokKind::Float(f)) => Value::Float(*f),
                        other => return Err(format!("bad value after ^{}: {:?}", attr, other)),
                    };
                    i += 1;
                    slots.push((attr, value));
                }
                other => return Err(format!("expected `^attr` or `)`, found {:?}", other)),
            }
        }
        facts.push((class, slots));
    }
    Ok(facts)
}

fn flush_output(ps: &mut ProductionSystem) {
    for line in ps.take_trace() {
        println!("; {}", line);
    }
    for line in ps.take_output() {
        println!("{}", line);
    }
}

fn print_stats(ps: &ProductionSystem) {
    let s = ps.stats();
    println!(
        "; stats: firings={} actions={} ({:.2}/firing) makes={} removes={} modifies={} writes={}",
        s.firings,
        s.actions,
        s.actions_per_firing(),
        s.makes,
        s.removes,
        s.modifies,
        s.writes
    );
    if s.skipped_actions > 0 || s.rolled_back > 0 {
        println!(
            "; recovery: skipped_actions={} rolled_back={}",
            s.skipped_actions, s.rolled_back
        );
    }
    if ps.supervision_enabled() {
        let sup = ps.supervisor_stats();
        println!(
            "; supervisor: panics_caught={} io_retries={} quarantines={} readmissions={} soft_degrades={} hard_degrades={}",
            sup.panics_caught,
            sup.io_retries,
            sup.quarantines,
            sup.readmissions,
            sup.soft_degrades,
            sup.hard_degrades
        );
        let quarantined = ps.quarantined_rules();
        if !quarantined.is_empty() {
            let names: Vec<&str> = quarantined.iter().map(|s| s.as_str()).collect();
            println!("; quarantined rules: {}", names.join(", "));
        }
    }
    println!("; match [{}]: {}", ps.matcher_name(), ps.match_stats());
    if let Some(ws) = ps.wal_stats() {
        println!(
            "; wal: records={} bytes={} commits={} writes={} fsyncs={}",
            ws.records, ws.bytes, ws.commits, ws.writes, ws.fsyncs
        );
    }
    for (name, rs) in s.per_rule_sorted() {
        println!(
            ";   {}: {} firings, {} actions",
            name, rs.firings, rs.actions
        );
    }
}

/// The `--profile` table: one row per network node, hottest first.
fn print_profile(prof: &NetProfile) {
    println!(
        "; profile [{}]: {} nodes, {}µs total self time",
        prof.algorithm,
        prof.nodes.len(),
        prof.total_nanos() / 1_000
    );
    println!(
        ";   {:<5} {:<10} {:>9} {:>6} {:>9}  {:<28} rules",
        "node", "kind", "acts", "held", "self µs", "label"
    );
    for n in prof.sorted() {
        println!(
            ";   {:<5} {:<10} {:>9} {:>6} {:>9}  {:<28} {}",
            n.id,
            n.kind,
            n.activations,
            n.held,
            n.nanos / 1_000,
            n.label.replace('\n', " "),
            n.rules.join(",")
        );
    }
}

fn print_cs(ps: &ProductionSystem) {
    let mut items = ps.conflict_items();
    items.sort_by(|a, b| b.recency.cmp(&a.recency));
    println!("; conflict set ({} entries):", items.len());
    for item in items {
        let rows: Vec<Vec<u64>> = item
            .rows
            .iter()
            .map(|r| r.iter().map(|t| t.raw()).collect())
            .collect();
        println!(
            ";   rule#{} {} rows={:?} aggregates={:?}",
            item.key.rule().index(),
            if item.key.is_soi() { "[SOI]" } else { "" },
            rows,
            item.aggregates
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
    }
}

fn print_metrics_table(ps: &ProductionSystem) {
    match ps.metrics_table() {
        Some(table) => {
            for l in table.lines() {
                println!("; {}", l);
            }
        }
        None => println!("; metrics disabled"),
    }
}

fn repl(ps: &mut ProductionSystem, limit: Option<u64>) {
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("sorete> ");
        let _ = std::io::stdout().flush();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let input = line.trim();
        let (cmd, rest) = match input.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (input, ""),
        };
        match cmd {
            "" => {}
            "quit" | "exit" | "q" => break,
            "help" | "?" => {
                println!("; run [n] | step | make (class ^a v …) | remove <tag> | excise <rule> | quarantine <rule> | readmit <rule> | explain <rule> | why-not <rule> | profile | wm | dump [file] | dump bundle [dir] | cs | stats | metrics | spans | watch [n] | checkpoint [file] | recover <ckpt> | quit");
            }
            "run" => {
                let n: Option<u64> = rest.parse().ok();
                let outcome = ps.run(n.or(limit));
                flush_output(ps);
                if let sorete::core::StopReason::Error(e) = &outcome.reason {
                    eprintln!("; error after {} firings: {}", outcome.fired, e);
                } else {
                    println!("; fired {} ({:?})", outcome.fired, outcome.reason);
                }
                if outcome.reason.is_abnormal() {
                    if let Some(bundle) = ps.last_crash_bundle() {
                        println!("; crash bundle: {}", bundle.display());
                    }
                }
            }
            "step" => match ps.step() {
                Ok(Some(rule)) => {
                    flush_output(ps);
                    println!("; fired {}", rule);
                }
                Ok(None) => println!("; quiescent"),
                Err(e) => println!("; error: {}", e),
            },
            "make" => match parse_facts(rest) {
                Ok(facts) => {
                    for (class, slots) in facts {
                        match ps.assert_wme(class, slots) {
                            Ok(tag) => println!("; => {}", tag),
                            Err(e) => println!("; error: {}", e),
                        }
                    }
                    flush_output(ps);
                }
                Err(e) => println!("; parse error: {}", e),
            },
            "excise" => match ps.excise(rest) {
                Ok(()) => println!("; excised {}", rest),
                Err(e) => println!("; error: {}", e),
            },
            "quarantine" => match ps.quarantine_rule(rest) {
                Ok(()) => println!("; quarantined {}", rest),
                Err(e) => println!("; error: {}", e),
            },
            "readmit" => match ps.readmit_rule(rest) {
                Ok(true) => println!("; readmitted {}", rest),
                Ok(false) => println!("; {} was not quarantined", rest),
                Err(e) => println!("; error: {}", e),
            },
            "remove" => match rest.parse::<u64>() {
                Ok(raw) => match ps.retract_wme(sorete_base::TimeTag::new(raw)) {
                    Ok(()) => println!("; removed {}", raw),
                    Err(e) => println!("; error: {}", e),
                },
                Err(_) => println!("; usage: remove <tag>"),
            },
            "wm" => {
                for wme in ps.wm().dump() {
                    println!("; {}", wme);
                }
            }
            "dump" if rest == "bundle" || rest.starts_with("bundle ") => {
                // Drain the flight recorder into a crash bundle on demand
                // (same format an abnormal exit produces).
                let dir = rest.strip_prefix("bundle").unwrap_or("").trim();
                let target = (!dir.is_empty()).then(|| std::path::Path::new(dir));
                match ps.dump_bundle(target) {
                    Ok(path) => println!("; wrote crash bundle to {}", path.display()),
                    Err(e) => println!("; error: {}", e),
                }
            }
            "dump" => {
                // Write working memory in `.wm` fact-file format.
                let mut text = String::new();
                for wme in ps.wm().dump() {
                    text.push('(');
                    text.push_str(wme.class.as_str());
                    for (a, v) in wme.slots() {
                        text.push_str(&format!(" ^{} {}", a, v));
                    }
                    text.push_str(")\n");
                }
                if rest.is_empty() {
                    print!("{}", text);
                } else {
                    match std::fs::write(rest, &text) {
                        Ok(()) => println!("; wrote {} WMEs to {}", ps.wm().len(), rest),
                        Err(e) => println!("; error: {}", e),
                    }
                }
            }
            "checkpoint" => {
                // Serialize engine state (WM + refraction + counters); with a
                // file argument also rotate any attached WAL past it.
                if rest.is_empty() {
                    print!("{}", ps.checkpoint_string());
                } else {
                    match ps.checkpoint_to(std::path::Path::new(rest)) {
                        Ok(()) => println!("; checkpointed {} at cycle {}", rest, ps.cycle()),
                        Err(e) => println!("; error: {}", e),
                    }
                }
            }
            "recover" => {
                if rest.is_empty() {
                    println!("; usage: recover <ckpt>");
                } else {
                    match ps.resume_from_file(std::path::Path::new(rest)) {
                        Ok(r) => println!(
                            "; resumed {} WMEs, {} refracted, at cycle {} (checkpointed from {})",
                            r.wmes, r.refracted, r.cycle, r.matcher_was
                        ),
                        Err(e) => println!("; error: {}", e),
                    }
                }
            }
            "explain" => match ps.explain(rest) {
                Ok(text) => {
                    for l in text.lines() {
                        println!("; {}", l);
                    }
                }
                Err(e) => println!("; error: {}", e),
            },
            "why-not" => match ps.why_not(rest) {
                Ok(text) => {
                    for l in text.lines() {
                        println!("; {}", l);
                    }
                }
                Err(e) => println!("; error: {}", e),
            },
            "profile" => match ps.profile() {
                Some(prof) => print_profile(&prof),
                None => println!(
                    "; no profile — start with --profile (and a matcher that has a network)"
                ),
            },
            "cs" => print_cs(ps),
            "stats" => print_stats(ps),
            "metrics" => {
                ps.enable_metrics();
                ps.record_metrics_snapshot();
                print_metrics_table(ps);
            }
            "spans" => {
                if !ps.spans_enabled() {
                    ps.enable_spans();
                    println!("; span recording enabled — run some cycles, then `spans` again");
                } else {
                    let spans = ps.span_snapshot();
                    if spans.is_empty() {
                        println!("; no spans recorded yet");
                    } else {
                        println!("; spans ({} recorded):", spans.len());
                        for l in sorete_base::render_span_table(&spans).lines() {
                            println!("; {}", l);
                        }
                        if let Some(pm) = ps.spans().shard_imbalance_permille() {
                            println!(
                                "; shard imbalance: {}.{:03}x (max/mean busy across match shards)",
                                pm / 1000,
                                pm % 1000
                            );
                        }
                    }
                }
            }
            "watch" => {
                let every: u64 = rest.parse().ok().filter(|&n| n > 0).unwrap_or(10);
                ps.enable_metrics();
                loop {
                    let outcome = ps.run(Some(every));
                    flush_output(ps);
                    ps.record_metrics_snapshot();
                    print_metrics_table(ps);
                    if !matches!(outcome.reason, sorete::core::StopReason::Limit) {
                        println!("; fired {} ({:?})", outcome.fired, outcome.reason);
                        break;
                    }
                }
            }
            other => println!("; unknown command `{}` (try `help`)", other),
        }
    }
}

/// Run in chunks of `every` firings, cutting a checkpoint (which also
/// rotates an attached WAL) after every chunk that made progress. The
/// returned outcome's `fired` is the total across chunks.
fn run_with_checkpoints(
    ps: &mut ProductionSystem,
    limit: Option<u64>,
    every: u64,
    ckpt: &str,
) -> Result<sorete::core::RunOutcome, Failure> {
    let mut total: u64 = 0;
    loop {
        let remaining = limit.map(|l| l.saturating_sub(total));
        let chunk = remaining.map_or(every, |r| r.min(every));
        let mut outcome = ps.run(Some(chunk));
        total += outcome.fired;
        flush_output(ps);
        if outcome.fired > 0 {
            ps.checkpoint_to(std::path::Path::new(ckpt))
                .map_err(|e| (EXIT_DURABILITY, format!("{}: {}", ckpt, e)))?;
            eprintln!("; checkpointed {} at cycle {}", ckpt, ps.cycle());
        }
        let user_limit_hit = limit.is_some_and(|l| total >= l);
        if !matches!(outcome.reason, sorete::core::StopReason::Limit) || user_limit_hit {
            outcome.fired = total;
            return Ok(outcome);
        }
    }
}

/// Append the crash-bundle path (if the abnormal exit produced one) to a
/// failure message, so the operator's next step — `sorete debug <bundle>`
/// — is right there in the error line.
fn with_bundle_note(ps: &ProductionSystem, failure: Failure) -> Failure {
    match ps.last_crash_bundle() {
        Some(path) => (
            failure.0,
            format!("{}; crash bundle: {}", failure.1, path.display()),
        ),
        None => failure,
    }
}

/// The most recently written `sorete-crash-*` bundle directory under
/// `dir`, if any — surfaced in the recovery summary so a restart after a
/// crash points straight at the black box from the run that died.
fn latest_crash_bundle_in(dir: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut best: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with("sorete-crash-")
            || !sorete::core::bundle::is_bundle_dir(&path)
        {
            continue;
        }
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        if best.as_ref().is_none_or(|(t, _)| mtime >= *t) {
            best = Some((mtime, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Render a run's terminal `StopReason` to its typed exit, or `None` for
/// the benign reasons (quiescence, halt, limit).
fn outcome_failure(reason: &sorete::core::StopReason, fired: u64) -> Option<Failure> {
    use sorete::core::{CoreError, StopReason};
    match reason {
        StopReason::Error(e) => {
            let code = match e {
                CoreError::Durability(_) => EXIT_DURABILITY,
                _ => EXIT_RUN,
            };
            Some((code, format!("error after {} firings: {}", fired, e)))
        }
        StopReason::Panicked { rule, message } => Some((
            EXIT_RUN,
            format!(
                "panic in rule {} after {} firings: {}",
                rule, fired, message
            ),
        )),
        StopReason::ResourceExhausted(v) => Some((
            EXIT_RESOURCE,
            format!("resource exhausted after {} firings: {}", fired, v),
        )),
        StopReason::Quarantined { rules } => {
            let names: Vec<&str> = rules.iter().map(|s| s.as_str()).collect();
            Some((
                EXIT_QUARANTINE,
                format!(
                    "run stalled after {} firings: remaining work is quarantined ({}) — \
                     readmit and run again",
                    fired,
                    names.join(", ")
                ),
            ))
        }
        // The one-line graceful-shutdown summary: a *clean* stop at a
        // firing boundary, typed so orchestrators can tell it from failure.
        StopReason::Interrupted => Some((
            EXIT_INTERRUPTED,
            format!(
                "interrupted ({}): stopped cleanly at a firing boundary after {} firings, \
                 checkpointed where configured",
                sorete::base::shutdown::last_signal_name(),
                fired
            ),
        )),
        _ => None,
    }
}

fn run(args: &[String]) -> Result<(), Failure> {
    let opts = parse_args(args).map_err(|e| (EXIT_USAGE, e))?;

    let mut ps = match (opts.jobs, opts.shards) {
        (Some(n), Some(s)) => ProductionSystem::with_jobs_shards(
            opts.matcher,
            sorete::base::pool::resolve_jobs(Some(n)),
            s,
        ),
        (Some(n), None) => {
            ProductionSystem::with_jobs(opts.matcher, sorete::base::pool::resolve_jobs(Some(n)))
        }
        // `--shards` without `--jobs` still means the partitioned backend —
        // shard count is a property of the parallel match network. Lane
        // count defers to SORETE_JOBS, defaulting to one worker.
        (None, Some(s)) => {
            let jobs = match sorete::base::pool::jobs_from_env() {
                Some(_) => sorete::base::pool::resolve_jobs(None),
                None => 1,
            };
            ProductionSystem::with_jobs_shards(opts.matcher, jobs, s)
        }
        (None, None) => ProductionSystem::new(opts.matcher),
    };
    // The crash-bundle manifest records how the process was started.
    ps.set_invocation(std::env::args().collect());
    if let Some(cap) = opts.flight {
        ps.set_flight_recorder(cap);
    }
    if let Some(dir) = &opts.crash_dir {
        ps.set_crash_dir(dir);
    }
    if let Some(keep) = opts.crash_keep {
        ps.set_crash_keep(keep);
    }
    // SIGTERM/SIGINT mean "stop at the next firing boundary, checkpoint
    // where configured, exit 7" — not "die mid-firing". The bridge thread
    // mirrors the process-wide signal flag into the engine's interrupt.
    sorete::base::shutdown::install();
    let interrupt = Arc::new(std::sync::atomic::AtomicBool::new(false));
    ps.set_interrupt(interrupt.clone());
    let bridge_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let bridge = sorete::base::shutdown::bridge(interrupt, bridge_stop.clone());
    // Every exit path — including the early `?` failures inside
    // `run_loaded` (checkpoint I/O, fact-file errors) — must flush
    // buffered telemetry, or a failed run loses its trace/metrics tail.
    let result = run_loaded(&mut ps, &opts);
    ps.flush_trace();
    bridge_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = bridge.join();
    result
}

fn run_loaded(ps: &mut ProductionSystem, opts: &Options) -> Result<(), Failure> {
    ps.set_strategy(opts.strategy);
    if let Some(policy) = opts.recovery {
        ps.set_recovery_policy(policy);
    }
    ps.set_tracing(opts.trace);
    if let Some(path) = &opts.trace_json {
        let sink = JsonlSink::create(path).map_err(|e| (EXIT_USAGE, format!("{}: {}", path, e)))?;
        ps.add_trace_sink(Arc::new(Mutex::new(sink)));
    }
    if opts.metrics_json.is_some() || opts.metrics_prom.is_some() || opts.watch.is_some() {
        ps.enable_metrics();
    }
    // Spans come on before the WAL attaches so the recorder is handed to
    // every emitter (matcher shards, WAL I/O, engine phases) up front.
    if opts.trace_perfetto.is_some() || opts.span_stats {
        ps.enable_spans();
    }
    if let Some(path) = &opts.metrics_json {
        let writer =
            SnapshotWriter::create(path).map_err(|e| (EXIT_USAGE, format!("{}: {}", path, e)))?;
        ps.set_metrics_stream(writer);
    }
    if opts.profile {
        ps.set_profiling(true);
    }
    // `explain` reconstructs history from the event log; the REPL records
    // it too so `explain` works there at any point.
    if opts.explain.is_some() || opts.repl {
        ps.set_event_log(true);
    }

    for file in &opts.programs {
        let src =
            std::fs::read_to_string(file).map_err(|e| (EXIT_USAGE, format!("{}: {}", file, e)))?;
        ps.load_program(&src)
            .map_err(|e| (EXIT_USAGE, format!("{}: {}", file, e)))?;
    }

    // Durability: restore a checkpoint first (the WAL base), then attach the
    // WAL, which replays whatever committed after the checkpoint was cut.
    let mut recovered = false;
    if let Some(path) = &opts.resume {
        let report = ps
            .resume_from_file(std::path::Path::new(path))
            .map_err(|e| (EXIT_DURABILITY, format!("{}: {}", path, e)))?;
        eprintln!(
            "; resumed {}: {} WMEs, {} refracted, at cycle {} (checkpointed from {})",
            path, report.wmes, report.refracted, report.cycle, report.matcher_was
        );
        recovered = true;
    }
    if let Some(path) = &opts.wal {
        let wal_opts = WalOptions {
            group_commit: opts.group_commit,
        };
        let report = ps
            .attach_wal(std::path::Path::new(path), wal_opts)
            .map_err(|e| (EXIT_DURABILITY, format!("{}: {}", path, e)))?;
        // The one-line recovery summary, printed even for a clean attach so
        // scripted runs always have it to parse. A crash bundle next to the
        // WAL is the black box from the run that died — point at it.
        let bundle_note = std::path::Path::new(path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
            .map(std::path::Path::to_path_buf)
            .or_else(|| Some(std::path::PathBuf::from(".")))
            .and_then(|d| latest_crash_bundle_in(&d))
            .map(|b| format!(" crash_bundle={}", b.display()))
            .unwrap_or_default();
        eprintln!(
            "; recovery: {}: replayed={} cycles={} commits={} stale_discarded={} uncommitted_discarded={} truncated_bytes={}{}",
            path,
            report.replayed_ops,
            report.replayed_cycles,
            report.replayed_commits,
            report.stale_records,
            report.discarded_records,
            report.truncated_bytes,
            bundle_note
        );
        if report.replayed_ops > 0 || report.replayed_cycles > 0 || report.replayed_commits > 0 {
            eprintln!(
                "; recovered {}: {} ops over {} cycles + {} commits ({} records discarded, {} bytes truncated)",
                path,
                report.replayed_ops,
                report.replayed_cycles,
                report.replayed_commits,
                report.discarded_records,
                report.truncated_bytes
            );
            recovered = true;
        }
    }
    // After recovery the initial facts are already in working memory (from
    // the checkpoint and/or the WAL's committed asserts); loading the fact
    // files again would double-apply them.
    if recovered && !opts.wm_files.is_empty() {
        eprintln!("; skipping --wm fact files: state was recovered");
    } else {
        for file in &opts.wm_files {
            let src = std::fs::read_to_string(file)
                .map_err(|e| (EXIT_USAGE, format!("{}: {}", file, e)))?;
            for (class, slots) in parse_facts(&src).map_err(|e| (EXIT_USAGE, e))? {
                ps.assert_wme(class, slots).map_err(|e| {
                    let code = match e {
                        sorete::core::CoreError::Durability(_) => EXIT_DURABILITY,
                        _ => EXIT_USAGE,
                    };
                    (code, e.to_string())
                })?;
            }
        }
    }
    let ckpt_path: Option<String> = opts
        .checkpoint
        .clone()
        .or_else(|| opts.wal.as_ref().map(|w| format!("{}.ckpt", w)));

    if opts.supervise {
        let mut config = SupervisorConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            degradation: DegradationPolicy {
                soft_wall: opts.soft_wall_ms.map(Duration::from_millis),
                soft_bytes: opts.soft_mem,
                hard_bytes: opts.hard_mem,
            },
            checkpoint_path: ckpt_path.as_ref().map(std::path::PathBuf::from),
        };
        if let Some(n) = opts.quarantine_after {
            config.breaker.max_failures = n;
        }
        if let Some(n) = opts.quarantine_window {
            config.breaker.window_cycles = n;
        }
        if let Some(n) = opts.io_retries {
            config.retry.max_attempts = n;
        }
        ps.enable_supervision(config);
    }

    let mut run_error: Option<Failure> = None;
    if opts.repl {
        flush_output(ps);
        repl(ps, opts.limit);
    } else if let Some(every) = opts.watch {
        // Watch mode: run in chunks of `every` cycles, re-rendering the
        // metrics table (to stderr, keeping stdout clean) after each.
        let mut total: u64 = 0;
        loop {
            let remaining = opts.limit.map(|l| l.saturating_sub(total));
            if remaining == Some(0) {
                eprintln!("; fired {} rules (Limit)", total);
                break;
            }
            let chunk = remaining.map_or(every, |r| r.min(every));
            let outcome = ps.run(Some(chunk));
            total += outcome.fired;
            flush_output(ps);
            ps.record_metrics_snapshot();
            if let Some(table) = ps.metrics_table() {
                for l in table.lines() {
                    eprintln!("; {}", l);
                }
            }
            match &outcome.reason {
                sorete::core::StopReason::Limit => {}
                reason => {
                    match outcome_failure(reason, total) {
                        Some(failure) => run_error = Some(with_bundle_note(ps, failure)),
                        None => eprintln!("; fired {} rules ({:?})", total, reason),
                    }
                    break;
                }
            }
        }
    } else {
        let outcome = match (opts.checkpoint_every, &ckpt_path) {
            (Some(every), Some(ckpt)) => run_with_checkpoints(ps, opts.limit, every, ckpt)?,
            _ => ps.run(opts.limit),
        };
        flush_output(ps);
        match outcome_failure(&outcome.reason, outcome.fired) {
            Some(failure) => run_error = Some(with_bundle_note(ps, failure)),
            None => eprintln!("; fired {} rules ({:?})", outcome.fired, outcome.reason),
        }
    }
    // A final checkpoint captures end-of-run state (also on the error paths:
    // the checkpoint is cut at the last *committed* cycle).
    if opts.checkpoint_every.is_some() {
        if let Some(ckpt) = &ckpt_path {
            ps.checkpoint_to(std::path::Path::new(ckpt))
                .map_err(|e| (EXIT_DURABILITY, format!("{}: {}", ckpt, e)))?;
            eprintln!("; checkpointed {} at cycle {}", ckpt, ps.cycle());
        }
    }
    // DOT is rendered *after* the run so `--profile` heat annotations
    // reflect the work actually done.
    if let Some(path) = &opts.dot {
        match ps.network_dot() {
            Some(dot) => {
                std::fs::write(path, dot).map_err(|e| (EXIT_USAGE, format!("{}: {}", path, e)))?;
                eprintln!("; wrote network DOT to {}", path);
            }
            None => eprintln!(
                "; --dot: the {} matcher has no network to render",
                ps.matcher_name()
            ),
        }
    }
    if let Some(rule) = &opts.explain {
        match ps.explain(rule) {
            Ok(text) => {
                for l in text.lines() {
                    println!("; {}", l);
                }
            }
            Err(e) => eprintln!("; explain: {}", e),
        }
    }
    if opts.profile {
        match ps.profile() {
            Some(prof) => print_profile(&prof),
            None => eprintln!(
                "; --profile: the {} matcher does not profile",
                ps.matcher_name()
            ),
        }
    }
    if opts.stats {
        print_stats(ps);
    }
    if opts.span_stats || opts.trace_perfetto.is_some() {
        print_spans(ps, opts)?;
    }
    // Final sample so the last JSONL line / the Prometheus scrape reflect
    // end-of-run state even on error paths (a no-op when disabled; the
    // snapshot dedups against the end-of-cycle one).
    ps.record_metrics_snapshot();
    if let Some(path) = &opts.metrics_prom {
        let text = ps.metrics_prometheus().unwrap_or_default();
        std::fs::write(path, text).map_err(|e| (EXIT_USAGE, format!("{}: {}", path, e)))?;
        eprintln!("; wrote Prometheus exposition to {}", path);
    }
    run_error.map_or(Ok(()), Err)
}

/// End-of-run span rendering: the `--span-stats` summary table (with the
/// shard-imbalance ratio) and/or the `--trace-perfetto` Chrome
/// trace-event JSON file.
fn print_spans(ps: &mut ProductionSystem, opts: &Options) -> Result<(), Failure> {
    let spans = ps.take_spans();
    if opts.span_stats {
        println!("; spans ({} recorded):", spans.len());
        for l in sorete_base::render_span_table(&spans).lines() {
            println!("; {}", l);
        }
        if let Some(pm) = ps.spans().shard_imbalance_permille() {
            println!(
                "; shard imbalance: {}.{:03}x (max/mean busy across match shards)",
                pm / 1000,
                pm % 1000
            );
        }
        let dropped = ps.spans().dropped();
        if dropped > 0 {
            println!("; spans dropped at cap: {}", dropped);
        }
    }
    if let Some(path) = &opts.trace_perfetto {
        std::fs::write(path, sorete_base::render_perfetto(&spans))
            .map_err(|e| (EXIT_USAGE, format!("{}: {}", path, e)))?;
        eprintln!(
            "; wrote Perfetto trace to {} ({} spans) — load it at https://ui.perfetto.dev",
            path,
            spans.len()
        );
    }
    Ok(())
}

/// `sorete debug <bundle> [cmd]`: the offline post-mortem inspector over
/// a crash-bundle directory. With no subcommand it prints the validation
/// summary plus the cycle timeline; `timeline`, `rules`, `perfetto <out>`,
/// `explain <rule>`, and `why-not <rule>` drill in. `explain`/`why-not`
/// render byte-identically to the live REPL verbs so transcripts diff
/// cleanly against a re-run.
fn debug(args: &[String]) -> Result<(), Failure> {
    const DEBUG_USAGE: &str =
        "usage: sorete debug <bundle> [timeline|rules|perfetto <out>|explain <rule>|why-not <rule>]";
    let (dir, cmd) = match args {
        [dir, rest @ ..] => (dir, rest),
        [] => return Err((EXIT_USAGE, DEBUG_USAGE.into())),
    };
    let bundle = sorete::core::CrashBundle::load(std::path::Path::new(dir))
        .map_err(|e| (EXIT_USAGE, format!("debug: {}: {}", dir, e)))?;
    let cmd: Vec<&str> = cmd.iter().map(String::as_str).collect();
    match cmd.as_slice() {
        [] => {
            println!("{}", bundle.validate_summary());
            print!("{}", bundle.render_timeline());
        }
        ["timeline"] => print!("{}", bundle.render_timeline()),
        ["rules"] => print!("{}", bundle.render_rules()),
        ["perfetto", out] => {
            let spans = bundle.spans.len();
            std::fs::write(out, bundle.render_perfetto())
                .map_err(|e| (EXIT_USAGE, format!("debug: {}: {}", out, e)))?;
            eprintln!(
                "; wrote Perfetto trace to {} ({} spans) — load it at https://ui.perfetto.dev",
                out, spans
            );
        }
        ["explain", rule] => {
            let text = bundle
                .explain(rule)
                .map_err(|e| (EXIT_USAGE, format!("debug: {}", e)))?;
            for l in text.lines() {
                println!("; {}", l);
            }
        }
        ["why-not", rule] => {
            let text = bundle
                .why_not(rule)
                .map_err(|e| (EXIT_USAGE, format!("debug: {}", e)))?;
            for l in text.lines() {
                println!("; {}", l);
            }
        }
        _ => return Err((EXIT_USAGE, DEBUG_USAGE.into())),
    }
    Ok(())
}

/// `sorete fsck <wal> [ckpt]`: offline durability validation. Reads both
/// files without mutating them (no truncation, no replay into an engine)
/// and reports CRC framing, the committed prefix, tail defects, and WAL /
/// checkpoint generation pairing.
///
/// Exit 0 when the pair is recoverable (tail defects are fine: recovery
/// truncates them); exit 5 (`EXIT_DURABILITY`) when a file is unreadable,
/// not a WAL/checkpoint at all, or the generations cannot pair.
fn fsck(args: &[String]) -> Result<(), Failure> {
    let (wal_path, ckpt_path) = match args {
        [w] => (w, None),
        [w, c] => (w, Some(c)),
        _ => {
            return Err((
                EXIT_USAGE,
                "usage: sorete fsck <wal-or-bundle> [ckpt]".into(),
            ))
        }
    };
    // A crash-bundle directory instead of a WAL: validate the bundle
    // (manifest magic, ring framing, TSV/rule tables all parse).
    if sorete::core::bundle::is_bundle_dir(std::path::Path::new(wal_path)) {
        let summary = ProductionSystem::fsck_bundle(std::path::Path::new(wal_path))
            .map_err(|e| (EXIT_DURABILITY, format!("fsck: {}: {}", wal_path, e)))?;
        println!("fsck: {}", summary);
        println!("fsck: ok");
        return Ok(());
    }
    let scan = sorete::reldb::Wal::scan(std::path::Path::new(wal_path))
        .map_err(|e| (EXIT_DURABILITY, format!("fsck: {}", e)))?;
    println!(
        "fsck: wal {}: generation={} file_bytes={} committed_bytes={} records={} commit_points={}",
        wal_path,
        scan.generation,
        scan.file_bytes,
        scan.committed_bytes,
        scan.committed_records,
        scan.commit_points
    );
    for defect in &scan.defects {
        println!("fsck: wal {}: tail defect: {:?}", wal_path, defect);
    }
    if !scan.defects.is_empty() {
        println!(
            "fsck: wal {}: tail is recoverable — recovery truncates {} bytes back to the last commit point",
            wal_path,
            scan.file_bytes - scan.committed_bytes
        );
    }
    if let Some(ckpt_path) = ckpt_path {
        let text = std::fs::read_to_string(ckpt_path)
            .map_err(|e| (EXIT_DURABILITY, format!("fsck: {}: {}", ckpt_path, e)))?;
        let ck = sorete::core::Checkpoint::parse(&text)
            .map_err(|e| (EXIT_DURABILITY, format!("fsck: {}: {}", ckpt_path, e)))?;
        println!(
            "fsck: checkpoint {}: generation={} cycle={} wmes={} refracted={} matcher={}",
            ckpt_path,
            ck.generation,
            ck.cycle,
            ck.wmes.len(),
            ck.fired.len(),
            ck.matcher
        );
        // Pairing: equal generations means the log continues the checkpoint
        // (replay); checkpoint one ahead means a crash landed between the
        // checkpoint rename and the log rotation (log is stale but safely
        // ignorable). Anything else is an unrelated or missing-lineage pair.
        if ck.generation == scan.generation {
            println!(
                "fsck: pairing ok: log generation {} continues the checkpoint (replay on resume)",
                scan.generation
            );
        } else if ck.generation == scan.generation + 1 {
            println!(
                "fsck: pairing ok: checkpoint generation {} is one ahead of the log ({}) — log is stale and will be discarded on resume",
                ck.generation, scan.generation
            );
        } else {
            return Err((
                EXIT_DURABILITY,
                format!(
                    "fsck: generation mismatch: WAL generation {} does not pair with checkpoint generation {} (expected equal, or checkpoint one ahead)",
                    scan.generation, ck.generation
                ),
            ));
        }
    }
    println!("fsck: ok");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("fsck") => fsck(&args[1..]),
        Some("debug") => debug(&args[1..]),
        // The daemon: everything after `serve` is a sorete-server option.
        Some("serve") => return ExitCode::from(sorete::server::cli_main(&args) as u8),
        _ => run(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("sorete: {}", msg);
            ExitCode::from(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_options() {
        let args: Vec<String> = [
            "--matcher",
            "treat",
            "--strategy",
            "mea",
            "--limit",
            "5",
            "--trace",
            "prog.ops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.matcher, MatcherKind::Treat);
        assert_eq!(o.strategy, Strategy::Mea);
        assert_eq!(o.limit, Some(5));
        assert!(o.trace);
        assert_eq!(o.programs, vec!["prog.ops"]);
        let obs: Vec<String> = [
            "--trace-json",
            "out.jsonl",
            "--profile",
            "--explain",
            "compete",
            "p.ops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&obs).unwrap();
        assert_eq!(o.trace_json.as_deref(), Some("out.jsonl"));
        assert!(o.profile);
        assert_eq!(o.explain.as_deref(), Some("compete"));
        let spans: Vec<String> = ["--trace-perfetto", "trace.json", "--span-stats", "p.ops"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&spans).unwrap();
        assert_eq!(o.trace_perfetto.as_deref(), Some("trace.json"));
        assert!(o.span_stats);
        assert!(!parse_args(&obs).unwrap().span_stats); // off by default
        let met: Vec<String> = [
            "--metrics-json",
            "m.jsonl",
            "--metrics-prom",
            "m.prom",
            "--watch",
            "25",
            "p.ops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&met).unwrap();
        assert_eq!(o.metrics_json.as_deref(), Some("m.jsonl"));
        assert_eq!(o.metrics_prom.as_deref(), Some("m.prom"));
        assert_eq!(o.watch, Some(25));
        let scan: Vec<String> = ["--matcher", "rete-scan", "p.ops"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&scan).unwrap().matcher, MatcherKind::ReteScan);
        let dur: Vec<String> = [
            "--wal",
            "run.wal",
            "--group-commit",
            "8",
            "--resume",
            "run.ckpt",
            "--checkpoint-every",
            "100",
            "p.ops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&dur).unwrap();
        assert_eq!(o.wal.as_deref(), Some("run.wal"));
        assert_eq!(o.group_commit, 8);
        assert_eq!(o.resume.as_deref(), Some("run.ckpt"));
        assert_eq!(o.checkpoint, None); // destination defaults to <wal>.ckpt
        assert_eq!(o.checkpoint_every, Some(100));
        let ck: Vec<String> = [
            "--checkpoint",
            "out.ckpt",
            "--checkpoint-every",
            "5",
            "p.ops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&ck).unwrap();
        assert_eq!(o.checkpoint.as_deref(), Some("out.ckpt"));
        assert_eq!(o.group_commit, 1); // default: fsync every commit
        let jobs: Vec<String> = ["--jobs", "4", "p.ops"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&jobs).unwrap();
        assert_eq!(o.jobs, Some(4));
        let jobs0: Vec<String> = ["--jobs", "0", "p.ops"] // 0 = all hardware threads
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&jobs0).unwrap().jobs, Some(0));
        assert_eq!(parse_args(&ck).unwrap().jobs, None); // defers to SORETE_JOBS
        let fr: Vec<String> = [
            "--shards",
            "4",
            "--flight-recorder",
            "1024",
            "--crash-dir",
            "bundles",
            "--crash-keep",
            "3",
            "p.ops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_args(&fr).unwrap();
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.flight, Some(1024));
        assert_eq!(o.crash_dir.as_deref(), Some("bundles"));
        assert_eq!(o.crash_keep, Some(3));
        assert_eq!(parse_args(&ck).unwrap().crash_keep, None); // defers to env/default
        let off: Vec<String> = ["--flight-recorder", "off", "p.ops"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&off).unwrap().flight, Some(0)); // 0 = disabled
        let o = parse_args(&ck).unwrap();
        assert_eq!(o.shards, None); // default partition count
        assert_eq!(o.flight, None); // recorder on at default capacity
    }

    #[test]
    fn rejects_bad_options() {
        let bad = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_args(&v).is_err()
        };
        assert!(bad(&["--matcher", "ops83", "p.ops"]));
        assert!(bad(&["--limit", "many", "p.ops"]));
        assert!(bad(&["--frobnicate", "p.ops"]));
        assert!(bad(&["--trace-json"])); // missing file
        assert!(bad(&["--trace-perfetto"])); // missing file
        assert!(bad(&["--explain"])); // missing rule
        assert!(bad(&["--metrics-json"])); // missing file
        assert!(bad(&["--metrics-prom"])); // missing file
        assert!(bad(&["--watch", "0", "p.ops"])); // zero cycles
        assert!(bad(&["--watch", "soon", "p.ops"])); // not a number
        assert!(bad(&["--wal"])); // missing file
        assert!(bad(&["--resume"])); // missing checkpoint
        assert!(bad(&["--group-commit", "0", "p.ops"])); // zero commits
        assert!(bad(&["--crash-keep"])); // missing count
        assert!(bad(&["--crash-keep", "several", "p.ops"])); // not a number
        assert!(bad(&["--checkpoint-every", "0", "p.ops"])); // zero firings
        assert!(bad(&["--checkpoint-every", "5", "p.ops"])); // no destination
        assert!(bad(&["--jobs"])); // missing worker count
        assert!(bad(&["--jobs", "many", "p.ops"])); // not a number
        assert!(bad(&["--shards", "0", "p.ops"])); // zero partitions
        assert!(bad(&["--shards"])); // missing count
        assert!(bad(&["--flight-recorder", "lots", "p.ops"])); // not a capacity
        assert!(bad(&["--flight-recorder"])); // missing capacity
        assert!(bad(&["--crash-dir"])); // missing directory
        assert!(bad(&[])); // no program, no repl
    }

    #[test]
    fn parses_facts() {
        let facts = parse_facts(
            "(player ^name Jack ^team A)
             (score ^points 42 ^ratio 0.5 ^note nil)",
        )
        .unwrap();
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].0.as_str(), "player");
        assert_eq!(facts[1].1[0].1, Value::Int(42));
        assert_eq!(facts[1].1[1].1, Value::Float(0.5));
        assert_eq!(facts[1].1[2].1, Value::Nil);
    }

    #[test]
    fn rejects_bad_facts() {
        assert!(parse_facts("player ^name Jack").is_err());
        assert!(parse_facts("(player ^name)").is_err());
        assert!(parse_facts("(player name)").is_err());
    }

    #[test]
    fn end_to_end_program_run() {
        let mut ps = ProductionSystem::new(MatcherKind::Rete);
        ps.load_program(
            "(literalize item s)
             (p sweep { [item ^s pending] <P> } (set-modify <P> ^s done) (write swept (count <P>)))",
        )
        .unwrap();
        for (class, slots) in parse_facts("(item ^s pending)(item ^s pending)").unwrap() {
            ps.assert_wme(class, slots).unwrap();
        }
        let outcome = ps.run(Some(10));
        assert_eq!(outcome.fired, 1);
        assert_eq!(ps.take_output(), vec!["swept 2"]);
    }
}
