#![warn(missing_docs)]
//! Umbrella crate: re-exports the sorete workspace public API for examples and integration tests.
pub use sorete_base as base;
pub use sorete_core as core;
pub use sorete_dips as dips;
pub use sorete_lang as lang;
pub use sorete_naive as naive;
pub use sorete_reldb as reldb;
pub use sorete_rete as rete;
pub use sorete_server as server;
pub use sorete_soi as soi;
pub use sorete_treat as treat;
